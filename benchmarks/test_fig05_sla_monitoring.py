"""Figure 5: cluster + service SLA monitoring over a training period.

Paper claims reproduced:
(a,b,c) during TCP checkpoints the RoCE network idles: service RTT falls
        while end-host processing delay rises;
(b,d)   two anomalous throughput degradations coincide with service-network
        switch drops, detected by BOTH Service Tracing and Cluster
        Monitoring within one 20s analysis period (P0/P1);
(e)     an RNIC dropping packets OUTSIDE the service network appears only
        in Cluster Monitoring and is prioritised P2.
"""

from conftest import print_comparison, run_once

from repro.core.records import Priority
from repro.experiments import fig05_sla


# SLA series are stamped with the window *start*; classify each window by
# its midpoint (analysis period is 20 s).
WINDOW_MID_S = 10.0


def _mean_in(series, windows, shift=WINDOW_MID_S):
    values = [v for t, v in series
              if any(a <= t + shift < b for a, b in windows)]
    return sum(values) / len(values) if values else float("nan")


def _mean_out(series, windows, lo=10.0, hi=180.0, shift=WINDOW_MID_S):
    values = [v for t, v in series
              if lo <= t + shift < hi
              and not any(a <= t + shift < b for a, b in windows)]
    return sum(values) / len(values) if values else float("nan")


def _min_in(series, windows):
    values = [v for t, v in series
              if any(a <= t < b for a, b in windows)]
    return min(values) if values else float("nan")


def test_fig05_sla_monitoring(benchmark):
    timeline = run_once(benchmark, fig05_sla.run)

    ckpt = timeline.checkpoint_windows_s
    assert ckpt, "the job must have checkpointed at least once"
    drops = timeline.drop_windows_s

    rtt_ckpt = _mean_in(timeline.service_rtt_p50_us, ckpt)
    rtt_normal = _mean_out(timeline.service_rtt_p50_us, ckpt + drops)
    proc_ckpt = _mean_in(timeline.processing_p50_us, ckpt)
    proc_normal = _mean_out(timeline.processing_p50_us, ckpt)
    svc_drop_in = _mean_in(timeline.service_drop_rate, drops)
    # A 20s window can straddle an episode edge; quiet means exclude a
    # padded zone around each episode so edge windows don't bleed in.
    padded = [(a - 15.0, b + 15.0) for a, b in drops]
    svc_drop_out = _mean_out(timeline.service_drop_rate, padded)
    clu_drop_in = _mean_in(timeline.cluster_drop_rate, drops)
    # Degraded cycles stretch, so their end-of-cycle points land late:
    # extend the window and compare the *worst* cycle against normal.
    stretched = [(a, b + 15.0) for a, b in drops]
    thpt_drop = _min_in(timeline.throughput, stretched)
    thpt_normal = _mean_out(timeline.throughput, stretched + ckpt, shift=0.0)

    print_comparison("Figure 5: SLA monitoring", [
        ("(b) RTT during checkpoints", "decreases",
         f"{rtt_ckpt:.1f}us vs normal {rtt_normal:.1f}us"),
        ("(c) processing during checkpoints", "increases",
         f"{proc_ckpt:.1f}us vs normal {proc_normal:.1f}us"),
        ("(a) worst cycle in drop episodes", "degrades",
         f"{thpt_drop:.0f} vs normal {thpt_normal:.0f} Gb/s"),
        ("(d) service drop rate in episodes", "> 0",
         f"{svc_drop_in:.4f} (quiet: {svc_drop_out:.4f})"),
        ("(e) cluster drop rate in episodes", "> 0",
         f"{clu_drop_in:.4f}"),
        ("switch problems priority", "P0/P1 (service net)",
         f"{sorted({p.value for p in timeline.switch_episode_priorities})}"),
        ("outside-RNIC priority", "P2 (not in service net)",
         f"{sorted({p.value for p in timeline.outside_rnic_priorities})}"),
    ])

    # (b)/(c): checkpoint couplings
    assert rtt_ckpt < rtt_normal
    assert proc_ckpt > proc_normal
    # (a)/(d)/(e): drop episodes hurt the service and are seen by both
    assert thpt_drop < 0.5 * thpt_normal
    assert svc_drop_in > 0.005
    assert svc_drop_in > 3 * max(svc_drop_out, 1e-6) or svc_drop_out == 0
    assert clu_drop_in > 0.001
    # Switch problems inside the service network: P0 or P1, never P2.
    assert timeline.switch_episode_priorities
    assert all(p in (Priority.P0, Priority.P1)
               for p in timeline.switch_episode_priorities)
    # The out-of-service RNIC is P2.
    assert timeline.outside_rnic_priorities
    assert all(p == Priority.P2 for p in timeline.outside_rnic_priorities)
