"""Figure 12 / §7.4: rail-optimized cluster probing.

Paper: in a rail-optimized topology, same-host cross-rail traffic must
traverse the top tier, so RNICs on a host can probe each other and — with
enough 5-tuples — cover all cluster links without Controller pinglists;
the responder needs no ACKs, enabling one-way timeout and one-way RTT.
"""

from conftest import print_comparison, run_once

from repro.experiments import fig12_rail


def test_fig12_rail_optimized_probing(benchmark):
    result = run_once(benchmark, fig12_rail.run)
    print_comparison("Figure 12: rail-optimized probing", [
        ("fabric links covered by same-host probes", "all",
         f"{result.fabric_links_covered}/{result.fabric_links_total}"),
        ("one-way loss, healthy", "~0",
         f"{result.healthy_timeout_rate:.1%}"),
        ("one-way loss, corrupted rail uplink", "detected",
         f"{result.faulty_timeout_rate:.1%}"),
        ("one-way delay change under congestion", "measurable",
         f"+{result.delay_change_detected_ns/1000:.0f}us"),
    ])
    assert result.coverage == 1.0
    assert result.healthy_timeout_rate < 0.01
    assert result.faulty_timeout_rate > 0.05
    assert result.delay_change_detected_ns > 10_000  # > 10 us shift
