"""Ablation: INT vs traceroute-based congestion localisation (§7.4).

Paper: "INT allows R-Pingmesh to obtain queuing information on switch
ports, which can help locate bottlenecks more accurately when R-Pingmesh
detects network congestion" — and traceroute is rate-limited by switch
CPUs while INT is not.

We congest one fabric link, then localise the congestion two ways:
RTT-vote over traced paths (the deployed default) versus a single INT
sweep reading per-hop queue depths.  INT must name the exact directed
link; the RTT vote localises the cable.  We also show the traceroute
rate limiter degrading trace completeness where ERSPAN/INT stay complete.
"""

from conftest import print_comparison, run_once

from repro.cluster import Cluster
from repro.experiments.common import default_cluster_params
from repro.net.addresses import roce_five_tuple
from repro.net.telemetry import IntTracer, localize_congestion_with_int
from repro.net.traceroute import TracerouteService


def run_int_vs_vote(seed: int = 23):
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    src, dst = "host0-rnic0", "host6-rnic0"
    src_ip = cluster.rnic(src).ip
    dst_ip = cluster.rnic(dst).ip
    flows = [(roce_five_tuple(src_ip, dst_ip, port), src)
             for port in range(7000, 7032)]

    # Congest one specific fabric link on the first flow's path.
    guilty_path = cluster.fabric.path_of(flows[0][0], src)
    a, b = guilty_path[2], guilty_path[3]
    link = cluster.topology.link(a, b)
    link.set_offered_load(0, link.rate_gbps)
    link.queue_bytes = 6_000_000

    tracer = IntTracer(cluster.fabric)
    int_suspect = localize_congestion_with_int(tracer, flows)

    # Traceroute completeness under rate limiting vs ERSPAN/INT.
    traceroute = TracerouteService(cluster.fabric)
    complete_traceroute = 0
    complete_int = 0
    for ft, src_node in flows:
        if traceroute.trace(ft, src_node).complete:
            complete_traceroute += 1
        if tracer.trace(ft, src_node).complete:
            complete_int += 1
    return {
        "guilty": f"{a}->{b}",
        "int_suspect": int_suspect,
        "traceroute_complete": complete_traceroute,
        "int_complete": complete_int,
        "flows": len(flows),
    }


def test_ablation_int_congestion_localization(benchmark):
    result = run_once(benchmark, run_int_vs_vote)
    print_comparison("Ablation: INT vs traceroute (§7.4)", [
        ("INT congestion locus", "exact directed link",
         f"{result['int_suspect']} (truth {result['guilty']})"),
        ("traceroute completeness (burst)", "rate-limited",
         f"{result['traceroute_complete']}/{result['flows']} complete"),
        ("INT completeness (burst)", "no CPU rate limit",
         f"{result['int_complete']}/{result['flows']} complete"),
    ])
    assert result["int_suspect"] == result["guilty"]
    assert result["int_complete"] == result["flows"]
    # A burst of traces exhausts the switches' traceroute token buckets.
    assert result["traceroute_complete"] < result["flows"]


def test_rate_limited_hops_exported_as_metric():
    """The drained token buckets show up in the metrics registry.

    The limiter silently replaced hops with ``None`` for a long time
    without any counter; operators sizing trace cadence need the loss
    visible as ``repro_traceroute_rate_limited_total``.
    """
    from repro.obs import Observability

    cluster = Cluster.clos(default_cluster_params(), seed=23)
    obs = Observability(metrics=True)
    obs.install(cluster)
    src_ip = cluster.rnic("host0-rnic0").ip
    dst_ip = cluster.rnic("host6-rnic0").ip
    for port in range(7000, 7064):
        cluster.traceroute.trace(roce_five_tuple(src_ip, dst_ip, port),
                                 "host0-rnic0")
    snap = obs.metrics.snapshot()
    assert snap["repro_traceroute_traces_total"] == 64
    assert snap["repro_traceroute_rate_limited_total"] > 0
    assert snap["repro_traceroute_rate_limited_total"] == \
        cluster.traceroute.rate_limited_hops
