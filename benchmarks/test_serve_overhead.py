"""Serve-mode overhead: ticked session + scrapes vs one flat run_for.

Not a paper artifact — this pins the cost of the ISSUE-9 service mode.
A serve tick adds per-second work on top of the raw simulation: a
metrics snapshot, alert-rule evaluation, and a history sample.  The
acceptance bound is a <= 1.2x slowdown with tracing off, and the two
drive styles must process the identical event stream (tick boundaries
are not allowed to perturb the sim).  Emits one ``BENCH {json}`` line.
"""

import json
import time

from conftest import run_once

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams
from repro.obs import Observability
from repro.serve import ServeSession, ServeSpec
from repro.sim.units import seconds

SEED = 2
WARMUP_S = 5
MEASURED_S = 30
SPEC = ServeSpec(seed=SEED, pods=2, tors_per_pod=2, aggs_per_pod=2,
                 spines=2, hosts_per_tor=3)


def _drive_batch():
    """The baseline: same world, same metrics layer, one flat run_for."""
    cluster = Cluster.clos(
        ClosParams(pods=SPEC.pods, tors_per_pod=SPEC.tors_per_pod,
                   aggs_per_pod=SPEC.aggs_per_pod, spines=SPEC.spines,
                   hosts_per_tor=SPEC.hosts_per_tor),
        seed=SEED)
    # Identical world to the ServeSession build: same control-plane
    # knobs, so both drive styles replay the same event stream.
    config = RPingmeshConfig(
        control_latency_ns=SPEC.control_latency_ns,
        control_jitter_ns=SPEC.control_jitter_ns,
        control_loss_prob=SPEC.control_loss_prob,
        shards=SPEC.shards, sla_sketch=False)
    system = RPingmesh(cluster, config, obs=Observability(metrics=True))
    system.start()
    cluster.sim.run_for(seconds(WARMUP_S))
    before = cluster.sim.events_processed
    start = time.perf_counter()  # detlint: disable=DET001 benchmark output: wall time is the measurement, never sim input
    cluster.sim.run_for(seconds(MEASURED_S))
    wall_s = time.perf_counter() - start  # detlint: disable=DET001 benchmark output: wall time is the measurement, never sim input
    return {"events": cluster.sim.events_processed - before,
            "wall_s": wall_s}


def _drive_serve():
    """Unpaced serve ticks: snapshot + alerts + history every sim-second,
    plus one /metrics-equivalent render per tick (a scraper at 1 Hz)."""
    session = ServeSession(SPEC)
    for _ in range(WARMUP_S):
        session.tick()
    before = session.cluster.sim.events_processed
    start = time.perf_counter()  # detlint: disable=DET001 benchmark output: wall time is the measurement, never sim input
    for _ in range(MEASURED_S):
        session.tick()
        session.render_metrics()
    wall_s = time.perf_counter() - start  # detlint: disable=DET001 benchmark output: wall time is the measurement, never sim input
    return {"events": session.cluster.sim.events_processed - before,
            "wall_s": wall_s}


def test_serve_tick_overhead(benchmark):
    batch = _drive_batch()
    serve = run_once(benchmark, _drive_serve)
    # Tick boundaries must not change what the simulator does.
    assert serve["events"] == batch["events"]
    slowdown = (serve["wall_s"] / batch["wall_s"]
                if batch["wall_s"] else float("inf"))
    print("BENCH " + json.dumps({
        "benchmark": "serve_overhead",
        "events": batch["events"],
        "wall_s_batch": round(batch["wall_s"], 3),
        "wall_s_serve": round(serve["wall_s"], 3),
        "slowdown_x": round(slowdown, 3),
    }, sort_keys=True))
    # The ISSUE-9 acceptance bound: serve mode (tracing off) costs at
    # most 20% over the flat batch drive of the same world.
    assert slowdown <= 1.2
