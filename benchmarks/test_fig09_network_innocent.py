"""Figure 9: the network is innocent.

Paper: the training throughput keeps decreasing; so does the network RTT,
and the processing delay is stable — no network or CPU bottleneck; the
root cause was a bug in the training code.  §4.3.4: "if no P0 or P1
problem is detected when service performance degrades, then the service
network is innocent."
"""

from conftest import print_comparison, run_once

from repro.experiments import fig09_innocent


def test_fig09_network_innocent(benchmark):
    result = run_once(benchmark, fig09_innocent.run, duration_s=110)
    thpt_trend = result.trend(result.throughput)
    rtt_trend = result.trend(result.service_rtt_p90_us)
    proc_trend = result.trend(result.processing_p50_us)
    print_comparison("Figure 9: compute bug, not the network", [
        ("training throughput", "continues to decrease",
         f"late/early = {thpt_trend:.2f}"),
        ("network RTT", "decreases too (no congestion)",
         f"late/early = {rtt_trend:.2f}"),
        ("processing delay", "stable (no CPU bottleneck)",
         f"late/early = {proc_trend:.2f}"),
        ("service degraded?", "yes", str(result.service_degraded_at_end)),
        ("analyzer verdict", "network innocent",
         str(result.network_innocent)),
    ])
    assert thpt_trend < 0.6            # the service is clearly degrading
    assert rtt_trend < 1.2             # RTT is NOT rising
    assert 0.5 < proc_trend < 2.0      # processing delay is stable
    assert result.service_degraded_at_end
    assert result.network_innocent     # and the network is exonerated
