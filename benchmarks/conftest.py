"""Benchmark harness helpers.

Every benchmark runs its experiment exactly once (they are multi-second
simulations, not microbenchmarks) via ``benchmark.pedantic`` and prints a
paper-vs-measured table so the regenerated figure/table can be eyeballed
against the publication.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def print_comparison(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a 'paper says / we measured' table."""
    width_label = max(len(r[0]) for r in rows)
    width_paper = max(len(r[1]) for r in rows + [("", "paper", "")])
    print(f"\n=== {title} ===")
    print(f"{'':{width_label}}  {'paper':>{width_paper}}  measured")
    for label, paper, measured in rows:
        print(f"{label:{width_label}}  {paper:>{width_paper}}  {measured}")
