"""Ablations of the two design choices DESIGN.md calls out.

1. **ToR-mesh RNIC filtering** (§4.3.2 / §2.4): with a concurrent RNIC
   fault and switch fault, filtering RNIC-caused anomalies first keeps the
   switch localisation clean; without it, RNIC timeouts pollute the vote
   and the top suspect drifts to host links (Pingmesh's failure mode).
2. **Continuous path tracing** (§4.2.3): tracing only after a failure
   observes truncated/rehashed paths; the pre-failure cached path names
   the guilty link.
"""

from conftest import print_comparison, run_once

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.net.faults import LinkFailure, RnicFlapping, SwitchPortFlapping
from repro.sim.units import seconds


def _concurrent_fault_run(tor_mesh_filter: bool):
    """Flapping RNIC + flapping fabric cable at the same time."""
    cluster = Cluster.clos(default_cluster_params(hosts_per_tor=4), seed=21)
    config = RPingmeshConfig(
        tor_mesh_rnic_filter_enabled=tor_mesh_filter)
    system = RPingmesh(cluster, config)
    system.start()
    cluster.sim.run_for(seconds(25))
    RnicFlapping(cluster, "host1-rnic0").inject()
    SwitchPortFlapping(cluster, "pod1-tor0", "pod1-agg0").inject()
    cluster.sim.run_for(seconds(45))
    window = system.analyzer.windows[-1]
    loc = window.cluster_localization
    suspects = loc.suspects if loc else []
    guilty = {"pod1-tor0->pod1-agg0", "pod1-agg0->pod1-tor0"}
    return {
        "suspects": suspects,
        "switch_correct": bool(set(suspects) & guilty),
        "rnic_votes_polluting": sum(
            count for name, count in (loc.votes.items() if loc else [])
            if "host1-rnic0" in name),
        "rnic_detected": "host1-rnic0" in window.anomalous_rnics,
    }


def test_ablation_tor_mesh_rnic_filtering(benchmark):
    def run_both():
        return (_concurrent_fault_run(tor_mesh_filter=True),
                _concurrent_fault_run(tor_mesh_filter=False))

    with_filter, without_filter = run_once(benchmark, run_both)
    print_comparison("Ablation: ToR-mesh RNIC filtering (§4.3.2)", [
        ("with filter: RNIC identified", "yes",
         str(with_filter["rnic_detected"])),
        ("with filter: switch localisation", "guilty cable",
         str(with_filter["suspects"][:2])),
        ("with filter: RNIC-link votes in switch analysis", "0",
         str(with_filter["rnic_votes_polluting"])),
        ("without filter: RNIC-link votes pollute", "> 0 (interference)",
         str(without_filter["rnic_votes_polluting"])),
    ])
    assert with_filter["rnic_detected"]
    assert with_filter["switch_correct"]
    assert with_filter["rnic_votes_polluting"] == 0
    # Without filtering, the flapping RNIC's timeouts enter the switch
    # vote (the §2.4 interference Pingmesh suffers from).
    assert without_filter["rnic_votes_polluting"] > 0


def _tracing_run(continuous: bool):
    """Persistent link failure; localise from the traced paths."""
    cluster = Cluster.clos(default_cluster_params(hosts_per_tor=4), seed=22)
    config = RPingmeshConfig(continuous_path_tracing=continuous)
    system = RPingmesh(cluster, config)
    system.start()
    cluster.sim.run_for(seconds(25))
    LinkFailure(cluster, "pod0-tor0", "pod0-agg1").inject()
    cluster.sim.run_for(seconds(25))
    guilty = {"pod0-tor0->pod0-agg1", "pod0-agg1->pod0-tor0"}
    for window in reversed(system.analyzer.windows):
        if window.cluster_localization \
                and window.cluster_localization.votes:
            suspects = window.cluster_localization.suspects
            return {"suspects": suspects,
                    "correct": bool(set(suspects) & guilty)}
    return {"suspects": [], "correct": False}


def test_ablation_continuous_path_tracing(benchmark):
    def run_both():
        return (_tracing_run(continuous=True),
                _tracing_run(continuous=False))

    continuous, on_demand = run_once(benchmark, run_both)
    print_comparison("Ablation: continuous path tracing (§4.2.3)", [
        ("continuous: localisation", "guilty cable",
         f"{continuous['suspects'][:2]} correct={continuous['correct']}"),
        ("on-demand: localisation", "misled by post-failure paths",
         f"{on_demand['suspects'][:2]} correct={on_demand['correct']}"),
    ])
    assert continuous["correct"]
    assert not on_demand["correct"]
