"""Figure 7: Agent CPU/memory overhead; §6 bandwidth bound.

Paper: on hosts with 8 RNICs the Agent averages ~3% of one CPU core and
~18.5 MB of memory; probe traffic per RNIC stays below 300 Kb/s.
"""

from conftest import print_comparison, run_once

from repro.experiments import fig07_overhead


def test_fig07_agent_overhead(benchmark):
    result = run_once(benchmark, fig07_overhead.run, duration_s=90)
    print_comparison("Figure 7: Agent overhead (8-RNIC host)", [
        ("CPU (fraction of a core)", "~3%",
         f"{result.mean_cpu_cores:.1%}"),
        ("memory", "~18.5 MB", f"{result.mean_memory_mb:.1f} MB"),
        ("per-RNIC probe bandwidth", "< 300 Kb/s",
         f"max {result.max_rnic_kbps:.0f} Kb/s"),
    ])
    assert 0.005 < result.mean_cpu_cores < 0.10
    assert 10 < result.mean_memory_mb < 30
    assert result.max_rnic_kbps < 300


def test_fig07_overhead_scales_with_rnics(benchmark):
    """§6: 'the overhead of Agent scales linearly with the number of
    RNICs on the host.'"""
    def sweep():
        return {n: fig07_overhead.run(rnics_per_host=n, duration_s=40)
                for n in (2, 4, 8)}

    results = run_once(benchmark, sweep)
    rows = [(f"{n} RNICs", "scales ~linearly",
             f"cpu {results[n].mean_cpu_cores:.2%}, "
             f"mem {results[n].mean_memory_mb:.1f} MB")
            for n in sorted(results)]
    print_comparison("Figure 7: overhead scaling", rows)
    cpus = [results[n].mean_cpu_cores for n in (2, 4, 8)]
    mems = [results[n].mean_memory_mb for n in (2, 4, 8)]
    assert cpus[0] < cpus[1] < cpus[2]
    assert mems[0] < mems[1] < mems[2]
    # Roughly linear: doubling RNICs shouldn't quadruple cost.
    assert cpus[2] < 4 * cpus[0]
