"""Bake-off: probe pipeline vs INT backend vs TCP Pingmesh (§7.4).

Paper: "INT allows R-Pingmesh to obtain queuing information on switch
ports, which can help locate bottlenecks more accurately when R-Pingmesh
detects network congestion" — and Pingmesh, probing over TCP through the
kernel, "cannot accurately measure the network RTT" nor see RNIC-level
loci.

This benchmark races the three diagnosis backends (repro.diagnosis)
across 14 of the 16 registry fault kinds, three deployments per kind —
probe-only, probe+INT fused, and the Pingmesh baseline — and emits one
BENCH line per (case, mode) run with recall / precision / time-to-detect
and the overhead axes (probe bytes, telemetry bytes, events observed).

Asserted claims:

* on every congestion-family case the INT backend's verdicts name the
  exact directed link, while the probe pipeline's own verdicts only ever
  name a cable, an endpoint, or a neighbour;
* the fused deployment is never worse than probe-only on recall,
  located precision, or time-to-detect, on any case.
"""

import json

from conftest import print_comparison, run_once

from repro.diagnosis.bakeoff import (MODES, bakeoff_cases, int_verdict_loci,
                                     record, run_case)

SEED = 0


def run_full_bakeoff(seed: int = SEED):
    """Every (case, mode) run: {(label, mode): (case, result, record)}."""
    out = {}
    for case in bakeoff_cases():
        for mode in MODES:
            result = run_case(case, mode, seed)
            out[(case.label, mode)] = (case, result,
                                       record(case, mode, result))
    return out


def test_backend_bakeoff(benchmark):
    results = run_once(benchmark, run_full_bakeoff)
    for _, _, rec in results.values():
        print("BENCH " + json.dumps(rec, sort_keys=True))

    cases = bakeoff_cases()
    assert len(cases) >= 12, "the sweep must cover >= 12 fault kinds"

    rows = []
    probe_missed_exact_link = []
    for case in cases:
        _, probe_result, probe_rec = results[(case.label, "probe")]
        _, fused_result, fused_rec = results[(case.label, "fused")]

        # Claim 1: INT names the exact directed link on every congestion
        # case.  The probe pipeline's RTT vote sometimes lands on the
        # right link and sometimes on a neighbour (topology-dependent);
        # claim 1b below requires that on at least one pure-latency case
        # it missed the exact link where INT did not.
        if case.hot_link is not None:
            loci = int_verdict_loci(fused_result)
            assert loci == [case.hot_link], (
                f"{case.label}: INT named {loci}, expected exactly "
                f"[{case.hot_link!r}]")
            if not case.probe_sees_drops:
                probe_loci = sorted({d.verdict_locus
                                     for d in probe_result.detections
                                     if d.verdict_locus})
                if case.hot_link not in probe_loci:
                    probe_missed_exact_link.append(case.label)

        # Claim 2: fusion is strictly additive — the fused deployment is
        # never worse than probe-only on any scored axis.
        assert fused_rec["recall"] >= probe_rec["recall"], case.label
        assert fused_rec["precision"] >= probe_rec["precision"], case.label
        if probe_rec["ttd_ns"] is not None:
            assert fused_rec["ttd_ns"] is not None, case.label
            assert fused_rec["ttd_ns"] <= probe_rec["ttd_ns"], case.label

        ping_rec = results[(case.label, "pingmesh")][2]
        ping = ping_rec["backends"]["pingmesh"]
        rows.append((
            case.label,
            "exact link" if case.hot_link else "detect",
            f"probe r={probe_rec['recall']:.1f} "
            f"fused r={fused_rec['recall']:.1f} "
            f"int={'/'.join(int_verdict_loci(fused_result)) or '-'} "
            f"pingmesh v={ping['verdicts']}"))

    # Claim 1b: there is at least one congestion scenario where the
    # probe pipeline's vote did NOT name the exact directed link while
    # INT (asserted above) did — the paper's motivating gap.
    assert probe_missed_exact_link, (
        "expected >=1 pure-latency case where only INT names the link")
    print_comparison("Backend bake-off (14 fault kinds x 3 modes)", rows)


def test_overhead_axes():
    """Telemetry rides existing packets: zero probe bytes for INT, and
    the fused deployment adds no extra probe traffic over probe-only."""
    case = next(c for c in bakeoff_cases()
                if c.label == "link_overload_tor_agg")
    probe_only = run_case(case, "probe", SEED)
    fused = run_case(case, "fused", SEED)
    by_name = {r.backend: r for r in fused.backend_reports}
    assert by_name["int"].probe_packets == 0
    assert by_name["int"].probe_bytes == 0
    assert by_name["int"].telemetry_bytes > 0
    probe_cost = probe_only.backend_reports[0]
    assert by_name["probe"].probe_bytes == probe_cost.probe_bytes, (
        "deploying INT must not change the probe pipeline's traffic")
