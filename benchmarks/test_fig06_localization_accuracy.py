"""Figure 6: localisation accuracy.

Paper (one month): 207 problems reported, 85% accurate overall; all 157
switch-network problems accurate; only 20/50 RNIC problems confirmed — the
30 unconfirmed ones were Agent-CPU-starvation false positives (right panel),
eliminated by the multi-RNIC-simultaneity + processing-delay filters.

We reproduce the *rates* on a compressed fault schedule: switch precision
must be 100%; with the FP filter off the CPU-overload episodes masquerade
as RNIC problems (low RNIC precision); with it on they disappear.
"""

from conftest import print_comparison, run_once

from repro.experiments import fig06_accuracy


def test_fig06_accuracy_with_fp_filter(benchmark):
    result = run_once(benchmark, fig06_accuracy.run, fp_filter_enabled=True,
                      switch_episodes=6, rnic_episodes=4, cpu_fp_episodes=4,
                      episode_s=45, quiet_s=70)
    switch_detected = [e for e in result.episodes
                       if e.episode_kind == "switch" and e.detected]
    rnic_detected = [e for e in result.episodes
                     if e.episode_kind == "rnic" and e.detected]
    fp_baits_reported = [e for e in result.episodes
                         if e.episode_kind == "cpu_fp" and e.detected]
    print_comparison("Figure 6 (left) with FP filter (later deployment)", [
        ("switch problem precision", "157/157 = 100%",
         f"{sum(e.correct for e in switch_detected)}/{len(switch_detected)}"),
        ("real RNIC problems found", "confirmed",
         f"{sum(e.correct for e in rnic_detected)}/{len(rnic_detected)}"),
        ("CPU-overload false positives", "eliminated by filters",
         f"{len(fp_baits_reported)} reported"),
        ("overall accuracy", ">= 85%",
         f"{result.overall_accuracy:.0%}"),
    ])
    assert switch_detected and all(e.correct for e in switch_detected)
    assert rnic_detected and all(e.correct for e in rnic_detected)
    assert not fp_baits_reported
    assert result.overall_accuracy >= 0.85


def test_fig06_accuracy_without_fp_filter(benchmark):
    """The paper's original month: CPU overloads pollute RNIC verdicts."""
    result = run_once(benchmark, fig06_accuracy.run, fp_filter_enabled=False,
                      switch_episodes=4, rnic_episodes=3, cpu_fp_episodes=4,
                      episode_s=45, quiet_s=70)
    switch_detected = [e for e in result.episodes
                       if e.episode_kind == "switch" and e.detected]
    fp_baits_reported = [e for e in result.episodes
                         if e.episode_kind == "cpu_fp" and e.detected]
    print_comparison("Figure 6 (left) without FP filter (original month)", [
        ("switch problem precision", "100% even then",
         f"{sum(e.correct for e in switch_detected)}/{len(switch_detected)}"),
        ("CPU-overload episodes misreported", "30/50 RNIC reports were FPs",
         f"{len(fp_baits_reported)}/4 baits reported as problems"),
        ("RNIC-report precision", "20/50 = 40%",
         f"{result.rnic_confirmed}/{result.rnic_reports}"),
    ])
    # ToR-mesh keeps switch localisation clean even without the filter.
    assert switch_detected and all(e.correct for e in switch_detected)
    # Without the filter, CPU starvation masquerades as RNIC problems.
    assert len(fp_baits_reported) >= 2
    assert result.rnic_confirmed < result.rnic_reports
