"""Figure 10: Service Tracing captures periodic All2All congestion.

Paper: probes sent by one RNIC (10 ms interval, shuffled pinglist)
accurately capture the periodic All2All traffic and the network congestion
it causes — RTT samples during communication phases are much higher than
during compute phases.
"""

from conftest import print_comparison, run_once

from repro.experiments import fig10_service_capture


def test_fig10_service_tracing_captures_all2all(benchmark):
    result = run_once(benchmark, fig10_service_capture.run, duration_s=45)
    print_comparison("Figure 10: periodic congestion capture", [
        ("comm-phase RTT P90", "high (congested)",
         f"{result.comm_rtt_p90_us:.0f}us "
         f"({result.comm_phase_sampled} samples)"),
        ("compute-phase RTT P90", "low (idle)",
         f"{result.idle_rtt_p90_us:.1f}us "
         f"({result.idle_phase_sampled} samples)"),
        ("contrast", ">> 1", f"{result.congestion_contrast:.0f}x"),
    ])
    # Random-phase sampling hit both phases...
    assert result.comm_phase_sampled > 50
    assert result.idle_phase_sampled > 50
    # ...and the congestion periodicity is clearly visible.
    assert result.congestion_contrast > 10
