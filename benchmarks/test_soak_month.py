"""Soak: a compressed 'month of operation' with ticket accounting.

The paper's Figure 6 statistic ("207 problems in one month") is a count of
*deduplicated* problems over continuous operation.  This soak runs a
sequence of fault episodes against a live deployment with the
ProblemTracker attached and checks the operational ledger:

* every episode yields at least one ticket of the right category,
* continuing faults do NOT inflate the count (dedup across windows),
* tickets resolve after their fault clears,
* the JSONL export parses and carries the lifecycle fields.

Emits one ``BENCH {json}`` line for trend tracking.
"""

import json
import time

from conftest import print_comparison, run_once

from repro.cluster import Cluster
from repro.core.records import ProblemCategory
from repro.core.system import RPingmesh
from repro.core.tracker import ProblemTracker, TicketState
from repro.experiments.common import default_cluster_params
from repro.net.faults import (HostDown, LinkCorruption, RnicDown,
                              RnicFlapping, SwitchPortFlapping)
from repro.sim.units import seconds

EPISODES = [
    ("switch", lambda c: SwitchPortFlapping(c, "pod0-tor0", "pod0-agg0"),
     ProblemCategory.SWITCH_NETWORK_PROBLEM),
    ("rnic", lambda c: RnicFlapping(c, "host3-rnic0"),
     ProblemCategory.RNIC_PROBLEM),
    ("switch", lambda c: LinkCorruption(c, "pod1-tor0", "pod1-agg1",
                                        drop_prob=0.6),
     ProblemCategory.SWITCH_NETWORK_PROBLEM),
    ("host", lambda c: HostDown(c, "host7"),
     ProblemCategory.HOST_DOWN),
    ("rnic", lambda c: RnicDown(c, "host1-rnic0"),
     ProblemCategory.RNIC_PROBLEM),
    ("switch", lambda c: LinkCorruption(c, "pod0-agg1", "spine1",
                                        drop_prob=0.6),
     ProblemCategory.SWITCH_NETWORK_PROBLEM),
]


def run_soak(seed: int = 30, episode_s: int = 50, quiet_s: int = 90):
    cluster = Cluster.clos(default_cluster_params(hosts_per_tor=4),
                           seed=seed)
    system = RPingmesh(cluster)
    tracker = ProblemTracker(resolve_after_windows=3)
    tracker.attach(system.analyzer)
    system.start()
    cluster.sim.run_for(seconds(30))

    outcomes = []
    for kind, maker, expected_category in EPISODES:
        fault = maker(cluster)
        before = tracker.ticket_count()
        fault.inject()
        cluster.sim.run_for(seconds(episode_s))
        fault.clear()
        cluster.sim.run_for(seconds(quiet_s))
        new = tracker.tickets[before:]
        matching = [t for t in new if t.category == expected_category]
        outcomes.append({
            "kind": kind,
            "expected": expected_category,
            "new_tickets": len(new),
            "matching": len(matching),
            "all_resolved": all(t.state == TicketState.RESOLVED
                                for t in matching),
        })
    return {"outcomes": outcomes, "tracker": tracker}


def test_soak_month_of_operation(benchmark):
    wall_start = time.perf_counter()  # detlint: disable=DET001 benchmark output: soak wall-time report only
    result = run_once(benchmark, run_soak)
    wall_s = time.perf_counter() - wall_start  # detlint: disable=DET001 benchmark output: soak wall-time report only
    tracker = result["tracker"]
    matching = sum(o["matching"] for o in result["outcomes"])
    print("BENCH " + json.dumps({
        "benchmark": "soak_month",
        "episodes": len(EPISODES),
        "episodes_detected": sum(1 for o in result["outcomes"]
                                 if o["matching"] >= 1),
        "tickets_total": tracker.ticket_count(),
        "tickets_matching": matching,
        "open_tickets": len(tracker.open_tickets()),
        "wall_s": round(wall_s, 3),
    }, sort_keys=True))
    rows = []
    for i, outcome in enumerate(result["outcomes"]):
        rows.append((
            f"episode {i + 1} ({outcome['kind']})",
            "1 ticket, right category, resolved",
            f"{outcome['matching']}/{outcome['new_tickets']} tickets, "
            f"resolved={outcome['all_resolved']}"))
    rows.append(("total tickets (month ledger)",
                 "≈ episode count (deduplicated)",
                 str(tracker.ticket_count())))
    print_comparison("Soak: compressed month with ticket ledger", rows)

    for outcome in result["outcomes"]:
        assert outcome["matching"] >= 1, outcome
        assert outcome["all_resolved"], outcome
    # Dedup keeps the ledger near the episode count (secondary verdicts
    # like HIGH_RTT during flapping may add a few extra tickets).
    assert tracker.ticket_count() <= 4 * len(EPISODES)
    # All tickets eventually resolved (the cluster ends healthy).
    assert tracker.open_tickets() == []
    # Export parses.
    for line in tracker.export_jsonl().splitlines():
        record = json.loads(line)
        assert record["state"] == "resolved"


def test_soak_survives_midpoint_checkpoint(tmp_path):
    """An operational soak must be pausable: checkpoint at the midpoint,
    restore in a fresh session, and the resumed run's replay digest must
    equal the uninterrupted run's — byte for byte, faults and all.
    """
    from repro.fleet.spec import FaultEvent
    from repro.serve import (ServeSession, ServeSpec, load_checkpoint,
                             save_checkpoint)

    spec = ServeSpec(seed=30, campaign=(
        FaultEvent.make("rnic_down", "host0-rnic0",
                        start_s=20.0, end_s=50.0),
        FaultEvent.make("link_corruption", "pod0-tor0", "pod0-agg0",
                        start_s=70.0, end_s=100.0, drop_prob=0.5),
    ))
    total_ticks, midpoint = 120, 60

    baseline = ServeSession(spec)
    for _ in range(total_ticks):
        baseline.tick()
    uninterrupted = baseline.replay_digest()

    session = ServeSession(spec)
    for _ in range(midpoint):
        session.tick()
    path = str(tmp_path / "soak.ckpt")
    save_checkpoint(session, path)

    resumed = load_checkpoint(path)
    assert resumed.ticks == midpoint
    for _ in range(total_ticks - midpoint):
        resumed.tick()
    assert resumed.replay_digest() == uninterrupted
