"""Table 1: QP-type feature comparison.

Paper:
  Accurate RTT measurement    RC: no   UC: yes   UD: yes
  Connection overhead         RC: high UC: high  UD: low
"""

from conftest import print_comparison, run_once

from repro.experiments import tab01_qp_types


def test_tab01_qp_type_features(benchmark):
    result = run_once(benchmark, tab01_qp_types.run, peers=100)
    rows = []
    for qp_type in ("rc", "uc", "ud"):
        row = result.row(qp_type)
        measured = ("unmeasurable" if row.measured_rtt_ns is None
                    else f"{row.measured_rtt_ns/1000:.1f}us")
        rows.append((
            f"{qp_type.upper()} RTT",
            {"rc": "inaccurate", "uc": "accurate",
             "ud": "accurate"}[qp_type],
            f"{measured} (truth {row.true_rtt_ns/1000:.1f}us) "
            f"accurate={row.rtt_accurate}"))
        rows.append((
            f"{qp_type.upper()} connection overhead",
            {"rc": "high", "uc": "high", "ud": "low"}[qp_type],
            f"{row.qps_needed_for_m_peers} QPs, "
            f"{row.qpc_slots_consumed} QPC slots for 100 peers "
            f"-> {row.connection_overhead}"))
    print_comparison("Table 1: QP type comparison", rows)

    rc, uc, ud = result.row("rc"), result.row("uc"), result.row("ud")
    # RC cannot measure RTT: its send CQE timestamp is ACK arrival.
    assert not rc.rtt_accurate
    # UC and UD both yield the true network RTT.
    assert uc.rtt_accurate
    assert ud.rtt_accurate
    # UD: one QP total, no connection-context slots; RC/UC: one per peer.
    assert ud.qps_needed_for_m_peers == 1
    assert ud.qpc_slots_consumed == 0
    assert rc.qpc_slots_consumed == 100
    assert uc.qpc_slots_consumed == 100
    assert ud.connection_overhead == "low"
    assert rc.connection_overhead == "high"
    assert uc.connection_overhead == "high"
