"""Table 2: the 14 problem root causes found during deployment.

For every row we inject the corresponding fault and require:
  * detection within a few 20s analysis periods (the paper detects and
    locates within one period),
  * the right signal class — failures (rows 1-9) surface as timeouts;
    bottlenecks (rows 10-14) surface as high RTT / processing delay,
  * the paper's (*) service-failure markers: with default (untuned)
    retransmission settings, rows 3-8 break the training task.
"""

import pytest
from conftest import print_comparison, run_once

from repro.experiments import tab02_catalog

ROWS = list(range(1, 15))


@pytest.mark.parametrize("row", ROWS)
def test_tab02_problem_row(benchmark, row):
    outcome = run_once(benchmark, tab02_catalog.run_row, row, fault_s=45)
    latency = (f"{outcome.detection_latency_s:.0f}s"
               if outcome.detection_latency_s is not None else "n/a")
    print_comparison(f"Table 2 row {row}: {outcome.root_cause}", [
        ("detected", "yes", str(outcome.detected)),
        ("signal", outcome.expect_signal,
         str(sorted(c.value for c in outcome.categories))),
        ("service failure", str(outcome.expect_service_failure),
         str(outcome.service_failed)),
        ("detection latency", "~1 analysis period (20s)", latency),
    ])
    assert outcome.detected, f"row {row} not detected"
    assert outcome.signal_matches, (
        f"row {row}: expected {outcome.expect_signal}, "
        f"got {outcome.categories}")
    assert outcome.service_failure_matches, (
        f"row {row}: service_failed={outcome.service_failed}, "
        f"expected {outcome.expect_service_failure}")
