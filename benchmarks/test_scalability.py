"""Simulator scalability: wall-clock cost per simulated second.

Not a paper artifact — this measures the reproduction itself, so users
know what cluster sizes are practical.  The full system (probing at paper
rates + analysis) is exercised at three fleet sizes; the benchmark timer
measures the wall cost of 10 simulated seconds in steady state.  Each
size emits one ``BENCH {json}`` line for trend tracking.
"""

import json
import time

import pytest

from repro.cluster import Cluster
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams
from repro.sim.units import seconds

SIZES = {
    "small-12rnic": ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2,
                               spines=2, hosts_per_tor=3),
    "medium-32rnic": ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2,
                                spines=2, hosts_per_tor=4,
                                rnics_per_host=2),
    "large-64rnic": ClosParams(pods=2, tors_per_pod=4, aggs_per_pod=2,
                               spines=4, hosts_per_tor=4,
                               rnics_per_host=2),
}


@pytest.mark.parametrize("label", list(SIZES))
def test_steady_state_simulation_rate(benchmark, label):
    cluster = Cluster.clos(SIZES[label], seed=1)
    system = RPingmesh(cluster)
    system.start()
    cluster.sim.run_for(seconds(25))  # warm-up: pinglists, first analysis

    def ten_simulated_seconds():
        cluster.sim.run_for(seconds(10))

    events_before = cluster.sim.events_processed
    probes_before = sum(a.probes_sent for a in system.agents.values())
    wall_start = time.perf_counter()  # detlint: disable=DET001 benchmark output: wall-time speedup accounting only
    benchmark.pedantic(ten_simulated_seconds, rounds=3, iterations=1,
                       warmup_rounds=0)
    wall_s = time.perf_counter() - wall_start  # detlint: disable=DET001 benchmark output: wall-time speedup accounting only
    events = cluster.sim.events_processed - events_before
    probes = (sum(a.probes_sent for a in system.agents.values())
              - probes_before)
    print("BENCH " + json.dumps({
        "benchmark": "scalability",
        "size": label,
        "rnics": cluster.size,
        "simulated_s": 30,
        "wall_s": round(wall_s, 3),
        "events": events,
        "events_per_sec": round(events / wall_s) if wall_s else 0,
        "probes_per_sec": round(probes / wall_s) if wall_s else 0,
        "wall_per_sim_s": round(wall_s / 30, 4),
    }, sort_keys=True))
    # Sanity: the system is alive and analysing.
    assert system.analyzer.sla.latest() is not None
    assert system.analyzer.sla.latest().cluster.probes_total > 0
