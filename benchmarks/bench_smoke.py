"""CI perf-regression smoke: steady-state events/sec vs a checked-in floor.

Runs the R-Pingmesh system on the small benchmark topology, measures the
steady-state simulation rate, emits one ``BENCH {json}`` line, writes the
same record to an artifact file, and exits non-zero when the rate falls
more than the configured tolerance below ``bench_floor.json``.

Exit codes: 0 pass, 2 perf regression (rate < floor * tolerance).

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py [--out bench_smoke.json]

Wall-clock reads here are the *product*, not simulation input — the rate
never feeds back into sim state (the golden-digest suite pins that), so
the determinism lint's wall-clock rule is suppressed file-wide.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.cluster import Cluster
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams
from repro.sim.units import seconds

# Keep in sync with SIZES["small-12rnic"] in test_scalability.py.
SMALL = ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=3)


def measure(floor_config: dict) -> dict:
    cluster = Cluster.clos(SMALL, seed=1)
    system = RPingmesh(cluster)
    system.start()
    cluster.sim.run_for(seconds(floor_config["warmup_simulated_s"]))

    events_before = cluster.sim.events_processed
    probes_before = sum(a.probes_sent for a in system.agents.values())
    wall_start = time.perf_counter()  # detlint: disable=DET001 benchmark timer
    cluster.sim.run_for(seconds(floor_config["measure_simulated_s"]))
    wall_s = time.perf_counter() - wall_start  # detlint: disable=DET001 benchmark timer

    events = cluster.sim.events_processed - events_before
    probes = sum(a.probes_sent for a in system.agents.values()) - probes_before
    floor = floor_config["events_per_sec_floor"]
    tolerance = floor_config["tolerance"]
    events_per_sec = round(events / wall_s) if wall_s else 0
    return {
        "benchmark": "bench_smoke",
        "size": floor_config["size"],
        "rnics": cluster.size,
        "simulated_s": floor_config["measure_simulated_s"],
        "wall_s": round(wall_s, 3),
        "events": events,
        "events_per_sec": events_per_sec,
        "probes_per_sec": round(probes / wall_s) if wall_s else 0,
        "floor_events_per_sec": floor,
        "fail_below": round(floor * tolerance),
        "passed": events_per_sec >= floor * tolerance,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench_smoke.json",
                        help="artifact file for the BENCH record")
    parser.add_argument("--floor", default=None,
                        help="override path to bench_floor.json")
    args = parser.parse_args(argv)

    floor_path = Path(args.floor) if args.floor else (
        Path(__file__).resolve().parent / "bench_floor.json")
    floor_config = json.loads(floor_path.read_text())

    record = measure(floor_config)
    print("BENCH " + json.dumps(record, sort_keys=True))
    Path(args.out).write_text(json.dumps(record, sort_keys=True, indent=2)
                              + "\n")
    if not record["passed"]:
        print(f"PERF REGRESSION: {record['events_per_sec']} events/sec is "
              f"more than {round((1 - floor_config['tolerance']) * 100)}% "
              f"below the checked-in floor of {record['floor_events_per_sec']}"
              f" (fail threshold {record['fail_below']})", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
