"""Figure 1: flapping switch port / RNIC collapses DML training throughput.

Paper: a single flapping switch port (top) or RNIC (bottom) severely
degrades average training throughput of the whole cluster, "even to zero".
"""

from conftest import print_comparison, run_once

from repro.experiments import fig01_flapping


def test_fig01_flapping_switch_port(benchmark):
    result = run_once(benchmark, fig01_flapping.run, "switch_port",
                      healthy_s=12, faulty_s=35, recovery_s=12)
    print_comparison("Figure 1 (top): flapping switch port", [
        ("healthy throughput", "full rate",
         f"{result.healthy_mean_gbps:.0f} Gb/s"),
        ("during flapping", "severe collapse (to ~0)",
         f"{result.faulty_mean_gbps:.0f} Gb/s "
         f"(min {result.min_faulty_gbps:.0f})"),
        ("after clearing", "recovers",
         f"{result.recovered_mean_gbps:.0f} Gb/s"),
        ("collapse factor", ">>1", f"{result.degradation_factor:.1f}x"),
    ])
    assert result.degradation_factor > 5
    assert result.recovered_mean_gbps > 0.8 * result.healthy_mean_gbps


def test_fig01_flapping_rnic(benchmark):
    result = run_once(benchmark, fig01_flapping.run, "rnic",
                      healthy_s=12, faulty_s=35, recovery_s=12)
    print_comparison("Figure 1 (bottom): flapping RNIC", [
        ("healthy throughput", "full rate",
         f"{result.healthy_mean_gbps:.0f} Gb/s"),
        ("during flapping", "severe collapse (to ~0)",
         f"{result.faulty_mean_gbps:.0f} Gb/s"),
        ("collapse factor", ">>1", f"{result.degradation_factor:.1f}x"),
    ])
    assert result.degradation_factor > 5
    assert result.recovered_mean_gbps > 0.8 * result.healthy_mean_gbps
