"""Figure 11: tail RTT reflects congestion mode and CC algorithm quality.

Paper (left): All2All causes severe congestion, AllReduce much less — the
tail RTT separates them.
Paper (right): the self-developed CC reduces tail RTT and improves
training throughput versus default DCQCN.
"""

from conftest import print_comparison, run_once

from repro.experiments import fig11_congestion_modes


def test_fig11_congestion_modes(benchmark):
    result = run_once(benchmark, fig11_congestion_modes.run, duration_s=45)
    print_comparison("Figure 11 (left): communication modes", [
        ("AllReduce tail RTT (DCQCN)", "low",
         f"P99 {result.allreduce_dcqcn.rtt_p99_us:.0f}us"),
        ("All2All tail RTT (DCQCN)", "much higher",
         f"P99 {result.all2all_dcqcn.rtt_p99_us:.0f}us"),
        ("mode contrast", ">> 1", f"{result.mode_contrast:.0f}x"),
    ])
    print_comparison("Figure 11 (right): DCQCN vs custom CC on All2All", [
        ("custom CC tail RTT", "reduced vs DCQCN",
         f"P99 {result.all2all_custom.rtt_p99_us:.0f}us vs "
         f"{result.all2all_dcqcn.rtt_p99_us:.0f}us "
         f"({result.cc_tail_improvement:.1f}x better)"),
        ("custom CC training throughput", "improved",
         f"{result.all2all_custom.mean_throughput_gbps:.0f} vs "
         f"{result.all2all_dcqcn.mean_throughput_gbps:.0f} Gb/s "
         f"({result.cc_throughput_improvement:.2f}x)"),
    ])
    assert result.mode_contrast > 10
    assert result.cc_tail_improvement > 2
    assert result.cc_throughput_improvement > 1.0
