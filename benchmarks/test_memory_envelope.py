"""Analyzer memory envelope: sharded+sketch vs unsharded+exact.

The scale-out claim of DESIGN.md §11, measured: on a 4-pod fabric with a
mid-run pod fault, the sharded deployment (per-pod AnalyzerShards with
``shard_window_retention=1``, sketch-backed SLAs) must hold its peak
modelled Analyzer memory at least ``MIN_RATIO``x below the unsharded
deployment's — while reaching the same verdict about the faulted link.

The unsharded Analyzer's exact percentile retention grows linearly with
analysed windows (~1 MB/window at this probe volume); the sharded tier's
growth is one set of fixed-size sketch states per fused window.  Twelve
windows are enough for the envelope to separate decisively.

Emits one ``BENCH {json}`` line (peaks, ratio, process RSS) for trend
tracking; the bench-smoke CI job runs this file.
"""

import json
import resource

from conftest import print_comparison, run_once

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.records import ProblemCategory
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams
from repro.net.faults import LinkCorruption
from repro.sim.units import seconds

POD4 = ClosParams(pods=4, tors_per_pod=2, aggs_per_pod=2, spines=2,
                  hosts_per_tor=3)
FAULTED_LINK = ("pod1-tor0", "pod1-agg0")
DURATION_S = 250            # 12 analysis windows
MIN_RATIO = 5.0
# Hard ceiling on the sharded tier's modelled bytes: growth must stay
# sketch-shaped (fixed per window), not sample-shaped.
SHARDED_ENVELOPE_BYTES = 3_000_000
# Whole-process RSS sanity bound (both deployments, all 48 RNICs, MB).
RSS_ENVELOPE_MB = 1500


def _run_deployment(*, shards: int) -> dict:
    cluster = Cluster.clos(POD4, seed=3)
    config = RPingmeshConfig(shards=shards, sla_sketch=(shards > 1),
                             shard_window_retention=1)
    system = RPingmesh(cluster, config)
    system.start()
    cluster.sim.run_for(seconds(10))
    LinkCorruption(cluster, *FAULTED_LINK, drop_prob=0.5).inject()
    peak = 0
    remaining = DURATION_S - 10
    while remaining > 0:
        cluster.sim.run_for(seconds(min(20, remaining)))
        remaining -= 20
        peak = max(peak, system.analyzer.memory_bytes())
    suspects = {p.locus for p in system.analyzer.problems
                if p.category == ProblemCategory.SWITCH_NETWORK_PROBLEM}
    return {
        "peak_bytes": peak,
        "windows": len(system.analyzer.windows),
        "suspects": suspects,
        "probes_total": sum(r.cluster.probes_total
                            for r in system.analyzer.sla.reports),
    }


def _implicates_fault(suspects: set) -> bool:
    guilty = frozenset(FAULTED_LINK)
    return any(frozenset(s.split("->")) == guilty for s in suspects)


def test_sharded_memory_envelope(benchmark):
    def both():
        return (_run_deployment(shards=1), _run_deployment(shards=4))

    unsharded, sharded = run_once(benchmark, both)

    # Equal detection: both deployments localise the injected fault.
    assert _implicates_fault(unsharded["suspects"]), unsharded["suspects"]
    assert _implicates_fault(sharded["suspects"]), sharded["suspects"]
    assert unsharded["windows"] == sharded["windows"] >= 12

    ratio = unsharded["peak_bytes"] / sharded["peak_bytes"]
    rss_mb = round(resource.getrusage(
        resource.RUSAGE_SELF).ru_maxrss / 1024)
    print("BENCH " + json.dumps({
        "benchmark": "memory_envelope",
        "rnics": POD4.total_rnics,
        "simulated_s": DURATION_S,
        "windows": sharded["windows"],
        "peak_unsharded_bytes": unsharded["peak_bytes"],
        "peak_sharded_bytes": sharded["peak_bytes"],
        "ratio": round(ratio, 2),
        "min_ratio": MIN_RATIO,
        "sharded_envelope_bytes": SHARDED_ENVELOPE_BYTES,
        "process_rss_mb": rss_mb,
        "passed": ratio >= MIN_RATIO,
    }, sort_keys=True))
    print_comparison("Analyzer memory envelope (12 windows)", [
        ("peak unsharded+exact", ">= linear",
         f"{unsharded['peak_bytes'] / 1e6:.2f} MB"),
        ("peak sharded+sketch", "bounded",
         f"{sharded['peak_bytes'] / 1e6:.2f} MB"),
        ("ratio", f">= {MIN_RATIO}x", f"{ratio:.2f}x"),
    ])

    assert ratio >= MIN_RATIO
    assert sharded["peak_bytes"] <= SHARDED_ENVELOPE_BYTES
    assert rss_mb <= RSS_ENVELOPE_MB
