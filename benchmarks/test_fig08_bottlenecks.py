"""Figure 8: intra-host bottleneck detection.

Paper (left): CPU overload results in high processing delay on some hosts
— located by the accurate end-host processing-delay measurement.
Paper (right): a PFC storm (from PCIe downgrade) results in high P99
network RTT; ToR-mesh probing pins the high RTT on the anomalous RNIC.
"""

from conftest import print_comparison, run_once

from repro.experiments import fig08_bottlenecks


def test_fig08_left_cpu_overload(benchmark):
    result = run_once(benchmark, fig08_bottlenecks.run_cpu_overload,
                      baseline_s=40, overload_s=40)
    print_comparison("Figure 8 (left): CPU overload", [
        ("overloaded hosts", "exactly the loaded ones",
         f"{sorted(result.detected_hosts)} "
         f"(truth: {result.overloaded_hosts})"),
        ("network RTT P50", "unaffected",
         f"{result.rtt_p50_before_us:.1f}us -> "
         f"{result.rtt_p50_during_us:.1f}us"),
    ])
    assert set(result.overloaded_hosts) <= result.detected_hosts
    # No false positives: only the overloaded hosts are flagged.
    assert result.detected_hosts == set(result.overloaded_hosts)
    # RTT is hardware-timestamped: CPU overload must not inflate it.
    assert result.rtt_p50_during_us < 2 * result.rtt_p50_before_us


def test_fig08_right_pfc_storm(benchmark):
    result = run_once(benchmark, fig08_bottlenecks.run_pfc_storm,
                      baseline_s=40, storm_s=40)
    print_comparison("Figure 8 (right): PFC storm", [
        ("P99 network RTT", "spikes high",
         f"{result.rtt_p99_before_us:.1f}us -> "
         f"{result.rtt_p99_during_us:.1f}us"),
        ("anomalous RNIC", "found by ToR-mesh high RTT",
         f"detected={result.high_rtt_rnic_detected} "
         f"({result.victim_rnic})"),
    ])
    assert result.rtt_p99_during_us > 5 * result.rtt_p99_before_us
    assert result.high_rtt_rnic_detected
