"""Figure 13: the two most common congestion causes.

Paper: ToR-downlink congestion from many-to-one incast, and ToR-uplink
congestion from ECMP hash collisions — R-Pingmesh detects both and its
path-voting names the congested link, distinguishing the two tiers.
"""

from conftest import print_comparison, run_once

from repro.experiments import fig13_congestion_causes


def test_fig13_incast_downlink(benchmark):
    result = run_once(benchmark, fig13_congestion_causes.run_incast,
                      duration_s=45)
    print_comparison("Figure 13 (a): many-to-one incast", [
        ("congested link (truth)", "ToR downlink",
         result.congested_links[0]),
        ("localized", "same downlink",
         str(sorted(set(result.localized_links))[:3])),
    ])
    assert result.correct_tier


def test_fig13_hash_collision_uplink(benchmark):
    result = run_once(benchmark,
                      fig13_congestion_causes.run_hash_collision,
                      duration_s=45)
    print_comparison("Figure 13 (b): ECMP hash collision", [
        ("congested link (truth)", "ToR uplink",
         result.congested_links[0]),
        ("localized", "same uplink",
         str(sorted(set(result.localized_links))[:3])),
    ])
    assert result.correct_tier
