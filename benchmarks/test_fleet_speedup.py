"""Fleet parallel speedup: 8-scenario sweep, serial vs 4 workers.

Two claims, in descending order of importance:

1. **Identity** — the merged scorecard is byte-identical whichever worker
   count produced it.  This is the fleet's whole value proposition and is
   asserted unconditionally.
2. **Speedup** — 4 workers finish the sweep >= 1.8x faster than 1.  This
   needs 4 actual cores; on smaller machines (CI shared runners, this
   container) the ratio is still recorded in the BENCH line but not
   asserted, since the hardware cannot express the parallelism.

Emits one ``BENCH {json}`` line for trend tracking.
"""

import json
import os

from repro.fleet import FaultEvent, FleetRunner, ScenarioSpec, SweepSpec, merge
from repro.net.clos import ClosParams

TINY = ClosParams(pods=1, tors_per_pod=2, aggs_per_pod=2, spines=1,
                  hosts_per_tor=2)

SPEEDUP_FLOOR = 1.8
WORKERS = 4


def _sweep() -> SweepSpec:
    """8 jobs: 4 distinct scenarios x 2 seeds, ~35 simulated s each."""
    scenarios = (
        ScenarioSpec(
            name="su-rnic-down", topology=TINY, duration_s=35,
            campaign=(FaultEvent.make("rnic_down", "host0-rnic0",
                                      start_s=8.0, end_s=28.0),)),
        ScenarioSpec(
            name="su-link-corruption", topology=TINY, duration_s=35,
            campaign=(FaultEvent.make("link_corruption", "pod0-tor0",
                                      "pod0-agg0", start_s=8.0,
                                      end_s=28.0, drop_prob=0.5),)),
        ScenarioSpec(
            name="su-rnic-flapping", topology=TINY, duration_s=35,
            campaign=(FaultEvent.make("rnic_flapping", "host1-rnic0",
                                      start_s=8.0, end_s=28.0),)),
        ScenarioSpec(name="su-healthy", topology=TINY, duration_s=35),
    )
    return SweepSpec(scenarios=scenarios, seeds=(0, 1))


def test_four_workers_beat_serial(benchmark):
    sweep = _sweep()
    serial = FleetRunner(workers=1).run(sweep)

    def parallel_sweep():
        return FleetRunner(workers=WORKERS).run(sweep)

    parallel = benchmark.pedantic(parallel_sweep, rounds=1, iterations=1,
                                  warmup_rounds=0)
    assert serial.ok and parallel.ok

    serial_json = merge(serial.results).to_json()
    parallel_json = merge(parallel.results).to_json()
    # The acceptance gate: worker count must not change a single byte.
    assert serial_json == parallel_json

    speedup = (serial.wall_s / parallel.wall_s
               if parallel.wall_s else float("inf"))
    cores = os.cpu_count() or 1
    print("BENCH " + json.dumps({
        "benchmark": "fleet_speedup",
        "jobs": len(sweep.jobs()),
        "workers": WORKERS,
        "cores": cores,
        "serial_wall_s": round(serial.wall_s, 3),
        "parallel_wall_s": round(parallel.wall_s, 3),
        "speedup_x": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "scorecards_identical": serial_json == parallel_json,
    }, sort_keys=True))
    if cores >= WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{WORKERS} workers on {cores} cores managed only "
            f"{speedup:.2f}x over serial (floor {SPEEDUP_FLOOR}x)")
