"""Figure 2: Pingmesh's software-measured P99 TCP RTT tracks host load.

Paper: "The measured software RTT fluctuates as the host average load
changes."  R-Pingmesh's hardware-timestamped network RTT must not.
"""

from conftest import print_comparison, run_once

from repro.experiments import fig02_pingmesh_load


def test_fig02_software_rtt_tracks_load(benchmark):
    result = run_once(benchmark, fig02_pingmesh_load.run, epoch_s=20)
    rows = []
    for epoch in result.epochs:
        rows.append((f"load={epoch.load:.1f}",
                     "rises with load",
                     f"pingmesh P99 {epoch.pingmesh_p99_us:.0f}us | "
                     f"R-Pingmesh RTT P99 {epoch.rpingmesh_rtt_p99_us:.1f}us"))
    rows.append(("P99 swing across loads",
                 "large (software) vs flat (hardware)",
                 f"{result.pingmesh_swing:.1f}x vs "
                 f"{result.rpingmesh_swing:.1f}x"))
    print_comparison("Figure 2: software RTT vs host load", rows)

    # Software RTT must swing with load; hardware network RTT must not.
    assert result.pingmesh_swing > 5
    assert result.rpingmesh_swing < result.pingmesh_swing / 4

    # The sweep is symmetric (up then down): the baseline must come back.
    first, last = result.epochs[0], result.epochs[-1]
    assert last.pingmesh_p99_us < 2 * first.pingmesh_p99_us
