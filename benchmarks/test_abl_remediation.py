"""Closed-loop remediation (§7.5 #2/#3): detect -> diagnose -> isolate.

Not a paper figure — the paper lists this as future work — but DESIGN.md
commits to the extension: after the Analyzer localises a flapping switch
port under a live job, the advisor names the root cause from the port's
flap counter and the remediator isolates the cable; training throughput
must recover without a task restart.
"""

from conftest import print_comparison, run_once

from repro.cluster import Cluster
from repro.core.records import ProblemCategory
from repro.core.remediation import Remediator
from repro.core.rootcause import RootCauseAdvisor
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.net.faults import SwitchPortFlapping
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim.units import MILLISECOND, seconds


def run_loop(seed: int = 24):
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    system = RPingmesh(cluster)
    system.start()
    advisor = RootCauseAdvisor(cluster)
    remediator = Remediator(cluster)
    job = DmlJob(cluster, cluster.rnic_names()[:8],
                 DmlConfig(pattern=CommPattern.ALL2ALL,
                           compute_time_ns=300 * MILLISECOND,
                           data_gbits_per_cycle=4.0))
    system.attach_service_monitor(job)
    cluster.sim.run_for(seconds(5))
    job.start()
    cluster.sim.run_for(seconds(20))
    healthy = job.current_throughput()

    SwitchPortFlapping(cluster, "pod0-tor0", "pod0-agg0").inject()
    cluster.sim.run_for(seconds(45))
    degraded = job.current_throughput()

    diagnosis_row = None
    for window in reversed(system.analyzer.windows):
        for prob in window.problems:
            if prob.category == ProblemCategory.SWITCH_NETWORK_PROBLEM:
                diagnosis_row = advisor.diagnose(prob).best.table2_row
                action = remediator.consider(prob)
                if action and action.kind == "isolate_link":
                    break
        if remediator.isolated_links:
            break
    cluster.sim.run_for(seconds(40))
    recovered = job.current_throughput()
    return {
        "healthy": healthy, "degraded": degraded, "recovered": recovered,
        "diagnosis_row": diagnosis_row,
        "isolated": bool(remediator.isolated_links),
        "task_failed": job.task_failed,
    }


def test_closed_loop_remediation(benchmark):
    result = run_once(benchmark, run_loop)
    print_comparison("Closed loop: detect -> diagnose -> isolate (§7.5)", [
        ("healthy throughput", "-", f"{result['healthy']:.0f} Gb/s"),
        ("under flapping", "collapse", f"{result['degraded']:.0f} Gb/s"),
        ("diagnosis", "Table 2 row 1 (flapping)",
         f"row {result['diagnosis_row']}"),
        ("after isolation", "recovers, no task restart",
         f"{result['recovered']:.0f} Gb/s "
         f"(failed={result['task_failed']})"),
    ])
    assert result["degraded"] < result["healthy"] / 5
    assert result["diagnosis_row"] == 1
    assert result["isolated"]
    assert not result["task_failed"]
    # One of two uplinks removed: most of the healthy rate comes back.
    assert result["recovered"] > 0.6 * result["healthy"]
