"""Equation 1: 5-tuple counts to cover N ECMP paths with probability P.

Paper §4.1: the Controller solves Equation 1 with P = 0.99 to size each
ToR's inter-ToR 5-tuple set.  We validate the closed form against Monte
Carlo on the abstract model AND against actual ECMP hashing on the
simulated Clos fabric.
"""

from conftest import print_comparison, run_once

from repro.experiments import eq01_coverage


def test_eq01_coverage(benchmark):
    result = run_once(benchmark, eq01_coverage.run, trials=200)
    rows = []
    for row in result.rows:
        rows.append((f"N={row.n_paths:>2} -> k={row.k_required}",
                     f">= {result.probability:.0%} coverage",
                     f"analytic {row.analytic_coverage:.1%}, "
                     f"empirical {row.empirical_coverage:.1%}"))
    rows.append((f"real fabric (N={result.fabric_paths_observed}, "
                 f"k={result.fabric_k})",
                 ">= 99% of trials cover all paths",
                 f"{result.fabric_coverage:.1%}"))
    print_comparison("Equation 1: ECMP path coverage", rows)

    for row in result.rows:
        assert row.analytic_coverage >= result.probability
        # Monte Carlo agreement within sampling noise.
        assert row.empirical_coverage >= result.probability - 0.05
        assert row.k_required >= row.n_paths
    assert result.fabric_coverage >= result.probability - 0.05
