"""Observability overhead: events/sec with the tracer on vs off.

Not a paper artifact — this measures the reproduction itself.  The
tracing + metrics hooks sit on the substrate's hottest paths (every
fabric hop, every CQE), so this benchmark pins two things: the simulated
event stream is bit-identical either way (same event count from the same
seed), and the wall-clock cost of full tracing stays a small multiple.
Emits one ``BENCH {json}`` line for trend tracking.
"""

import json
import time

from conftest import run_once

from repro.cluster import Cluster
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams
from repro.obs import Observability
from repro.sim.units import seconds

PARAMS = ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                    hosts_per_tor=3)
WARMUP_S = 5
MEASURED_S = 15


def _drive(obs):
    cluster = Cluster.clos(PARAMS, seed=2)
    system = RPingmesh(cluster, obs=obs)
    system.start()
    cluster.sim.run_for(seconds(WARMUP_S))
    before = cluster.sim.events_processed
    start = time.perf_counter()  # detlint: disable=DET001 benchmark output: events per wall-second, never fed into sim state
    cluster.sim.run_for(seconds(MEASURED_S))
    wall_s = time.perf_counter() - start  # detlint: disable=DET001 benchmark output: events per wall-second, never fed into sim state
    events = cluster.sim.events_processed - before
    return {"events": events, "wall_s": wall_s,
            "events_per_sec": events / wall_s if wall_s else 0.0}


def test_tracer_overhead(benchmark):
    off = _drive(None)
    on = run_once(benchmark, _drive,
                  Observability(tracing=True, metrics=True))
    # The layer observes; it must not change what the simulator does.
    assert on["events"] == off["events"]
    overhead = (off["events_per_sec"] / on["events_per_sec"]
                if on["events_per_sec"] else float("inf"))
    print("BENCH " + json.dumps({
        "benchmark": "obs_overhead",
        "events": off["events"],
        "events_per_sec_off": round(off["events_per_sec"]),
        "events_per_sec_on": round(on["events_per_sec"]),
        "slowdown_x": round(overhead, 3),
    }, sort_keys=True))
    # Generous bound: full tracing may cost real time, but an order of
    # magnitude would mean a hook escaped its enabled-guard.
    assert overhead < 10.0
