#!/usr/bin/env python3
"""Service Tracing and load-balancing guidance (paper §7.3).

An All2All training job suffers ECMP hash-collision congestion.  This
example shows the full §7.3 loop:

1. the Agent learns the job's 5-tuples from eBPF QP tracing — no service
   cooperation needed;
2. Service Tracing probes ride the same ECMP paths and capture the
   periodic congestion (high tail RTT during communication phases);
3. the congested link is identified, and the flows crossing it are found;
4. the service reroutes those flows to new source ports via ``modify_qp``
   — and the tail RTT drops.

Run:  python examples/service_tracing_congestion.py
"""

from repro import Cluster, RPingmesh
from repro.net.clos import ClosParams
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim import units


def tail_rtt_us(system) -> float:
    stats = system.analyzer.sla.latest().service.rtt_percentiles()
    return stats["p99"] / 1e3 if stats else float("nan")


def main() -> None:
    cluster = Cluster.clos(
        ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=3),
        seed=7)
    system = RPingmesh(cluster)
    system.start()

    job = DmlJob(cluster, cluster.rnic_names()[:8],
                 DmlConfig(pattern=CommPattern.ALL2ALL,
                           compute_time_ns=units.milliseconds(400),
                           data_gbits_per_cycle=6.0))
    system.attach_service_monitor(job)
    cluster.sim.run_for(units.seconds(3))
    job.start()
    cluster.sim.run_for(units.seconds(40))

    agent = system.agent_for_rnic(job.participants[0])
    traced = sum(len(s.service) for s in agent.states.values())
    print(f"service tracing: agent on {job.participants[0].split('-')[0]} "
          f"tracks {traced} service 5-tuples (via eBPF modify_qp hooks)")
    print(f"tail service RTT during All2All: P99 = {tail_rtt_us(system):.0f}us")

    # Find the hottest fabric link and the service flows crossing it.
    hot = max((l for l in cluster.topology.switch_links()),
              key=lambda l: l.offered_load_gbps + l.queue_bytes / 1e9,
              default=None)
    congested = [l for l in job.traffic.overloaded_links()]
    print(f"overloaded links right now: {[l.name for l in congested]}")

    # Reroute every connection that crosses an overloaded link (§7.3):
    hot_names = {l.name for l in congested}
    rerouted = 0
    rng = cluster.rngs.stream("example.reroute")
    for conn, flow in zip(job.connections, job.traffic.flows):
        links = {f"{a}->{b}" for a, b in zip(flow.path, flow.path[1:])}
        if links & hot_names:
            job.reroute_connection(conn, rng.randint(1024, 65535))
            rerouted += 1
    print(f"rerouted {rerouted} congested connections via modify_qp")

    cluster.sim.run_for(units.seconds(40))
    print(f"tail service RTT after rerouting: P99 = {tail_rtt_us(system):.0f}us")


if __name__ == "__main__":
    main()
