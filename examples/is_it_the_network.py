#!/usr/bin/env python3
"""'Is it a network problem?' — the paper's §7.2 triage workflow.

A DML training job's throughput keeps dropping.  The service team suspects
ECMP congestion ("error code 12" vibes).  This example shows how the
network team answers with R-Pingmesh:

1. scenario A — the throughput drop is caused by a *training-code bug*
   degrading compute speed.  Service Tracing shows RTT *decreasing* and
   processing delay stable: the network is innocent; and
2. scenario B — the drop is caused by a real *switch packet-drop problem*
   inside the service network.  Service Tracing sees timeouts, Algorithm 1
   names the link, and the problem is prioritised P0.

Run:  python examples/is_it_the_network.py
"""

from repro import Cluster, RPingmesh
from repro.net.clos import ClosParams
from repro.net.faults import LinkCorruption
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim import units


def deploy(seed: int):
    cluster = Cluster.clos(
        ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=3),
        seed=seed)
    system = RPingmesh(cluster)
    system.start()
    job = DmlJob(cluster, cluster.rnic_names()[:8],
                 DmlConfig(pattern=CommPattern.ALLREDUCE,
                           compute_time_ns=units.milliseconds(500),
                           data_gbits_per_cycle=4.0))
    system.attach_service_monitor(job)
    cluster.sim.run_for(units.seconds(5))
    job.start()
    cluster.sim.run_for(units.seconds(30))
    return cluster, system, job


def report(tag: str, system, job) -> None:
    sla = system.analyzer.sla.latest()
    rtt = sla.service.rtt_percentiles()
    proc = sla.service.processing_percentiles()
    print(f"  [{tag}] throughput={job.current_throughput():.0f} Gb/s  "
          f"degraded={job.degraded()}")
    if rtt:
        print(f"  [{tag}] service RTT P90={rtt['p90']/1e3:.1f}us  "
              f"proc P50={proc['p50']/1e3:.1f}us  "
              f"drop_rate={sla.service.drop_rate:.4f}")


def scenario_compute_bug() -> None:
    print("scenario A: hidden training-code bug (compute decays 4%/cycle)")
    cluster, system, job = deploy(seed=1)
    report("before", system, job)
    job.set_compute_degradation(0.04)
    cluster.sim.run_for(units.seconds(90))
    report("after ", system, job)
    verdict = system.analyzer.network_innocent()
    print(f"  => service degraded: {job.degraded()}, "
          f"network innocent: {verdict}")
    print("  => RTT fell with throughput and no P0/P1 problems exist —"
          " stop debugging the fabric, go read the training code.\n")


def scenario_switch_drops() -> None:
    print("scenario B: real packet corruption on a service-network link")
    cluster, system, job = deploy(seed=2)
    report("before", system, job)
    fault = LinkCorruption(cluster, "pod0-tor0", "pod0-agg0", drop_prob=0.4)
    fault.inject()
    cluster.sim.run_for(units.seconds(60))
    report("after ", system, job)
    print(f"  => network innocent: {system.analyzer.network_innocent()}")
    window = system.analyzer.windows[-1]
    for problem in window.problems:
        print(f"  => [{problem.priority.value}] {problem.category.value} "
              f"at {problem.locus}")
    fault.clear()


if __name__ == "__main__":
    scenario_compute_bug()
    scenario_switch_drops()
