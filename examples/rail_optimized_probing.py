#!/usr/bin/env python3
"""Rail-optimized cluster probing (paper §7.4, Figure 12).

In a rail-optimized fabric each host's NIC *i* hangs off rail switch *i*,
so same-host cross-rail probes must climb to the spines — which means a
host can cover the whole fabric by probing *itself*, without Controller
pinglists, and can measure one-way loss/delay because one Agent sees both
ends' CQEs.

Run:  python examples/rail_optimized_probing.py
"""

from repro.cluster import Cluster
from repro.core.railprobe import RailProber
from repro.net.faults import LinkCorruption
from repro.net.rail import RailParams
from repro.net.topology import Tier
from repro.sim import units


def main() -> None:
    cluster = Cluster.rail(RailParams(hosts=3, rails=4, spines=2), seed=3)
    print(f"rail-optimized cluster: {len(cluster.hosts)} hosts x "
          f"{cluster.plan.params.rails} rails, "
          f"{cluster.plan.params.spines} spines")

    probers = [RailProber(cluster, host) for host in sorted(cluster.hosts)]

    # Same-host cross-rail sweep with many 5-tuples covers the fabric.
    for prober in probers:
        prober.sweep_ports()
    cluster.sim.run_for(units.seconds(2))
    fabric = {l.name for l in cluster.topology.switch_links()}
    covered = set()
    for prober in probers:
        covered |= prober.covered_links()
    print(f"fabric links covered by same-host probing: "
          f"{len(fabric & covered)}/{len(fabric)}")

    # One-way loss detection, no ACKs needed.
    rail0 = cluster.topology.switches(Tier.TOR)[0]
    print(f"\ninjecting corruption on {rail0} <-> spine0")
    LinkCorruption(cluster, rail0, "spine0", drop_prob=0.5).inject()
    for prober in probers:
        prober.results.clear()
    for _ in range(25):
        for prober in probers:
            prober.probe_round()
        cluster.sim.run_for(units.milliseconds(100))
    for prober, host in zip(probers, sorted(cluster.hosts)):
        print(f"  {host}: one-way probe loss rate "
              f"{prober.timeout_rate():.1%}")


if __name__ == "__main__":
    main()
