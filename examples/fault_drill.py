#!/usr/bin/env python3
"""Fault drill: inject every Table 2 root cause and watch the verdicts.

Walks the paper's full problem catalogue — hardware failures,
misconfigurations, congestion, intra-host bottlenecks — against a live
deployment, printing for each: what was injected, what the Analyzer said,
how fast, and whether the training task survived.

Run:  python examples/fault_drill.py            (all 14 rows, ~2 min)
      python examples/fault_drill.py 5 8 13     (just rows 5, 8, 13)
"""

import sys

from repro.experiments import tab02_catalog


def main(rows: list[int]) -> None:
    print(f"{'row':>3}  {'root cause':<38} {'detected':>8}  "
          f"{'signal ok':>9}  {'svc-fail ok':>11}  {'latency':>8}")
    print("-" * 88)
    for row in rows:
        outcome = tab02_catalog.run_row(row, fault_s=45)
        latency = (f"{outcome.detection_latency_s:.0f}s"
                   if outcome.detection_latency_s is not None else "-")
        print(f"{outcome.row:>3}  {outcome.root_cause:<38} "
              f"{str(outcome.detected):>8}  "
              f"{str(outcome.signal_matches):>9}  "
              f"{str(outcome.service_failure_matches):>11}  {latency:>8}")


if __name__ == "__main__":
    selected = [int(a) for a in sys.argv[1:]] or list(range(1, 15))
    main(selected)
