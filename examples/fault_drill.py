#!/usr/bin/env python3
"""Fault drill: inject every Table 2 root cause and watch the verdicts.

Walks the paper's full problem catalogue — hardware failures,
misconfigurations, congestion, intra-host bottlenecks — against a live
deployment, printing for each: what was injected, what the Analyzer said,
how fast, and whether the training task survived.

A closing drill partitions the *control plane* instead of the data plane:
the Controller disappears for two analysis windows, Agents keep probing
from cached pinglists, and an Agent cut off from the management network
is declared down on upload silence alone — then recovers on heal.

Run:  python examples/fault_drill.py            (all 14 rows + control-plane)
      python examples/fault_drill.py 5 8 13     (just rows 5, 8, 13)
      python examples/fault_drill.py control    (just the control-plane drill)
"""

import sys

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.dashboard import render_control_plane
from repro.core.system import RPingmesh
from repro.experiments import tab02_catalog
from repro.net.clos import ClosParams
from repro.net.faults import ControlPlanePartition
from repro.sim.units import SECOND, seconds


def table2_drill(rows: list[int]) -> None:
    print(f"{'row':>3}  {'root cause':<38} {'detected':>8}  "
          f"{'signal ok':>9}  {'svc-fail ok':>11}  {'latency':>8}")
    print("-" * 88)
    for row in rows:
        outcome = tab02_catalog.run_row(row, fault_s=45)
        latency = (f"{outcome.detection_latency_s:.0f}s"
                   if outcome.detection_latency_s is not None else "-")
        print(f"{outcome.row:>3}  {outcome.root_cause:<38} "
              f"{str(outcome.detected):>8}  "
              f"{str(outcome.signal_matches):>9}  "
              f"{str(outcome.service_failure_matches):>11}  {latency:>8}")


def control_plane_drill() -> None:
    """Management-network partitions: Controller, then one Agent."""
    print()
    print("control-plane drill (management network §4.2.3)")
    print("-" * 88)
    cluster = Cluster.clos(
        ClosParams(pods=1, tors_per_pod=2, aggs_per_pod=2, spines=1,
                   hosts_per_tor=3), seed=0)
    # Short refresh so pinglist pushes actually fire (and die) while the
    # Controller is cut off.
    system = RPingmesh(cluster,
                       RPingmeshConfig(pinglist_refresh_ns=15 * SECOND))
    system.start()
    cluster.sim.run_for(seconds(20))

    # Phase 1: the Controller vanishes for two analysis windows.  No
    # pinglist refresh can land, but every Agent keeps probing from its
    # cached pinglists and the Analyzer keeps concluding.
    controller_cut = ControlPlanePartition(cluster, "controller")
    controller_cut.inject()
    probes_before = sum(a.probes_sent for a in system.agents.values())
    cluster.sim.run_for(seconds(40))
    controller_cut.clear()
    probed = sum(a.probes_sent for a in system.agents.values()) - probes_before
    dropped = system.network.stats_for("controller").dropped_partition
    window = system.analyzer.windows[-1]
    print(f"controller cut for 40s: pushes dropped on the wire={dropped}, "
          f"agents kept probing ({probed} probes), "
          f"window still concluded ({window.results_processed} results, "
          f"down_hosts={sorted(window.down_hosts)})")

    # Phase 2: one Agent loses the management network while its host (and
    # RoCE data plane) stay healthy.  Upload silence -> declared down;
    # heal -> resend buffer drains and the verdict clears.
    victim = sorted(system.agents)[0]
    agent = system.agents[victim]
    agent_cut = ControlPlanePartition.for_host(cluster, victim)
    agent_cut.inject()
    cluster.sim.run_for(seconds(40))
    flagged = victim in system.analyzer.windows[-1].down_hosts
    print(f"{victim} cut for 40s: upload retries={agent.uploads.retries}, "
          f"buffered batches={agent.uploads.backlog}, "
          f"declared down on silence={flagged}")
    agent_cut.clear()
    cluster.sim.run_for(seconds(40))
    recovered = victim not in system.analyzer.windows[-1].down_hosts
    print(f"{victim} healed: buffer drained to {agent.uploads.backlog}, "
          f"batches acked={agent.uploads.acked}, recovered={recovered}")
    print()
    print(render_control_plane(system))


def main(args: list[str]) -> None:
    if args == ["control"]:
        control_plane_drill()
        return
    rows = [int(a) for a in args] or list(range(1, 15))
    table2_drill(rows)
    if not args:
        control_plane_drill()


if __name__ == "__main__":
    main(sys.argv[1:])
