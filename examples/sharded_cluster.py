#!/usr/bin/env python3
"""Scale-out deployment: per-pod shards reaching a cluster-wide verdict.

DESIGN.md §11 in action on a 4-pod Clos fabric:

1. the system deploys with one ControllerShard/AnalyzerShard pair per pod
   under a thin RootController/RootAnalyzer;
2. a corrupting cable inside pod1 starts dropping probes;
3. each AnalyzerShard classifies its own pod's evidence and ships a
   mergeable summary (vote tallies, sketch states — never raw results)
   to the RootAnalyzer;
4. the RootAnalyzer fuses the tallies, localises the faulted link
   cluster-wide, and its verdict matches what a single unsharded
   Analyzer concludes from the same fault — at a fraction of the memory.

Run:  python examples/sharded_cluster.py
"""

from repro import Cluster, RPingmesh
from repro.core.config import RPingmeshConfig
from repro.core.dashboard import render_control_plane
from repro.core.records import ProblemCategory
from repro.net.clos import ClosParams
from repro.net.faults import LinkCorruption
from repro.sim import units

TOPOLOGY = ClosParams(pods=4, tors_per_pod=2, aggs_per_pod=2, spines=2,
                      hosts_per_tor=2)
FAULTED = ("pod1-tor0", "pod1-agg0")


def deploy(shards: int) -> RPingmesh:
    cluster = Cluster.clos(TOPOLOGY, seed=11)
    config = RPingmeshConfig(shards=shards, sla_sketch=(shards > 1))
    system = RPingmesh(cluster, config)
    system.start()
    cluster.sim.run_for(units.seconds(10))
    LinkCorruption(cluster, *FAULTED, drop_prob=0.5).inject()
    cluster.sim.run_for(units.seconds(50))
    return system


def switch_suspects(system: RPingmesh) -> set[str]:
    return {p.locus for p in system.analyzer.problems
            if p.category == ProblemCategory.SWITCH_NETWORK_PROBLEM}


def names_faulted_link(suspects: set[str]) -> bool:
    guilty = frozenset(FAULTED)
    return any(frozenset(s.split("->")) == guilty for s in suspects)


def main() -> None:
    print(f"deploying sharded: 4 pods, one shard pair per pod "
          f"({TOPOLOGY.total_rnics} RNICs)")
    sharded = deploy(shards=4)

    pod_map = sharded.pod_map
    for i, tors in enumerate(pod_map.shard_tors):
        print(f"  shard{i}: owns {', '.join(tors)}")

    print(f"\nfault injected at 10s: corruption on "
          f"{FAULTED[0]} <-> {FAULTED[1]}")

    root = sharded.analyzer
    print(f"\nRootAnalyzer fused {root.fusions} windows from "
          f"{len(root.shards)} shards")
    for shard in root.shards:
        summary_note = (f"windows retained={len(shard.windows)} "
                        f"(trimmed to {sharded.config.shard_window_retention})")
        print(f"  shard{shard.shard_index}: "
              f"ingested {shard.ingest_accepted} batches, {summary_note}")

    report = root.sla.latest()
    p50 = report.cluster.rtt_percentiles()["p50"]
    print(f"\nfused cluster SLA (sketch-merged): "
          f"probes={report.cluster.probes_total} "
          f"p50 RTT={p50 / 1000:.1f}us")

    suspects = switch_suspects(sharded)
    print(f"sharded verdict: {sorted(suspects)}")
    assert names_faulted_link(suspects), "sharded verdict missed the fault"

    print("\nrunning the same fault unsharded for comparison...")
    unsharded = deploy(shards=1)
    baseline = switch_suspects(unsharded)
    print(f"unsharded verdict: {sorted(baseline)}")
    assert names_faulted_link(baseline), "unsharded verdict missed the fault"

    print("\nboth deployments implicate the faulted cable.")
    sharded_mb = root.memory_bytes() / 1e6
    unsharded_mb = unsharded.analyzer.memory_bytes() / 1e6
    print(f"analyzer memory: sharded={sharded_mb:.2f} MB "
          f"vs unsharded={unsharded_mb:.2f} MB")

    print("\ncontrol-plane view (note the per-shard ingest lines):")
    print(render_control_plane(sharded))


if __name__ == "__main__":
    main()
