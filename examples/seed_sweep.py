#!/usr/bin/env python3
"""Figure 6 with error bars: fleet-swept localisation accuracy.

The paper's Figure 6 is a single month of one production fleet — one
sample.  A simulator can do better: sweep the same mixed fault campaign
(a switch episode, an RNIC episode, and a CPU-overload false-positive
bait) across many seeds with ``repro.fleet``, and report accuracy as a
cross-seed band instead of a point estimate.

The sweep runs through the same ``FleetRunner``/``merge`` path as the
``fleet`` CLI, so the printed scorecard is byte-reproducible: rerunning
with any ``--workers`` value yields the identical table.

Run:  python examples/seed_sweep.py                 (5 seeds, inline)
      python examples/seed_sweep.py --workers 4     (parallel)
      python examples/seed_sweep.py --seeds 0,1,2
"""

import argparse

from repro.fleet import FleetRunner, merge
from repro.fleet.presets import accuracy_sweep


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", default="0,1,2,3,4",
                        help="comma-separated seed list")
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()
    seeds = tuple(int(s) for s in args.seeds.split(","))

    sweep = accuracy_sweep(seeds)
    spec = sweep.scenarios[0]
    print(f"sweeping {spec.name!r} ({spec.duration_s}s, "
          f"{len(spec.campaign)} fault episodes) over {len(seeds)} seeds "
          f"with {args.workers} worker(s)...")

    def progress(event) -> None:
        if event.kind == "result":
            print(f"  [{event.completed}/{event.total}] "
                  f"seed={event.seed} done")

    outcome = FleetRunner(workers=args.workers, progress=progress).run(sweep)
    if not outcome.ok:
        for failure in outcome.failures:
            print(f"  FAILED seed={failure.seed}: {failure.error}")
        return 1

    scorecard = merge(outcome.results)
    score = next(iter(scorecard.scenarios.values()))

    # -- Figure 6 (left), now with spread ----------------------------------
    per_seed = sorted(outcome.results, key=lambda r: r.seed)
    recalls = sorted(r.faults_detected / r.faults_total for r in per_seed)
    precisions = sorted(
        r.true_positives / (r.true_positives + r.false_positives)
        if (r.true_positives + r.false_positives) else 1.0
        for r in per_seed)

    def band(values) -> str:
        mean = sum(values) / len(values)
        return (f"{mean:5.1%}  "
                f"[-{mean - values[0]:.1%} +{values[-1] - mean:.1%}]")

    print()
    print("paper (one month, one fleet):  85% overall accuracy")
    print(f"{'metric':<22} {'mean':>6}  cross-seed error bar")
    print("-" * 56)
    print(f"{'detection recall':<22} {band(recalls)}")
    print(f"{'localisation precision':<22} {band(precisions)}")
    ttd = score.time_to_detect_ms
    if ttd:
        print(f"{'time-to-detect':<22} {ttd['mean'] / 1000:5.1f}s "
              f" [{ttd['min'] / 1000:.1f}s .. {ttd['max'] / 1000:.1f}s]")
    for metric, sla_band in sorted(score.sla_bands.items()):
        print(f"{metric:<22} {sla_band['mean']:>10}  "
              f"[{sla_band['min']} .. {sla_band['max']}]")
    print()
    print(f"aggregated over seeds {list(score.seeds)}; "
          f"faults {score.faults_detected}/{score.faults_total} detected, "
          f"{score.faults_localized} localized, "
          f"{score.false_positives} false positive(s)")
    print(f"replay digests: {len(set(score.replay_digests.values()))} "
          f"distinct across {len(score.replay_digests)} seeds "
          f"(sweep wall {outcome.wall_s:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
