#!/usr/bin/env python3
"""Quickstart: deploy R-Pingmesh on a simulated RoCE cluster.

Builds a small 3-tier Clos cluster, starts the full system (Agents on every
host, Controller, Analyzer), lets Cluster Monitoring run for a minute of
simulated time, and prints the SLA report — then injects a flapping switch
port and shows the Analyzer detecting and localising it within one 20 s
analysis period.

Run:  python examples/quickstart.py
"""

from repro import Cluster, RPingmesh
from repro.net.clos import ClosParams
from repro.net.faults import SwitchPortFlapping
from repro.sim import units


def main() -> None:
    # A 2-pod Clos fabric: 4 ToRs, 4 aggs, 2 spines, 12 hosts/RNICs.
    cluster = Cluster.clos(
        ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=3),
        seed=42)
    system = RPingmesh(cluster)
    system.start()
    print(f"deployed R-Pingmesh on {cluster.size} RNICs, "
          f"{len(cluster.tors())} ToR switches")

    # --- healthy baseline -------------------------------------------------
    cluster.sim.run_for(units.minutes(1))
    report = system.analyzer.sla.latest()
    rtt = report.cluster.rtt_percentiles()
    proc = report.cluster.processing_percentiles()
    print("\nhealthy cluster SLA (last 20s window):")
    print(f"  probes: {report.cluster.probes_total}, "
          f"drop rate: {report.cluster.drop_rate:.4f}")
    print(f"  network RTT   P50={rtt['p50']/1e3:.1f}us  "
          f"P99={rtt['p99']/1e3:.1f}us  P999={rtt['p999']/1e3:.1f}us")
    print(f"  processing    P50={proc['p50']/1e3:.1f}us  "
          f"P99={proc['p99']/1e3:.1f}us")

    # --- inject a failure --------------------------------------------------
    print("\ninjecting: flapping switch port pod0-tor0 <-> pod0-agg0")
    fault = SwitchPortFlapping(cluster, "pod0-tor0", "pod0-agg0")
    fault.inject()
    cluster.sim.run_for(units.seconds(45))

    window = system.analyzer.windows[-1]
    print("analyzer verdicts (latest 20s window):")
    for problem in window.problems:
        print(f"  [{problem.priority.value if problem.priority else '?'}] "
              f"{problem.category.value} at {problem.locus} "
              f"({problem.evidence_count} anomalous probes)")
    if window.cluster_localization:
        print("top suspect links by Algorithm 1 votes:")
        for link, votes in window.cluster_localization.top(3):
            print(f"  {link}: {votes}")
    fault.clear()


if __name__ == "__main__":
    main()
