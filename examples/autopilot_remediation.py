#!/usr/bin/env python3
"""Autopilot: detect -> diagnose -> remediate (paper §7.5 directions).

The paper's future-work list sketches a closed loop: locate a problem by
probing, explain it from device counters, and isolate the faulty component
with impact-aware policy.  This example runs that loop end to end:

1. a switch port starts flapping under a live training job;
2. the Analyzer localises the drop source within an analysis period;
3. the RootCauseAdvisor reads the port's flap counters and names the
   Table 2 row;
4. the Remediator isolates the cable (ECMP stops offering it);
5. training throughput recovers without restarting the task.

Run:  python examples/autopilot_remediation.py
"""

from repro import Cluster, RPingmesh
from repro.core.records import ProblemCategory
from repro.core.remediation import Remediator
from repro.core.rootcause import RootCauseAdvisor
from repro.net.clos import ClosParams
from repro.net.faults import SwitchPortFlapping
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim import units


def main() -> None:
    cluster = Cluster.clos(
        ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=3),
        seed=11)
    system = RPingmesh(cluster)
    system.start()
    advisor = RootCauseAdvisor(cluster)
    remediator = Remediator(cluster)

    job = DmlJob(cluster, cluster.rnic_names()[:8],
                 DmlConfig(pattern=CommPattern.ALL2ALL,
                           compute_time_ns=units.milliseconds(300),
                           data_gbits_per_cycle=4.0))
    system.attach_service_monitor(job)
    cluster.sim.run_for(units.seconds(5))
    job.start()
    cluster.sim.run_for(units.seconds(20))
    healthy = job.current_throughput()
    print(f"healthy training throughput: {healthy:.0f} Gb/s")

    fault = SwitchPortFlapping(cluster, "pod0-tor0", "pod0-agg0")
    fault.inject()
    print("fault injected: flapping pod0-tor0 <-> pod0-agg0")
    cluster.sim.run_for(units.seconds(45))
    print(f"throughput under fault: {job.current_throughput():.0f} Gb/s "
          f"(degraded={job.degraded()})")

    handled = False
    for window in reversed(system.analyzer.windows):
        for prob in window.problems:
            if prob.category != ProblemCategory.SWITCH_NETWORK_PROBLEM:
                continue
            diagnosis = advisor.diagnose(prob)
            print(f"located: {prob.locus} [{prob.priority.value}]")
            print(f"diagnosis: {diagnosis.best}")
            action = remediator.consider(prob)
            if action and action.kind == "isolate_link":
                print(f"remediation: isolated {action.target} "
                      f"({action.reason})")
                handled = True
                break
        if handled:
            break
    if not handled:
        print("no isolation applied; check analyzer output")
        return

    cluster.sim.run_for(units.seconds(30))
    print(f"throughput after isolation: "
          f"{job.current_throughput():.0f} Gb/s "
          f"(task failed: {job.task_failed})")


if __name__ == "__main__":
    main()
