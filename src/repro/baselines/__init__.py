"""Baselines the paper compares against: TCP Pingmesh."""

from repro.baselines.pingmesh import (PingmeshAgent, TcpPingmesh,
                                      TcpProbeResult)

__all__ = ["TcpPingmesh", "PingmeshAgent", "TcpProbeResult"]
