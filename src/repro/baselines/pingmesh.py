"""TCP Pingmesh baseline (Guo et al., SIGCOMM 2015) — paper §2.4, Figure 2.

Pingmesh probes between servers over TCP and timestamps **in software**: the
measured RTT is network RTT plus the prober's and responder's userspace
processing delays, so it rises and falls with host CPU load (Figure 2) and
cannot separate end-host bottlenecks from network ones.

Structural limitations reproduced here, which motivate R-Pingmesh:

* TCP probes ride the TCP traffic class — they cross PFC-deadlocked links
  untouched and never see RoCE-queue congestion or headroom drops;
* timeouts cannot be attributed to NIC vs switch;
* it is service-oblivious: no notion of a service network, no priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional

from repro.cluster import Cluster
from repro.host.host import Host
from repro.net.fabric import DeliveryRecord
from repro.net.packet import TCP_HEADER_BYTES, Packet, TCPPacket
from repro.net.addresses import PROTO_TCP, FiveTuple
from repro.sim.engine import EventHandle
from repro.sim.stats import PercentileTracker
from repro.sim.units import MILLISECOND

PINGMESH_TCP_PORT = 43333
PROBE_BYTES = TCP_HEADER_BYTES + 64


@dataclass
class TcpProbeResult:
    """One software-timestamped TCP probe."""

    prober_host: str
    target_host: str
    issued_at_ns: int
    timeout: bool
    software_rtt_ns: Optional[int] = None


@dataclass
class _Pending:
    seq: int
    target_host: str
    t_start_host_clock: int
    issued_at_ns: int
    timeout_handle: Optional[EventHandle] = None


class PingmeshAgent:
    """Pingmesh agent on one host, using the host's first NIC port."""

    def __init__(self, host: Host, cluster: Cluster, *,
                 timeout_ns: int = 500 * MILLISECOND):
        if not host.rnics:
            raise ValueError(f"host {host.name} has no NIC to probe from")
        self.host = host
        self.cluster = cluster
        self.timeout_ns = timeout_ns
        self.nic = host.rnics[0]
        self.nic.tcp_handler = self._on_tcp_packet
        self._pending: dict[int, _Pending] = {}
        self.results: list[TcpProbeResult] = []

    # -- prober side -----------------------------------------------------------

    def probe(self, target: "PingmeshAgent") -> None:
        """Software-timestamped TCP ping: app -> kernel -> wire -> echo."""
        seq = next(self.cluster.probe_seqs)
        pending = _Pending(
            seq=seq, target_host=target.host.name,
            t_start_host_clock=self.host.read_clock(),
            issued_at_ns=self.cluster.sim.now)
        self._pending[seq] = pending
        pending.timeout_handle = self.cluster.sim.call_later(
            self.timeout_ns, partial(self._on_timeout, seq))
        if not self.host.up or not self.nic.operational:
            return  # will time out
        # Userspace + kernel stack cost before the packet hits the wire —
        # this is what inflates the measured RTT under load.
        send_delay = self.host.cpu.processing_delay_ns()
        packet = TCPPacket(
            five_tuple=FiveTuple(self.nic.ip, PINGMESH_TCP_PORT,
                                 target.nic.ip, PINGMESH_TCP_PORT,
                                 PROTO_TCP),
            size_bytes=PROBE_BYTES,
            payload={"t": "ping", "seq": seq, "from": self.nic.ip})
        self.cluster.sim.call_later(
            send_delay, partial(self._inject_if_up, packet))

    def _on_timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is None:
            return
        self.results.append(TcpProbeResult(
            prober_host=self.host.name, target_host=pending.target_host,
            issued_at_ns=pending.issued_at_ns, timeout=True))

    # -- both sides -------------------------------------------------------------

    def _on_tcp_packet(self, packet: Packet, record: DeliveryRecord) -> None:
        if packet.five_tuple.dst_port != PINGMESH_TCP_PORT:
            return
        kind = packet.payload.get("t")
        if kind == "ping":
            self._echo(packet)
        elif kind == "pong":
            self._complete(packet)

    def _echo(self, packet: Packet) -> None:
        if not self.host.up:
            return
        # Responder software delay before the echo leaves.
        delay = self.host.cpu.processing_delay_ns()
        reply = TCPPacket(
            five_tuple=packet.five_tuple.reversed(),
            size_bytes=PROBE_BYTES,
            payload={"t": "pong", "seq": packet.payload["seq"]})
        self.cluster.sim.call_later(
            delay, partial(self._inject_if_up, reply))

    def _inject_if_up(self, packet: Packet) -> None:
        if self.nic.operational:
            self.cluster.fabric.inject(packet, self.nic.name)

    def _complete(self, packet: Packet) -> None:
        pending = self._pending.pop(packet.payload["seq"], None)
        if pending is None:
            return
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        # Receive-side software delay before the app can timestamp.
        delay = self.host.cpu.processing_delay_ns()

        def _stamp() -> None:
            rtt = self.host.read_clock() - pending.t_start_host_clock
            self.results.append(TcpProbeResult(
                prober_host=self.host.name,
                target_host=pending.target_host,
                issued_at_ns=pending.issued_at_ns,
                timeout=False, software_rtt_ns=rtt))

        self.cluster.sim.call_later(delay, _stamp)


class TcpPingmesh:
    """Full-mesh TCP Pingmesh deployment over a cluster's hosts."""

    def __init__(self, cluster: Cluster, *,
                 probe_interval_ns: int = 100 * MILLISECOND):
        self.cluster = cluster
        self.probe_interval_ns = probe_interval_ns
        self.agents = {name: PingmeshAgent(host, cluster)
                       for name, host in sorted(cluster.hosts.items())}
        self._rr = 0
        self._started = False

    def start(self) -> None:
        """Begin round-robin full-mesh probing."""
        if self._started:
            return
        self._started = True
        self.cluster.sim.every(self.probe_interval_ns, self._tick)

    def _tick(self) -> None:
        names = sorted(self.agents)
        if len(names) < 2:
            return
        self._rr += 1
        for i, src in enumerate(names):
            dst = names[(i + self._rr) % len(names)]
            if dst == src:
                dst = names[(i + self._rr + 1) % len(names)]
            self.agents[src].probe(self.agents[dst])

    # -- reporting --------------------------------------------------------------

    def all_results(self) -> list[TcpProbeResult]:
        """Every probe result across agents."""
        return [r for agent in self.agents.values() for r in agent.results]

    def rtt_percentile(self, pct: float, *, since_ns: int = 0) -> float:
        """Software RTT percentile over all successful probes."""
        tracker = PercentileTracker()
        for result in self.all_results():
            if not result.timeout and result.issued_at_ns >= since_ns:
                tracker.add(float(result.software_rtt_ns))
        return tracker.percentile(pct)

    def timeout_rate(self, *, since_ns: int = 0) -> float:
        """Fraction of probes that timed out."""
        relevant = [r for r in self.all_results()
                    if r.issued_at_ns >= since_ns]
        if not relevant:
            return 0.0
        return sum(1 for r in relevant if r.timeout) / len(relevant)
