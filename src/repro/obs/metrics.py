"""Deterministic metrics registry (counters, gauges, fixed-bucket histograms).

The registry is the single metrics surface of the reproduction: the
control-plane :class:`~repro.controlplane.transport.EndpointStats`, the
Analyzer's ingest-drop accounting, and the RNIC/Fabric tallies all land
here, behind one :meth:`MetricsRegistry.snapshot` and one Prometheus-style
text exporter.

Determinism contract (DESIGN.md §8): a metric is *simulation data* — its
value is a pure function of the seed.  No wall clocks, no process-global
state, no unordered iteration: snapshots render in sorted series order, so
two same-seed runs produce byte-identical snapshots and exporter output.
Histograms use HDR-style fixed bucket bounds chosen at construction, never
adapted from the data, so bucket layout cannot depend on arrival order.

Naming convention: ``repro_<module>_<name>`` with optional ``{label="v"}``
pairs, e.g. ``repro_controlplane_sent_total{endpoint="agent.host0"}``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

Number = Union[int, float]

# Default HDR-style latency bounds in nanoseconds: 1-2-5 per decade from
# 1 us to 10 s.  Fixed at import time; values beyond the last bound land
# in the implicit +Inf bucket.
LATENCY_BUCKETS_NS: tuple[int, ...] = tuple(
    int(mantissa * 10 ** exp)
    for exp in range(3, 10)
    for mantissa in (1, 2, 5)
) + (10 ** 10,)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double-quote, newline."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """``# HELP`` escaping: backslash and newline only (spec §text format)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_series(name: str, labels: Mapping[str, str]) -> str:
    """Canonical ``name{k="v",...}`` rendering (sorted, escaped values)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(v)}"'
                     for k, v in _label_key(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer (resettable only via registry)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    @property
    def series(self) -> str:
        """Canonical series name including labels."""
        return format_series(self.name, self.labels)


class Gauge:
    """A value that may go up and down (queue depths, backlog sizes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        """Add to the gauge."""
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        """Subtract from the gauge."""
        self.value -= amount

    @property
    def series(self) -> str:
        """Canonical series name including labels."""
        return format_series(self.name, self.labels)


class Histogram:
    """Fixed-bucket histogram (HDR-style: bounds chosen up front).

    ``bounds`` are inclusive upper bucket edges; observations beyond the
    last bound count only toward the implicit +Inf bucket.  Bucket counts
    are cumulative at render time (Prometheus ``le`` semantics) but stored
    per-bucket, which keeps :meth:`observe` O(log n) via bisection.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, labels: Mapping[str, str],
                 bounds: Sequence[Number] = LATENCY_BUCKETS_NS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, "
                             "non-empty sequence")
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +Inf last
        self.count = 0
        self.sum: Number = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.bucket_counts[lo] += 1
        self.count += 1
        self.sum += value

    def cumulative(self) -> list[tuple[Number, int]]:
        """(upper-bound, cumulative count) pairs, +Inf last."""
        out: list[tuple[Number, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[Number]:
        """Upper bound of the bucket holding the ``q``-quantile sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return None
        target = max(1, round(q * self.count))
        for bound, cum in self.cumulative():
            if cum >= target:
                return bound
        return float("inf")

    @property
    def series(self) -> str:
        """Canonical series name including labels."""
        return format_series(self.name, self.labels)


Metric = Union[Counter, Gauge, Histogram]
Collector = Callable[[], None]


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by (name, sorted labels).

    Pull-style sources (component tallies that already exist as plain
    attributes) register a *collector* — a zero-argument callable that
    copies current values into registry metrics.  Collectors run, in
    registration order, at the top of :meth:`snapshot` /
    :meth:`render_prometheus`, so the exported view is always current
    without the hot paths paying per-event metric updates.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]],
                            Metric] = {}
        self._collectors: list[Collector] = []
        self._help: dict[str, str] = {}

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str, help: Optional[str] = None,
                **labels: str) -> Counter:
        """Get or create a counter."""
        self._note_help(name, help)
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, help: Optional[str] = None,
              **labels: str) -> Gauge:
        """Get or create a gauge."""
        self._note_help(name, help)
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: Sequence[Number] = LATENCY_BUCKETS_NS,
                  help: Optional[str] = None,
                  **labels: str) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        self._note_help(name, help)
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, labels, bounds)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{format_series(name, labels)} already exists "
                            f"as {type(metric).__name__}")
        return metric

    def _note_help(self, name: str, help: Optional[str]) -> None:
        if help is not None:
            self._help.setdefault(name, help)

    def help_text(self, name: str) -> Optional[str]:
        """Registered ``# HELP`` text for a metric family, if any."""
        return self._help.get(name)

    def _get_or_create(self, cls: type, name: str,
                       labels: Mapping[str, str]) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"{format_series(name, labels)} already exists "
                            f"as {type(metric).__name__}")
        return metric

    def register_collector(self, collector: Collector) -> None:
        """Add a pull-style source, run before every snapshot/export."""
        self._collectors.append(collector)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> list[Metric]:
        """All metrics in sorted series order (collectors NOT run)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str, **labels: str) -> Optional[Metric]:
        """Look up an existing metric without creating it."""
        return self._metrics.get((name, _label_key(labels)))

    def collect(self) -> None:
        """Run every registered collector once."""
        for collector in self._collectors:
            collector()

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict[str, Number]:
        """Deterministic flat mapping of series name -> value.

        Counters/gauges contribute one entry; histograms contribute
        ``_bucket{le=...}`` entries plus ``_count`` and ``_sum``.  Keys are
        emitted sorted, so two same-seed runs produce identical dicts (and
        identical iteration order).
        """
        self.collect()
        flat: dict[str, Number] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                for bound, cum in metric.cumulative():
                    le = "+Inf" if bound == float("inf") else str(bound)
                    labels = dict(metric.labels, le=le)
                    flat[format_series(metric.name + "_bucket",
                                       labels)] = cum
                flat[format_series(metric.name + "_count",
                                   metric.labels)] = metric.count
                flat[format_series(metric.name + "_sum",
                                   metric.labels)] = metric.sum
            else:
                flat[metric.series] = metric.value
        return dict(sorted(flat.items()))

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry.

        Each metric family gets a ``# HELP`` line (when help text was
        registered) and a ``# TYPE`` line before its first series, and
        label values are escaped per the text-format spec —
        :func:`parse_exposition` round-trips the output.
        """
        lines: list[str] = []
        seen_types: set[str] = set()
        kind = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}
        self.collect()
        for metric in self.metrics():
            if metric.name not in seen_types:
                seen_types.add(metric.name)
                help_text = self._help.get(metric.name)
                if help_text is not None:
                    lines.append(
                        f"# HELP {metric.name} {_escape_help(help_text)}")
                lines.append(f"# TYPE {metric.name} {kind[type(metric)]}")
            if isinstance(metric, Histogram):
                for bound, cum in metric.cumulative():
                    le = "+Inf" if bound == float("inf") else str(bound)
                    labels = dict(metric.labels, le=le)
                    lines.append(
                        f"{format_series(metric.name + '_bucket', labels)}"
                        f" {cum}")
                lines.append(f"{format_series(metric.name + '_count', metric.labels)}"
                             f" {metric.count}")
                lines.append(f"{format_series(metric.name + '_sum', metric.labels)}"
                             f" {metric.sum}")
            else:
                lines.append(f"{metric.series} {metric.value}")
        return "\n".join(lines)

    def series_matching(self, prefix: str) -> dict[str, Number]:
        """Snapshot filtered to series whose name starts with ``prefix``."""
        return {k: v for k, v in self.snapshot().items()
                if k.startswith(prefix)}


class Exposition:
    """Parsed Prometheus text exposition (see :func:`parse_exposition`)."""

    __slots__ = ("series", "help", "types")

    def __init__(self) -> None:
        self.series: dict[str, Number] = {}
        self.help: dict[str, str] = {}
        self.types: dict[str, str] = {}


def _unescape(value: str) -> str:
    """Reverse the text-format escapes (``\\\\``, ``\\"``, ``\\n``)."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            out.append({"\\": "\\", '"': '"', "n": "\n"}
                       .get(value[i + 1], value[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(body: str) -> dict[str, str]:
    """Parse the ``k="v",...`` interior of a label set, honouring escapes."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq]
        assert body[eq + 1] == '"', f"malformed label set: {body!r}"
        j = eq + 2
        raw: list[str] = []
        while body[j] != '"':
            if body[j] == "\\":
                raw.append(body[j:j + 2])
                j += 2
            else:
                raw.append(body[j])
                j += 1
        labels[key] = _unescape("".join(raw))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return labels


def parse_exposition(text: str) -> Exposition:
    """Parse Prometheus text exposition back into series/help/type maps.

    The inverse of :meth:`MetricsRegistry.render_prometheus`: series keys
    are re-canonicalised through :func:`format_series`, so for any
    registry ``parse_exposition(reg.render_prometheus()).series`` equals
    ``reg.snapshot()`` — the round-trip the unit tests pin.
    """
    out = Exposition()
    for line in text.splitlines():
        if not line or line.isspace():
            continue
        if line.startswith("# HELP "):
            name, _, rest = line[len("# HELP "):].partition(" ")
            out.help[name] = _unescape(rest)
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            out.types[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        if line.endswith("}"):  # labelled series: name{...} has no value
            raise ValueError(f"series line without a value: {line!r}")
        series, _, value = line.rpartition(" ")
        if "{" in series:
            name, _, rest = series.partition("{")
            labels = _parse_labels(rest[:-1])  # strip trailing "}"
            key = format_series(name, labels)
        else:
            key = series
        try:
            out.series[key] = int(value)
        except ValueError:
            out.series[key] = float(value)
    return out


def iter_label_values(snapshot: Mapping[str, Number],
                      name: str) -> Iterable[tuple[str, Number]]:
    """(series, value) pairs of one metric family from a snapshot."""
    for series, value in snapshot.items():
        if series == name or series.startswith(name + "{"):
            yield series, value


def merge_snapshots(snapshots: Iterable[Mapping[str, Number]]
                    ) -> dict[str, Number]:
    """Sum per-series values across many :meth:`MetricsRegistry.snapshot`\\ s.

    The fleet merge uses this to total counter-style series (``*_total``,
    histogram ``_count``/``_sum``/``_bucket``) across worker runs.
    Summation is the right fold for counters and histogram components;
    callers aggregating gauges should band them instead (a summed queue
    depth means nothing).  Deterministic: the result is key-sorted and
    independent of both snapshot order and per-snapshot key order.
    """
    per_series: dict[str, list[Number]] = {}
    for snapshot in snapshots:
        for series, value in snapshot.items():
            per_series.setdefault(series, []).append(value)
    # Sum in sorted value order: float addition is not associative, so an
    # order-free fold needs a canonical order to be byte-stable.
    return {series: sum(sorted(values))
            for series, values in sorted(per_series.items())}
