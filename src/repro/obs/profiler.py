"""Sim-engine profiling: events popped + host wall time per callback site.

Opt-in instrumentation for :class:`~repro.sim.engine.Simulator`: when a
profiler is installed the engine routes every popped event through
:meth:`SimProfiler.run`, which times the callback on the host clock and
attributes (count, wall ns) to the callback's *site* — the module-qualified
name of the function or method, which for the lambdas the substrate
schedules resolves to their enclosing scope (``Agent._init_rnic_state.
<lambda>`` and friends).  ``benchmarks/`` uses the report to say where a
simulated second of R-Pingmesh actually spends host CPU.

Determinism contract: wall time is **observability output, never
simulation input** — it is accumulated in the profiler only, outside sim
state, and nothing in the engine branches on it, so replay digests are
bit-identical with profiling on or off.  Event *counts* per site are
themselves deterministic and safe to assert on in tests; wall times are
not and must stay out of digests (:meth:`deterministic_snapshot` strips
them).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable


def callback_site(callback: Callable[[], None]) -> str:
    """Stable site name of a scheduled callback.

    Functions, bound methods, and lambdas carry ``__module__`` /
    ``__qualname__``; ``functools.partial`` is unwrapped to the function
    it wraps; other callable objects fall back to their type.
    """
    while isinstance(callback, functools.partial):
        callback = callback.func
    func = getattr(callback, "__func__", callback)
    qualname = getattr(func, "__qualname__", None)
    module = getattr(func, "__module__", None)
    if qualname is None:
        qualname = type(callback).__name__
        module = type(callback).__module__
    return f"{module}.{qualname}"


@dataclass(slots=True)
class SiteProfile:
    """Accumulated cost of one callback site."""

    site: str
    events: int = 0
    wall_ns: int = 0

    @property
    def mean_wall_ns(self) -> float:
        """Average host cost of one event at this site."""
        return self.wall_ns / self.events if self.events else 0.0


class SimProfiler:
    """Per-callback-site event and wall-time accounting."""

    def __init__(self) -> None:
        self.sites: dict[str, SiteProfile] = {}
        self.events_total = 0
        self.wall_total_ns = 0

    def run(self, callback: Callable[[], None]) -> None:
        """Execute one event under timing (called from the engine loop)."""
        start = time.perf_counter_ns()  # detlint: disable=DET001 measured, never fed back
        try:
            callback()
        finally:
            elapsed = time.perf_counter_ns() - start  # detlint: disable=DET001 measured, never fed back
            site = callback_site(callback)
            profile = self.sites.get(site)
            if profile is None:
                profile = self.sites[site] = SiteProfile(site)
            profile.events += 1
            profile.wall_ns += elapsed
            self.events_total += 1
            self.wall_total_ns += elapsed

    # -- reporting ------------------------------------------------------------

    def report(self, top: int = 0) -> list[SiteProfile]:
        """Sites by wall time, heaviest first (``top`` 0 = all).

        Ties (possible for sites never actually timed apart) break on the
        site name so the report order is reproducible.
        """
        ordered = sorted(self.sites.values(),
                         key=lambda s: (-s.wall_ns, -s.events, s.site))
        return ordered[:top] if top else ordered

    def deterministic_snapshot(self) -> dict[str, int]:
        """site -> events popped, with all wall times stripped.

        This is the digest-safe view: event attribution is a pure function
        of the schedule, wall time is not.
        """
        return {site: p.events for site, p in sorted(self.sites.items())}

    def render(self, top: int = 20) -> str:
        """Fixed-width profile table for the CLI / dashboards."""
        lines = [f"sim profile: {self.events_total} events, "
                 f"{self.wall_total_ns / 1e6:.1f} ms host wall time"]
        rows = self.report(top)
        if not rows:
            lines.append("  (no events profiled)")
            return "\n".join(lines)
        width = max(len(r.site) for r in rows)
        lines.append(f"  {'site':<{width}}  {'events':>9}  "
                     f"{'wall ms':>9}  {'ns/event':>9}  share")
        for row in rows:
            share = (row.wall_ns / self.wall_total_ns
                     if self.wall_total_ns else 0.0)
            lines.append(
                f"  {row.site:<{width}}  {row.events:>9}  "
                f"{row.wall_ns / 1e6:>9.2f}  {row.mean_wall_ns:>9.0f}  "
                f"{share:>5.1%}")
        return "\n".join(lines)
