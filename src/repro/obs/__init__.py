"""``repro.obs`` — the unified observability layer.

Three substrates, one switchboard:

* :class:`~repro.obs.tracer.Tracer` — probe-lifecycle spans (one per
  ``probe_seq``) fed by the Agent, RNIC, Fabric, PFC engine, and Analyzer;
* :class:`~repro.obs.metrics.MetricsRegistry` — deterministic counters /
  gauges / fixed-bucket histograms with a Prometheus-style exporter;
* :class:`~repro.obs.profiler.SimProfiler` — opt-in sim-engine
  instrumentation attributing events and host wall time per callback site.

:class:`Observability` bundles the three behind the single ``obs=`` knob of
:class:`~repro.core.system.RPingmesh`.  Everything defaults **off**: a
default-constructed system records nothing, schedules nothing, draws
nothing, and is bit-for-bit identical to a build without this package.
With tracing/metrics/profiling on, the layer still only *reads* the
simulation — sim state, event order, and RNG draws are untouched, so
replay digests do not change (the DESIGN.md §8 contract).
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               LATENCY_BUCKETS_NS)
from repro.obs.profiler import SimProfiler, SiteProfile, callback_site
from repro.obs.tracer import ProbeSpan, SpanEvent, Tracer

if TYPE_CHECKING:
    from repro.cluster import Cluster

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "LATENCY_BUCKETS_NS", "SimProfiler", "SiteProfile", "callback_site",
    "ProbeSpan", "SpanEvent", "Tracer", "Observability",
]


class Observability:
    """The ``obs=`` knob: tracing + metrics + profiling for one deployment.

    One instance belongs to one cluster/system pair — sharing across
    scenarios would leak state the way process-global counters do
    (detlint DET005).  All three sub-systems default off.
    """

    def __init__(self, *, tracing: bool = False, metrics: bool = False,
                 profiling: bool = False, max_spans: int = 200_000):
        self.tracing = tracing
        self.metrics_enabled = metrics
        self.profiling = profiling
        self.tracer = Tracer(enabled=tracing, max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self.profiler: Optional[SimProfiler] = (
            SimProfiler() if profiling else None)
        self._installed = False

    @property
    def enabled(self) -> bool:
        """Whether any sub-system is on."""
        return self.tracing or self.metrics_enabled or self.profiling

    # -- wiring ---------------------------------------------------------------

    def install(self, cluster: "Cluster") -> None:
        """Attach to a cluster's substrate (idempotent).

        Sets the tracer on the Fabric and every RNIC (only when tracing is
        on, so the disabled fast path stays a single ``is None`` check),
        installs the profiler on the Simulator, and registers pull-style
        metric collectors for the Fabric and RNIC tallies.  Called by
        :class:`~repro.core.system.RPingmesh`; safe to call directly for
        bare-substrate experiments.
        """
        if self._installed:
            return
        self._installed = True
        cluster.obs = self
        if self.tracing:
            cluster.fabric.tracer = self.tracer
            for rnic in cluster.all_rnics():
                rnic.tracer = self.tracer
        if self.profiling and self.profiler is not None:
            cluster.sim.set_profiler(self.profiler)
        if self.metrics_enabled:
            self.metrics.register_collector(
                partial(self._collect_substrate, cluster))

    def _collect_substrate(self, cluster: "Cluster") -> None:
        """Copy Fabric/RNIC/engine tallies into canonical metric series."""
        fabric = cluster.fabric
        self.metrics.counter("repro_fabric_packets_injected_total") \
            .value = fabric.packets_injected
        self.metrics.counter("repro_fabric_packets_delivered_total") \
            .value = fabric.packets_delivered
        for reason, count in sorted(fabric.drop_counts.items()):
            self.metrics.counter("repro_fabric_drops_total",
                                 reason=reason).value = count
        self.metrics.counter("repro_traceroute_traces_total") \
            .value = cluster.traceroute.traces_issued
        self.metrics.counter(
            "repro_traceroute_rate_limited_total",
            help="path hops lost to switch-CPU traceroute rate limiting"
        ).value = cluster.traceroute.rate_limited_hops
        self.metrics.counter("repro_sim_events_processed_total") \
            .value = cluster.sim.events_processed
        self.metrics.gauge("repro_sim_now_ns").set(cluster.sim.now)
        self.metrics.gauge(
            "repro_sim_event_pool_free",
            help="recycled _Event records parked on the engine free list"
        ).set(cluster.sim.event_pool_free)
        self.metrics.gauge(
            "repro_fabric_packet_pool_free",
            help="RoCE packets parked on the fabric packet pool free list"
        ).set(fabric.packet_pool.free_count)
        for rnic in cluster.all_rnics():
            self.metrics.counter("repro_rnic_tx_packets_total",
                                 rnic=rnic.name).value = rnic.tx_packets
            self.metrics.counter("repro_rnic_rx_packets_total",
                                 rnic=rnic.name).value = rnic.rx_packets
            self.metrics.counter("repro_rnic_tx_bytes_total",
                                 rnic=rnic.name).value = rnic.tx_bytes
            self.metrics.counter("repro_rnic_rx_bytes_total",
                                 rnic=rnic.name).value = rnic.rx_bytes
            for reason, count in sorted(rnic.local_drops.items()):
                self.metrics.counter("repro_rnic_local_drops_total",
                                     rnic=rnic.name,
                                     reason=reason).value = count
        if self.tracing:
            for key, value in self.tracer.summary().items():
                self.metrics.gauge(f"repro_obs_{key}").set(value)
        sanitizer = getattr(cluster, "sanitizer", None)
        if sanitizer is not None:
            # PoolSan per-pool lifetime accounting (DESIGN.md §12).  The
            # invariant acquired == released + live is checkable straight
            # off a metrics snapshot.
            for pool, stats in sanitizer.summary().items():
                self.metrics.counter("repro_poolsan_acquired_total",
                                     pool=pool).value = stats["acquired"]
                self.metrics.counter("repro_poolsan_released_total",
                                     pool=pool).value = stats["released"]
                self.metrics.gauge("repro_poolsan_live",
                                   pool=pool).set(stats["live"])
                self.metrics.gauge("repro_poolsan_retained",
                                   pool=pool).set(stats["retained"])
            self.metrics.counter("repro_poolsan_poison_writes_total") \
                .value = sanitizer.poison_writes
            self.metrics.counter("repro_poolsan_double_releases_total") \
                .value = sanitizer.double_releases
