"""Probe-lifecycle tracing: one span per probe, keyed by ``probe_seq``.

The paper's Analyzer can explain a timeout because every probe leaves a
trail — CQE timestamps ②-⑤, traced hops, Algorithm-1 votes.  The
:class:`Tracer` keeps that trail: the Agent opens a span when it posts a
probe (①), the RNIC model appends CQE events at the Figure-4 marks, the
Fabric appends one event per hop (enqueue/dequeue delay, ECMP fan-out,
drop cause), the PFC engine logs pause pressure, and the Analyzer closes
the loop with its classification verdict and localisation votes.

Spans are closed exactly once — by the Agent's result path, which both the
success and the timeout/drop paths funnel through — and verdict events are
*annotations* appended after close (the Analyzer only sees the probe one
upload batch later).  All timestamps are simulated nanoseconds; tracing
never reads wall clocks, never draws randomness, and never schedules
events, so enabling it cannot perturb the simulation.

Export: :meth:`Tracer.to_jsonl` (one span per line) and
:meth:`Tracer.render_timeline` (fixed-width per-probe text timeline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


@dataclass(slots=True)
class SpanEvent:
    """One timestamped step in a probe's life."""

    time_ns: int
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSONL / digest friendly)."""
        return {"t": self.time_ns, "name": self.name,
                **{k: self.fields[k] for k in sorted(self.fields)}}


@dataclass(slots=True)
class ProbeSpan:
    """The full recorded lifecycle of one probe."""

    seq: int
    opened_at_ns: int
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    closed_at_ns: Optional[int] = None
    status: Optional[str] = None          # "ok" | "timeout" | "lost_local"
    close_count: int = 0                  # test surface: must end at exactly 1

    @property
    def closed(self) -> bool:
        """Whether the Agent has finished this probe (result recorded)."""
        return self.closed_at_ns is not None

    def events_named(self, name: str) -> list[SpanEvent]:
        """All events with one name, in emission order."""
        return [e for e in self.events if e.name == name]

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form, fully sorted — identical across replays."""
        return {
            "seq": self.seq,
            "opened_at_ns": self.opened_at_ns,
            "closed_at_ns": self.closed_at_ns,
            "status": self.status,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "events": [e.to_dict() for e in self.events],
        }


class Tracer:
    """Cluster-wide probe-span store.

    Disabled (the default) every hook is a cheap no-op: callers guard with
    ``tracer.enabled``, and the hooks re-check, so a disabled run makes no
    allocations.  ``max_spans`` bounds memory: once reached, the oldest
    span is evicted (deterministically — insertion order) and counted in
    :attr:`spans_evicted`.
    """

    def __init__(self, *, enabled: bool = False, max_spans: int = 200_000):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: dict[int, ProbeSpan] = {}   # insertion-ordered by open
        # Fabric-wide events that belong to no single probe (PFC pause
        # pressure, storm onset/decay).  Bounded like the span store.
        self.fabric_events: list[SpanEvent] = []
        self.spans_opened = 0
        self.spans_evicted = 0
        self.events_recorded = 0

    # -- recording hooks ------------------------------------------------------

    def open_span(self, seq: int, now_ns: int, **attrs: Any) -> None:
        """Start the span for one probe (Agent send path, mark ①)."""
        if not self.enabled:
            return
        if len(self.spans) >= self.max_spans:
            self.spans.pop(next(iter(self.spans)))
            self.spans_evicted += 1
        self.spans[seq] = ProbeSpan(seq=seq, opened_at_ns=now_ns,
                                    attrs=dict(attrs))
        self.spans_opened += 1

    def event(self, seq: int, now_ns: int, name: str, **fields: Any) -> None:
        """Append one event to a live (or closed — annotations) span."""
        if not self.enabled:
            return
        span = self.spans.get(seq)
        if span is None:
            return  # evicted, or probe predates tracing
        span.events.append(SpanEvent(now_ns, name, fields))
        self.events_recorded += 1

    def close_span(self, seq: int, now_ns: int, status: str) -> None:
        """Finish a span (the Agent's single result path)."""
        if not self.enabled:
            return
        span = self.spans.get(seq)
        if span is None:
            return
        span.close_count += 1
        if span.close_count == 1:
            span.closed_at_ns = now_ns
            span.status = status

    def fabric_event(self, now_ns: int, name: str, **fields: Any) -> None:
        """Record a fabric-wide event (no probe_seq — e.g. a pause frame)."""
        if not self.enabled:
            return
        if len(self.fabric_events) >= self.max_spans:
            self.fabric_events.pop(0)
        self.fabric_events.append(SpanEvent(now_ns, name, fields))
        self.events_recorded += 1

    # -- queries --------------------------------------------------------------

    def span(self, seq: int) -> Optional[ProbeSpan]:
        """The span of one probe, if still retained."""
        return self.spans.get(seq)

    def all_spans(self) -> list[ProbeSpan]:
        """Every retained span, in open order."""
        return list(self.spans.values())

    def closed_spans(self) -> list[ProbeSpan]:
        """Spans whose probe completed (ok or timeout)."""
        return [s for s in self.spans.values() if s.closed]

    def open_spans(self) -> list[ProbeSpan]:
        """Spans still awaiting their result."""
        return [s for s in self.spans.values() if not s.closed]

    def first_with_status(self, status: str) -> Optional[ProbeSpan]:
        """Earliest span closed with ``status`` (e.g. ``"timeout"``)."""
        for span in self.spans.values():
            if span.status == status:
                return span
        return None

    # -- export ---------------------------------------------------------------

    def to_jsonl(self, spans: Optional[Iterable[ProbeSpan]] = None) -> str:
        """One JSON object per span per line (sorted keys: replay-stable)."""
        chosen = self.all_spans() if spans is None else list(spans)
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
            for span in chosen)

    def write_jsonl(self, path: str,
                    spans: Optional[Iterable[ProbeSpan]] = None) -> int:
        """Write :meth:`to_jsonl` output to ``path``; returns span count."""
        chosen = self.all_spans() if spans is None else list(spans)
        with open(path, "w", encoding="utf-8") as fh:
            text = self.to_jsonl(chosen)
            if text:
                fh.write(text + "\n")
        return len(chosen)

    def render_timeline(self, seq: int) -> str:
        """Fixed-width text timeline of one probe, Agent → hops → Analyzer."""
        span = self.spans.get(seq)
        if span is None:
            return f"probe {seq}: no span recorded (tracing off or evicted)"
        head = [f"probe {span.seq} "
                f"[{span.attrs.get('kind', '?')}] "
                f"{span.attrs.get('prober_rnic', '?')} -> "
                f"{span.attrs.get('target_rnic', '?')} "
                f"status={span.status or 'open'}"]
        if span.closed_at_ns is not None:
            dur_us = (span.closed_at_ns - span.opened_at_ns) / 1000
            head[0] += f" duration={dur_us:.1f}us"
        lines = head
        for event in span.events:
            offset_us = (event.time_ns - span.opened_at_ns) / 1000
            detail = " ".join(f"{k}={event.fields[k]}"
                              for k in sorted(event.fields))
            lines.append(f"  +{offset_us:10.1f}us  {event.name:<22} {detail}")
        return "\n".join(lines)

    def summary(self) -> dict[str, int]:
        """Span bookkeeping totals (dashboard surface)."""
        closed = self.closed_spans()
        return {
            "spans_opened": self.spans_opened,
            "spans_retained": len(self.spans),
            "spans_evicted": self.spans_evicted,
            "spans_open": len(self.spans) - len(closed),
            "spans_ok": sum(1 for s in closed if s.status == "ok"),
            "spans_timeout": sum(1 for s in closed if s.status == "timeout"),
            "events_recorded": self.events_recorded,
        }
