"""R-Pingmesh reproduction (SIGCOMM 2024).

A service-aware RoCE network monitoring and diagnostic system, rebuilt on a
deterministic discrete-event simulation of the substrate the paper's
production deployment relied on (commodity RNICs with CQE timestamps, a
3-tier Clos fabric with ECMP, DML workloads, eBPF QP tracing).

Quick start::

    from repro import Cluster, RPingmesh
    from repro.sim import units

    cluster = Cluster.clos(seed=7)
    system = RPingmesh(cluster)
    system.run(units.minutes(2))
    print(system.analyzer.sla.latest())
"""

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.system import RPingmesh

__version__ = "1.0.0"

__all__ = ["Cluster", "RPingmesh", "RPingmeshConfig", "__version__"]
