"""Command-line interface: run scenarios against a simulated deployment.

Usage (installed as ``repro-pingmesh``, or ``python -m repro.cli``)::

    repro-pingmesh monitor  [--seed N] [--duration S] [--metrics-port P]
    repro-pingmesh serve    [--port P] [--pace S] [--checkpoint PATH]
    repro-pingmesh inject   --fault FAULT [--duration S] [--seed N]
    repro-pingmesh triage   [--scenario compute_bug|switch_drops]
    repro-pingmesh catalog  [--rows 1,2,...]
    repro-pingmesh trace    [--probe SEQ] [--jsonl PATH] [--seed N]
    repro-pingmesh metrics  [--seed N] [--duration S]
    repro-pingmesh profile  [--top K] [--seed N] [--duration S]
    repro-pingmesh backends [--list] [--kinds K,...] [--modes M,...]
    repro-pingmesh fleet    run [--preset P] [--workers N] [--out PATH]
    repro-pingmesh fleet    report --artifact PATH

* ``monitor`` — deploy on a healthy cluster and print SLA dashboards;
  alert rules are evaluated every simulated second and ``--metrics-port``
  exposes ``/metrics`` for the duration of the batch run.
* ``serve``   — the long-running service mode: wall-clock-paced ticks, a
  Prometheus ``/metrics`` endpoint, health/readiness probes, on-demand
  checkpoints, and an optional live TUI (DESIGN.md §13).
* ``inject``  — inject one named fault and watch detection/localisation.
* ``triage``  — the §7.2 "is it a network problem?" workflow.
* ``catalog`` — run Table 2 rows end to end.
* ``trace``   — run the reference scenario with tracing on and print one
  probe's full timeline (Agent send → per-hop fabric events → CQE marks
  → Analyzer verdict); ``--jsonl`` exports every span.
* ``metrics`` — same scenario with the metrics registry on; prints the
  Prometheus-style exposition.
* ``profile`` — same scenario under sim-engine profiling; prints host
  wall time per callback site.
* ``backends`` — race the diagnosis backends (probe, INT, Pingmesh) over
  the bake-off fault registry and print BENCH comparison lines.
* ``fleet``   — run a named scenario sweep across worker processes and
  merge it into a deterministic scorecard (``run``), or re-render a
  previously written scorecard artifact (``report``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.dashboard import render_analyzer_state, render_control_plane
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams
from repro.net.faults import (ControlPlanePartition, CpuOverload,
                              LinkCorruption, PcieDowngrade, PfcDeadlock,
                              RnicDown, RnicFlapping, SwitchPortFlapping)
from repro.sim.units import MILLISECOND, seconds

FAULTS = {
    "flap-port": lambda c: SwitchPortFlapping(c, "pod0-tor0", "pod0-agg0"),
    "flap-rnic": lambda c: RnicFlapping(c, "host0-rnic0"),
    "corrupt-link": lambda c: LinkCorruption(c, "pod0-tor0", "pod0-agg0",
                                             drop_prob=0.5),
    "rnic-down": lambda c: RnicDown(c, "host0-rnic0"),
    "pfc-deadlock": lambda c: PfcDeadlock(c, "pod0-agg0", "spine0"),
    "cpu-overload": lambda c: CpuOverload(c, "host0", load=0.85),
    "pcie-downgrade": lambda c: PcieDowngrade(c, "host1-rnic0"),
    "partition-agent": lambda c: ControlPlanePartition.for_host(c, "host0"),
    "partition-controller": lambda c: ControlPlanePartition(c, "controller"),
}


def _config_from_args(args: argparse.Namespace) -> RPingmeshConfig:
    config = RPingmeshConfig()
    if getattr(args, "control_latency_ms", 0):
        config.control_latency_ns = args.control_latency_ms * MILLISECOND
        config.control_jitter_ns = config.control_latency_ns // 2
    if getattr(args, "control_loss", 0.0):
        config.control_loss_prob = args.control_loss
    return config


def _deploy(seed: int,
            config: Optional[RPingmeshConfig] = None
            ) -> tuple[Cluster, RPingmesh]:
    cluster = Cluster.clos(
        ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=3),
        seed=seed)
    system = RPingmesh(cluster, config)
    system.start()
    return cluster, system


def cmd_monitor(args: argparse.Namespace) -> int:
    from repro.serve import ServeSession, ServeSpec
    from repro.serve.alerts import AlertRule
    from repro.serve.session import DEFAULT_ALERT_RULES

    config = _config_from_args(args)
    rules = tuple(AlertRule.parse(text)
                  for text in (args.rule or DEFAULT_ALERT_RULES))
    spec = ServeSpec(seed=args.seed, pods=2, tors_per_pod=2,
                     aggs_per_pod=2, spines=2, hosts_per_tor=3,
                     control_latency_ns=config.control_latency_ns,
                     control_jitter_ns=config.control_jitter_ns,
                     control_loss_prob=config.control_loss_prob,
                     rules=rules)
    session = ServeSession(spec)
    server = None
    if args.metrics_port is not None:
        from repro.serve.http import ServeHTTPServer
        server = ServeHTTPServer(session, port=args.metrics_port)
        server.start()
        print(f"metrics: {server.url}/metrics")
    print(f"monitoring a {session.cluster.size}-RNIC cluster for "
          f"{args.duration}s of simulated time...")
    try:
        for _ in range(args.duration):
            if server is not None:
                with server.lock:
                    transitions = session.tick()
            else:
                transitions = session.tick()
            for event in transitions:
                print(f"  alert {event.state:<8} {event.alert} "
                      f"value={event.value} at t={event.sim_now_ns // 10**9}s")
    finally:
        if server is not None:
            server.stop()
    print(render_analyzer_state(session.system.analyzer))
    if args.control_plane:
        print(render_control_plane(session.system))
    firing = session.alerts.firing()
    if firing:
        print("alerts firing: " + ", ".join(firing))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (ServeSession, ServeSpec, load_checkpoint,
                             parse_fault_spec, save_checkpoint)
    from repro.serve.alerts import AlertRule
    from repro.serve.http import ServeHTTPServer
    from repro.serve.runner import run_serve
    from repro.serve.session import DEFAULT_ALERT_RULES
    from repro.serve.tui import render_serve

    if args.restore:
        session = load_checkpoint(args.restore)
        print(f"restored {args.restore}: tick={session.ticks} "
              f"sim={session.cluster.sim.now // 10**9}s "
              f"config={session.config_digest[:12]}")
    else:
        campaign = tuple(parse_fault_spec(text) for text in args.fault)
        rules = tuple(AlertRule.parse(text)
                      for text in (args.rule or DEFAULT_ALERT_RULES))
        spec = ServeSpec(seed=args.seed, pods=args.pods,
                         tors_per_pod=args.tors_per_pod,
                         aggs_per_pod=args.aggs_per_pod,
                         spines=args.spines,
                         hosts_per_tor=args.hosts_per_tor,
                         shards=args.shards, campaign=campaign,
                         rules=rules)
        session = ServeSession(spec)
    server = ServeHTTPServer(session, host=args.host, port=args.port,
                             checkpoint_path=args.checkpoint or None,
                             allow_inject=args.allow_inject)
    server.start()
    print(f"serving on {server.url}  seed={session.spec.seed} "
          f"shards={session.spec.shards} tick={session.ticks}")

    def frame(s: "ServeSession") -> None:
        if args.tui:
            prefix = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
            print(prefix + render_serve(s, url=server.url))
        if (args.checkpoint and args.checkpoint_every
                and s.ticks % args.checkpoint_every == 0):
            with server.lock:
                save_checkpoint(s, args.checkpoint)

    try:
        executed = run_serve(session, server, pace_s=args.pace,
                             max_ticks=args.ticks, render=frame)
    except KeyboardInterrupt:
        executed = None
        print("interrupted; shutting down cleanly")
    finally:
        if args.checkpoint:
            with server.lock:
                save_checkpoint(session, args.checkpoint)
            print(f"checkpoint written: {args.checkpoint} "
                  f"(tick={session.ticks})")
        server.stop()
    suffix = "" if executed is None else f" ({executed} this run)"
    print(f"stopped at tick={session.ticks}{suffix} "
          f"digest={session.replay_digest()[:12]}")
    return 0


def cmd_inject(args: argparse.Namespace) -> int:
    if args.fault not in FAULTS:
        print(f"unknown fault {args.fault!r}; choose from: "
              f"{', '.join(sorted(FAULTS))}", file=sys.stderr)
        return 2
    cluster, system = _deploy(args.seed)
    cluster.sim.run_for(seconds(30))
    print(f"baseline established; injecting {args.fault} ...")
    fault = FAULTS[args.fault](cluster)
    fault.inject()
    cluster.sim.run_for(seconds(args.duration))
    fault.clear()
    print(render_analyzer_state(system.analyzer))
    if args.fault.startswith("partition-"):
        print(render_control_plane(system))
    truth = fault.ground_truth
    print(f"ground truth: table2_row={truth.table2_row} "
          f"category={truth.category.value} locus={truth.locus}")
    return 0


def cmd_triage(args: argparse.Namespace) -> int:
    from repro.services.dml import CommPattern, DmlConfig, DmlJob
    from repro.sim.units import milliseconds
    cluster, system = _deploy(args.seed)
    job = DmlJob(cluster, cluster.rnic_names()[:8],
                 DmlConfig(pattern=CommPattern.ALLREDUCE,
                           compute_time_ns=milliseconds(500),
                           data_gbits_per_cycle=4.0))
    system.attach_service_monitor(job)
    cluster.sim.run_for(seconds(5))
    job.start()
    cluster.sim.run_for(seconds(30))
    if args.scenario == "compute_bug":
        print("scenario: hidden compute degradation (4%/cycle)")
        job.set_compute_degradation(0.04)
    else:
        print("scenario: corruption on a service-network link")
        LinkCorruption(cluster, "pod0-tor0", "pod0-agg0",
                       drop_prob=0.4).inject()
    cluster.sim.run_for(seconds(90))
    print(render_analyzer_state(system.analyzer))
    print(f"service degraded: {job.degraded()}")
    print(f"network innocent: {system.analyzer.network_innocent()}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from pathlib import Path
    from repro.experiments import (export, fig01_flapping,
                                   fig02_pingmesh_load, fig05_sla,
                                   fig10_service_capture)
    out = Path(args.out)
    written = []
    print("regenerating figure data (several minutes of simulation)...")
    written.append(export.export_fig01(
        fig01_flapping.run("switch_port", seed=args.seed), out))
    written.append(export.export_fig02(
        fig02_pingmesh_load.run(seed=args.seed, epoch_s=20), out))
    written.extend(export.export_fig05(fig05_sla.run(seed=args.seed), out))
    written.append(export.export_fig10(
        fig10_service_capture.run(seed=args.seed, duration_s=40), out))
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    from repro.experiments import tab02_catalog
    rows = ([int(r) for r in args.rows.split(",")] if args.rows
            else list(range(1, 15)))
    failures = 0
    for row in rows:
        outcome = tab02_catalog.run_row(row, fault_s=45)
        ok = (outcome.detected and outcome.signal_matches
              and outcome.service_failure_matches)
        failures += 0 if ok else 1
        status = "ok" if ok else "MISMATCH"
        print(f"row {row:>2} {outcome.root_cause:<40} "
              f"detected={outcome.detected} {status}")
    return 1 if failures else 0


def _run_reference_scenario(seed: int, duration_s: int, obs) -> None:
    """Run the replay-reference scenario with an observability layer on."""
    from repro.analysis.runtime import default_scenario
    default_scenario(seed, duration_ns=seconds(duration_s), obs=obs)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    obs = Observability(tracing=True)
    _run_reference_scenario(args.seed, args.duration, obs)
    tracer = obs.tracer
    summary = tracer.summary()
    print("tracer: " + " ".join(f"{k}={v}" for k, v in summary.items()))
    if args.jsonl:
        count = tracer.write_jsonl(args.jsonl)
        print(f"wrote {count} spans to {args.jsonl}")
    if args.probe is not None:
        seq = args.probe
    else:
        # Timed-out probes make the most instructive timelines (they show
        # the drop and the Analyzer's verdict); fall back to any span.
        chosen = tracer.first_with_status("timeout")
        if chosen is None and tracer.all_spans():
            chosen = tracer.all_spans()[0]
        if chosen is None:
            print("no spans recorded", file=sys.stderr)
            return 1
        seq = chosen.seq
    print(tracer.render_timeline(seq))
    if args.selftest:
        # Spans still open at the cutoff are probes legitimately in
        # flight; completeness means: the rendered span is closed with an
        # agent.send, and nothing closed more than once.
        span = tracer.span(seq)
        complete = (span is not None and span.closed
                    and bool(span.events_named("agent.send"))
                    and all(s.close_count <= 1
                            for s in tracer.all_spans()))
        print(f"selftest: span_closed={bool(span and span.closed)} "
              f"in_flight={len(tracer.open_spans())}")
        return 0 if complete else 1
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    obs = Observability(metrics=True)
    _run_reference_scenario(args.seed, args.duration, obs)
    print(obs.metrics.render_prometheus())
    if args.selftest:
        snap = obs.metrics.snapshot()
        sent = [v for k, v in snap.items()
                if k.startswith("repro_controlplane_sent_total")]
        ok = bool(sent) and sum(sent) > 0 \
            and snap.get("repro_sim_events_processed_total", 0) > 0
        print(f"selftest: series={len(snap)} endpoint_sent={sum(sent)}")
        return 0 if ok else 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import Observability
    obs = Observability(profiling=True)
    _run_reference_scenario(args.seed, args.duration, obs)
    assert obs.profiler is not None
    print(obs.profiler.render(top=args.top))
    if args.selftest:
        counts = obs.profiler.deterministic_snapshot()
        ok = obs.profiler.events_total > 0 and len(counts) > 1
        print(f"selftest: sites={len(counts)} "
              f"events={obs.profiler.events_total}")
        return 0 if ok else 1
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    import json

    from repro.diagnosis.backend import available_backends, create_backend
    from repro.diagnosis.bakeoff import (MODES, bakeoff_cases,
                                         case_by_label, int_verdict_loci,
                                         record, run_case)

    if args.list:
        for name in available_backends():
            backend = create_backend(name)
            doc = (type(backend).__doc__ or "").strip().splitlines()
            print(f"{name:<10} {doc[0] if doc else ''}")
        return 0

    if args.selftest:
        # CI-sized slice: probe vs fused over one congestion case (the
        # exact-directed-link claim) and two failure cases (recall
        # parity) — 3 kinds x 2 backends' worth of runs.
        kinds = ["link_overload_tor_agg", "rnic_down", "link_corruption"]
        modes = ["probe", "fused"]
    else:
        kinds = args.kinds.split(",") if args.kinds else \
            [c.label for c in bakeoff_cases()]
        modes = args.modes.split(",") if args.modes else list(MODES)

    ok = True
    by_case: dict[str, dict[str, dict]] = {}
    for label in kinds:
        case = case_by_label(label)
        for mode in modes:
            result = run_case(case, mode, args.seed)
            rec = record(case, mode, result)
            rec["int_loci"] = int_verdict_loci(result)
            by_case.setdefault(label, {})[mode] = rec
            print("BENCH " + json.dumps(rec, sort_keys=True))
    for label, runs in by_case.items():
        case = case_by_label(label)
        fused = runs.get("fused")
        probe = runs.get("probe")
        if fused and case.hot_link is not None:
            exact = fused["int_loci"] == [case.hot_link]
            ok &= exact
            print(f"{label}: int_exact_link={exact} "
                  f"({'/'.join(fused['int_loci']) or 'none'})")
        if fused and probe:
            not_worse = (fused["recall"] >= probe["recall"]
                         and fused["precision"] >= probe["precision"])
            ok &= not_worse
            print(f"{label}: fused_not_worse={not_worse} "
                  f"(recall {probe['recall']:.2f}->{fused['recall']:.2f})")
    if args.selftest:
        print(f"selftest: ok={ok}")
    return 0 if ok else 1


def cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.core.dashboard import render_fleet
    from repro.fleet import FleetProgress, FleetRunner, merge
    from repro.fleet.presets import PRESETS

    seeds = tuple(int(s) for s in args.seeds.split(",")) if args.seeds \
        else None
    replicates = 2 if args.selftest else args.replicates
    builder = PRESETS[args.preset]
    sweep = (builder(seeds, replicates=replicates) if seeds is not None
             else builder(replicates=replicates))
    if args.sanitize:
        from dataclasses import replace
        sweep = replace(sweep, scenarios=tuple(
            replace(spec, sanitize=True) for spec in sweep.scenarios))

    def show(event: FleetProgress) -> None:
        if args.quiet or event.kind == "submit":
            return
        detail = f" ({event.error})" if event.error else ""
        print(f"  [{event.completed}/{event.total}] {event.kind:<6} "
              f"{event.scenario} seed={event.seed} "
              f"attempt={event.attempt}{detail}")

    runner = FleetRunner(workers=args.workers, max_retries=args.retries,
                         default_timeout_s=args.timeout, progress=show)
    print(f"fleet run: preset={args.preset} jobs={len(sweep.jobs())} "
          f"workers={args.workers}")
    outcome = runner.run(sweep)
    scorecard = merge(outcome.results)
    print(render_fleet(scorecard))
    print(f"wall={outcome.wall_s:.1f}s retries={outcome.retries} "
          f"failures={len(outcome.failures)}")
    for failure in outcome.failures:
        print(f"  FAILED {failure.scenario} seed={failure.seed} "
              f"after {failure.attempts} attempts: {failure.error}",
              file=sys.stderr)
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(scorecard.to_json() + "\n")
        print(f"wrote {args.out}")
    if args.selftest:
        # Two deterministic reorderings stand in for completion-order
        # jitter: reversal and a rotation.
        results = outcome.results
        reordered = [list(reversed(results)), results[1:] + results[:1]]
        shuffle_stable = all(merge(r).to_json() == scorecard.to_json()
                             for r in reordered)
        checks = {
            "all_jobs_ran": outcome.ok,
            "replicates_replayed_identically": scorecard.consistent,
            "merge_order_independent": shuffle_stable,
            "duplicates_checked":
                scorecard.determinism.get("duplicated_jobs", 0) > 0,
        }
        print("selftest: " + " ".join(f"{k}={v}"
                                      for k, v in checks.items()))
        return 0 if all(checks.values()) else 1
    return 0 if outcome.ok else 1


def cmd_fleet_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.core.dashboard import render_fleet
    from repro.fleet.merge import scorecard_from_dict

    try:
        data = scorecard_from_dict(
            json.loads(Path(args.artifact).read_text()))
    except (OSError, ValueError) as exc:
        print(f"cannot read scorecard: {exc}", file=sys.stderr)
        return 2
    print(render_fleet(data))
    det = data.get("determinism", {})
    return 0 if det.get("consistent", True) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pingmesh",
        description="R-Pingmesh reproduction scenarios")
    sub = parser.add_subparsers(dest="command", required=True)

    monitor = sub.add_parser("monitor", help="healthy-cluster SLA watch")
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument("--duration", type=int, default=60,
                         help="simulated seconds")
    monitor.add_argument("--control-plane", action="store_true",
                         help="also print management-network metrics")
    monitor.add_argument("--control-latency-ms", type=int, default=0,
                         help="management-network latency (default 0)")
    monitor.add_argument("--control-loss", type=float, default=0.0,
                         help="management-network loss probability")
    monitor.add_argument("--rule", action="append", default=[],
                         help="alert rule 'NAME: SERIES OP THRESHOLD "
                              "[for N] [keep M]' (repeatable; default: "
                              "the built-in pair)")
    monitor.add_argument("--metrics-port", type=int, default=None,
                         help="expose /metrics on this port during the "
                              "batch run (0 = ephemeral)")
    monitor.set_defaults(func=cmd_monitor)

    serve = sub.add_parser("serve",
                           help="long-running monitor with /metrics, "
                                "alerting, checkpoints, and a live TUI")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--pods", type=int, default=1)
    serve.add_argument("--tors-per-pod", type=int, default=2)
    serve.add_argument("--aggs-per-pod", type=int, default=2)
    serve.add_argument("--spines", type=int, default=1)
    serve.add_argument("--hosts-per-tor", type=int, default=2)
    serve.add_argument("--shards", type=int, default=1,
                       help="control-plane shards (1 = unsharded)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="HTTP port (0 = ephemeral; printed on boot)")
    serve.add_argument("--pace", type=float, default=1.0,
                       help="wall-clock seconds per tick (0 = flat out)")
    serve.add_argument("--ticks", type=int, default=None,
                       help="stop after this many ticks (default: run "
                            "until POST /shutdown or SIGINT)")
    serve.add_argument("--checkpoint", default="",
                       help="checkpoint file path; written on exit, on "
                            "POST /checkpoint, and every "
                            "--checkpoint-every ticks")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="auto-checkpoint period in ticks (0 = off)")
    serve.add_argument("--restore", default="",
                       help="resume from this checkpoint file (world "
                            "flags are ignored; the spec rides along)")
    serve.add_argument("--fault", action="append", default=[],
                       help="schedule 'KIND@START[-END]:LOCUS,...[:k=v,"
                            "...]' (repeatable, simulated seconds)")
    serve.add_argument("--rule", action="append", default=[],
                       help="alert rule (same grammar as monitor --rule)")
    serve.add_argument("--allow-inject", action="store_true",
                       help="enable the POST /inject endpoint")
    serve.add_argument("--tui", action="store_true",
                       help="render a live dashboard frame every tick")
    serve.set_defaults(func=cmd_serve)

    inject = sub.add_parser("inject", help="inject one fault and watch")
    inject.add_argument("--fault", required=True,
                        choices=sorted(FAULTS))
    inject.add_argument("--seed", type=int, default=0)
    inject.add_argument("--duration", type=int, default=45)
    inject.set_defaults(func=cmd_inject)

    triage = sub.add_parser("triage", help="§7.2 is-it-the-network")
    triage.add_argument("--scenario", default="compute_bug",
                        choices=["compute_bug", "switch_drops"])
    triage.add_argument("--seed", type=int, default=0)
    triage.set_defaults(func=cmd_triage)

    catalog = sub.add_parser("catalog", help="run Table 2 rows")
    catalog.add_argument("--rows", default="",
                         help="comma-separated row numbers (default all)")
    catalog.set_defaults(func=cmd_catalog)

    figures = sub.add_parser("figures",
                             help="export figure series as CSV")
    figures.add_argument("--out", default="results")
    figures.add_argument("--seed", type=int, default=0)
    figures.set_defaults(func=cmd_figures)

    def obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--duration", type=int, default=45,
                       help="simulated seconds of the reference scenario")
        p.add_argument("--selftest", action="store_true",
                       help="assert the layer worked; exit non-zero if not")

    trace = sub.add_parser("trace", help="probe-lifecycle timeline")
    obs_args(trace)
    trace.add_argument("--probe", type=int, default=None,
                       help="probe_seq to render (default: first timeout)")
    trace.add_argument("--jsonl", default="",
                       help="also export every span as JSONL to this path")
    trace.set_defaults(func=cmd_trace)

    metrics = sub.add_parser("metrics",
                             help="Prometheus-style metrics snapshot")
    obs_args(metrics)
    metrics.set_defaults(func=cmd_metrics)

    profile = sub.add_parser("profile", help="sim-engine callback profile")
    obs_args(profile)
    profile.add_argument("--top", type=int, default=20,
                         help="callback sites to show")
    profile.set_defaults(func=cmd_profile)

    backends = sub.add_parser(
        "backends",
        help="race diagnosis backends over the fault registry")
    backends.add_argument("--list", action="store_true",
                          help="print the registered backends and exit")
    backends.add_argument("--kinds", default="",
                          help="comma-separated bake-off case labels "
                               "(default: all)")
    backends.add_argument("--modes", default="",
                          help="comma-separated modes from probe, fused, "
                               "pingmesh (default: all)")
    backends.add_argument("--seed", type=int, default=0)
    backends.add_argument("--selftest", action="store_true",
                          help="reduced bake-off (2 backends x 3 fault "
                               "kinds); exit non-zero unless INT names "
                               "the exact link and fused is never worse")
    backends.set_defaults(func=cmd_backends)

    fleet = sub.add_parser("fleet", help="parallel scenario sweeps")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser("run", help="execute a named sweep")
    # Keep in sync with repro.fleet.presets.PRESETS (imported lazily so
    # `repro-pingmesh --help` stays light).
    fleet_run.add_argument("--preset", default="smoke",
                           choices=["smoke", "accuracy", "sharded"])
    fleet_run.add_argument("--seeds", default="",
                           help="comma-separated seeds (default: preset's)")
    fleet_run.add_argument("--workers", type=int, default=1,
                           help="worker processes (1 = inline)")
    fleet_run.add_argument("--replicates", type=int, default=1,
                           help="times to run each (scenario, seed) job")
    fleet_run.add_argument("--retries", type=int, default=1,
                           help="re-attempts per crashed or hung job")
    fleet_run.add_argument("--timeout", type=float, default=None,
                           help="per-scenario wall-clock budget in seconds")
    fleet_run.add_argument("--out", default="",
                           help="write the scorecard JSON artifact here")
    fleet_run.add_argument("--quiet", action="store_true",
                           help="suppress per-job progress lines")
    fleet_run.add_argument("--sanitize", action="store_true",
                           help="run every scenario under the PoolSan "
                                "pool-lifetime sanitizer; jobs fail on "
                                "any finding (digests are unchanged)")
    fleet_run.add_argument("--selftest", action="store_true",
                           help="replicate jobs and assert determinism "
                                "+ merge order-independence")
    fleet_run.set_defaults(func=cmd_fleet_run)
    fleet_report = fleet_sub.add_parser(
        "report", help="render a scorecard artifact")
    fleet_report.add_argument("--artifact", required=True,
                              help="path to a fleet scorecard JSON")
    fleet_report.set_defaults(func=cmd_fleet_report)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
