"""Congestion-control models (paper §7.3, Figure 11 right).

The simulation does not run per-packet CC state machines; what the figures
need is the *steady-state signature* a CC algorithm leaves on a congested
link: how much standing queue it maintains (tail-RTT driver) and what
fraction of capacity it converts into goodput (throughput driver).

* **DCQCN** (the commodity-RNIC default) reacts to ECN after queues have
  already built and oscillates around a substantial standing queue.
* **The paper's self-developed CC** keeps queues near-empty and utilisation
  slightly higher — Figure 11 (right) shows it reducing tail RTT and
  improving training throughput, which these two parameters reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CcModel:
    """Steady-state congestion-control signature."""

    name: str
    # Fraction of the bottleneck buffer occupied as standing queue when the
    # offered load exceeds capacity.
    congested_queue_fill: float
    # Fraction of link capacity converted to goodput under congestion.
    goodput_efficiency: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.congested_queue_fill <= 1.0:
            raise ValueError("queue fill must be in [0, 1]")
        if not 0.0 < self.goodput_efficiency <= 1.0:
            raise ValueError("goodput efficiency must be in (0, 1]")


DCQCN = CcModel(name="dcqcn", congested_queue_fill=0.60,
                goodput_efficiency=0.90)

# The paper's self-developed algorithm: near-empty queues, higher goodput.
CUSTOM_CC = CcModel(name="custom", congested_queue_fill=0.06,
                    goodput_efficiency=0.97)
