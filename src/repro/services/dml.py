"""Distributed machine-learning workload (paper §2, Figures 1/5/9/10/11).

The DML job alternates *compute* and *communicate* phases, a few seconds per
cycle, and periodically pauses to checkpoint over TCP:

* Connections are real simulated **RC QPs** established through the verbs
  layer, so the host's eBPF tracer (and therefore R-Pingmesh Service
  Tracing) sees every 5-tuple the job uses.
* Gradient traffic is fluid (`repro.services.traffic`), pinned to each
  connection's ECMP path.
* **Barrel effect**: the communicate phase ends when the *slowest*
  connection finishes, so one degraded flow stretches every cycle and
  collapses the cluster-average training throughput (Figure 1).
* RDMA's loss sensitivity: a connection whose path drops packets loses
  go-back-N windows; throughput falls superlinearly with loss.  With
  default retransmission settings a severely flapping path *breaks* the
  connection and fails the task (the "error code 12" of §2.1); with the
  paper's mitigation (max retransmission count, long timeout) the task
  survives at degraded throughput.
* **Checkpoints** idle the RoCE network and pin host CPUs (TCP is CPU
  intensive) — the Figure 5 signature: RTT dips while processing delay
  rises.

Communication patterns: ring **AllReduce** (light congestion) and full-mesh
**All2All** (heavy incast congestion) — Figures 10/11.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.cluster import Cluster
from repro.host.rnic import CommInfo, QPType, QueuePair
from repro.net.addresses import (MAX_SRC_PORT, MIN_SRC_PORT,
                                 roce_five_tuple)
from repro.services.traffic import Flow, TrafficEngine
from repro.sim.stats import TimeSeries
from repro.sim.units import SECOND

# Loss -> throughput collapse: one lost packet costs a go-back-N window.
GO_BACK_N_WINDOW = 64
# Throughput floor while a path is flapping but the connection survives.
FLAPPING_RESIDUAL_FACTOR = 0.01
# Corruption heavier than this breaks untuned connections outright.
BREAKING_DROP_PROB = 0.20
# Communicate phases never stretch beyond this factor of nominal (beyond
# it the job is effectively stalled; keeps simulated time moving).
MAX_STRETCH = 120.0


class CommPattern(Enum):
    """Collective communication patterns (§7.3)."""

    ALLREDUCE = "allreduce"   # ring: each rank sends to its neighbour
    ALL2ALL = "all2all"       # full mesh: heavy incast


@dataclass
class DmlConfig:
    """Shape and timing of the training job."""

    pattern: CommPattern = CommPattern.ALLREDUCE
    data_gbits_per_cycle: float = 8.0      # per connection, per cycle
    compute_time_ns: int = 1 * SECOND
    per_flow_demand_gbps: float = 90.0
    checkpoint_every_cycles: int = 0       # 0 = never
    checkpoint_duration_ns: int = 4 * SECOND
    # CPU loads per phase (drive processing-delay measurements).
    compute_cpu_load: float = 0.45
    comm_cpu_load: float = 0.30
    checkpoint_cpu_load: float = 0.88
    # §7.1 #1 mitigation: max retransmission count + long timeouts.
    retransmission_tuned: bool = True
    # Service-team degradation threshold (fraction of baseline).
    degradation_threshold: float = 0.7


class DmlConnection:
    """One RC connection of the job (one direction of gradient flow)."""

    def __init__(self, src_rnic: str, dst_rnic: str, src_port: int):
        self.src_rnic = src_rnic
        self.dst_rnic = dst_rnic
        self.src_port = src_port
        self.src_qp: Optional[QueuePair] = None
        self.dst_qp: Optional[QueuePair] = None
        self.broken = False


class DmlJob:
    """A training job over a subset of the cluster's RNICs.

    Implements the Analyzer's :class:`~repro.core.analyzer.ServiceMonitor`
    protocol through :meth:`degraded`.
    """

    def __init__(self, cluster: Cluster, participants: list[str],
                 config: Optional[DmlConfig] = None, *,
                 traffic: Optional[TrafficEngine] = None):
        if len(participants) < 2:
            raise ValueError("a DML job needs at least two RNICs")
        self.cluster = cluster
        self.participants = list(participants)
        self.config = config or DmlConfig()
        self.traffic = traffic or TrafficEngine(cluster)
        self.rng = cluster.rngs.stream("dml")
        self.connections: list[DmlConnection] = []
        self.throughput = TimeSeries("training_throughput_gbps")
        self.checkpoint_windows: list[tuple[int, int]] = []
        self.cycles_completed = 0
        self.task_failed = False
        self.compute_speed_factor = 1.0
        self._compute_decay_per_cycle = 0.0
        self._running = False
        self._in_comm_phase = False
        self._baseline: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Establish connections (visible to eBPF) and begin cycling."""
        if self._running:
            return
        self._running = True
        self._establish_connections()
        self._begin_compute()

    def stop(self) -> None:
        """Tear the job down: destroy QPs, clear traffic."""
        if not self._running:
            return
        self._running = False
        self.traffic.clear()
        for conn in self.connections:
            self._destroy_connection(conn)
        self._set_participant_load(0.10)

    def _pairs(self) -> list[tuple[str, str]]:
        n = len(self.participants)
        if self.config.pattern == CommPattern.ALLREDUCE:
            return [(self.participants[i], self.participants[(i + 1) % n])
                    for i in range(n)]
        return [(a, b) for a in self.participants
                for b in self.participants if a != b]

    def _establish_connections(self) -> None:
        for src, dst in self._pairs():
            conn = DmlConnection(
                src, dst, self.rng.randint(MIN_SRC_PORT, MAX_SRC_PORT))
            self._connect(conn)
            self.connections.append(conn)

    def _connect(self, conn: DmlConnection) -> None:
        src_rnic = self.cluster.rnic(conn.src_rnic)
        dst_rnic = self.cluster.rnic(conn.dst_rnic)
        src_host = self.cluster.host_of_rnic(conn.src_rnic)
        dst_host = self.cluster.host_of_rnic(conn.dst_rnic)
        conn.src_qp = src_host.verbs.create_qp(src_rnic, QPType.RC)
        conn.dst_qp = dst_host.verbs.create_qp(dst_rnic, QPType.RC)
        src_host.verbs.connect_qp(
            src_rnic, conn.src_qp,
            CommInfo(ip=dst_rnic.ip, gid=dst_rnic.gid.value,
                     qpn=conn.dst_qp.qpn),
            conn.src_port)
        dst_host.verbs.connect_qp(
            dst_rnic, conn.dst_qp,
            CommInfo(ip=src_rnic.ip, gid=src_rnic.gid.value,
                     qpn=conn.src_qp.qpn),
            conn.src_port)

    def _destroy_connection(self, conn: DmlConnection) -> None:
        if conn.src_qp is not None:
            src_host = self.cluster.host_of_rnic(conn.src_rnic)
            src_host.verbs.destroy_qp(self.cluster.rnic(conn.src_rnic),
                                      conn.src_qp)
            conn.src_qp = None
        if conn.dst_qp is not None:
            dst_host = self.cluster.host_of_rnic(conn.dst_rnic)
            dst_host.verbs.destroy_qp(self.cluster.rnic(conn.dst_rnic),
                                      conn.dst_qp)
            conn.dst_qp = None

    def reroute_connection(self, conn: DmlConnection,
                           new_src_port: int) -> None:
        """§7.3 load-balancing guidance: modify_qp onto a new source port;
        Service Tracing picks up the new 5-tuple automatically."""
        conn.src_port = new_src_port
        src_host = self.cluster.host_of_rnic(conn.src_rnic)
        src_host.verbs.reroute_qp(self.cluster.rnic(conn.src_rnic),
                                  conn.src_qp, new_src_port)

    # -- Figure 9 hook ------------------------------------------------------------

    def set_compute_degradation(self, decay_per_cycle: float) -> None:
        """Training-code bug: compute speed decays a bit every cycle."""
        if not 0.0 <= decay_per_cycle < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self._compute_decay_per_cycle = decay_per_cycle

    # -- the training cycle -----------------------------------------------------------

    def _set_participant_load(self, load: float) -> None:
        hosts = {self.cluster.host_of_rnic(name) for name in self.participants}
        for host in hosts:
            host.cpu.set_load(load)

    def _begin_compute(self) -> None:
        if not self._running or self.task_failed:
            return
        self._in_comm_phase = False
        self.traffic.clear()
        self._set_participant_load(self.config.compute_cpu_load)
        duration = round(self.config.compute_time_ns
                         / max(self.compute_speed_factor, 1e-6))
        self._cycle_started_ns = self.cluster.sim.now
        self.cluster.sim.call_later(duration, self._begin_comm)

    def _begin_comm(self) -> None:
        if not self._running or self.task_failed:
            return
        self._in_comm_phase = True
        self._set_participant_load(self.config.comm_cpu_load)

        flows = []
        penalties = []
        for conn in self.connections:
            if conn.broken:
                continue
            verdict = self._path_health(conn)
            if verdict == "dead":
                # Permanent blackness (dead endpoint, misconfig, deadlock):
                # no retransmission budget survives it — the connection
                # breaks and the training task fails (Table 2 *).
                conn.broken = True
                self._fail_task()
                return
            if verdict == "flapping":
                # Transient blackness: with the §7.1 mitigation (max
                # retransmission count, long timeout) the connection limps
                # through at residual throughput; untuned, it breaks.
                if not self.config.retransmission_tuned:
                    conn.broken = True
                    self._fail_task()
                    return
                penalties.append(FLAPPING_RESIDUAL_FACTOR)
                continue                  # stalled: contributes no traffic
            penalty = verdict
            penalties.append(penalty)
            src_rnic = self.cluster.rnic(conn.src_rnic)
            dst_rnic = self.cluster.rnic(conn.dst_rnic)
            flows.append(Flow(
                five_tuple=roce_five_tuple(src_rnic.ip, dst_rnic.ip,
                                           conn.src_port),
                src_port_node=conn.src_rnic,
                demand_gbps=self.config.per_flow_demand_gbps))

        self.traffic.apply(flows)
        goodputs = [f.goodput_gbps for f in flows]
        effective = [g * p for g, p in zip(goodputs, penalties)] or [0.0]
        # Barrel effect: the slowest connection paces the whole cycle.
        slowest = max(min(effective),
                      self.config.per_flow_demand_gbps / MAX_STRETCH)
        comm_ns = round(self.config.data_gbits_per_cycle / slowest * SECOND)
        self.cluster.sim.call_later(comm_ns, self._end_comm)

    def _path_health(self, conn: DmlConnection):
        """The connection path's current health.

        Returns one of:

        * ``"dead"`` — permanently black (dead endpoint, missing routing
          or GID config, ACL deny, PFC deadlock, hard link-down): no retry
          budget survives; the connection breaks.
        * ``"flapping"`` — transiently black: up/down oscillation loses
          packets across the whole window, but retries during up-phases
          can succeed, so the §7.1 retransmission mitigation saves it.
        * a float throughput factor — lossy-but-alive path (go-back-N
          collapse under corruption).
        """
        now = self.cluster.sim.now
        src_rnic = self.cluster.rnic(conn.src_rnic)
        dst_rnic = self.cluster.rnic(conn.dst_rnic)
        for rnic in (src_rnic, dst_rnic):
            if not rnic.operational:
                return "flapping" if rnic.flapped_recently(now) else "dead"
        if not src_rnic.routing_configured or not src_rnic.gid_index_present:
            return "dead"
        if not dst_rnic.gid_index_present:
            return "dead"
        flapping = (src_rnic.flapped_recently(now)
                    or dst_rnic.flapped_recently(now))

        five_tuple = roce_five_tuple(src_rnic.ip, dst_rnic.ip, conn.src_port)
        path = self.cluster.fabric.path_of(five_tuple, conn.src_rnic)
        drop_prob = src_rnic.tx_corruption_prob + dst_rnic.rx_corruption_prob
        topo = self.cluster.topology
        for a, b in zip(path, path[1:]):
            link = topo.links[(a, b)]
            if not link.up:
                if link.pair.flapped_recently(now):
                    flapping = True
                else:
                    return "dead"
            if link.pfc_deadlocked:
                return "dead"
            if not topo.nodes[b].acl.permits(five_tuple) \
                    and topo.nodes[b].is_switch:
                return "dead"
            if link.pair.flapped_recently(now):
                flapping = True
            drop_prob += link.corruption_drop_prob
        drop_prob = min(drop_prob, 1.0)
        if flapping:
            return "flapping"
        if drop_prob >= BREAKING_DROP_PROB \
                and not self.config.retransmission_tuned:
            return "dead"
        # Go-back-N: every lost packet retransmits a window.
        return max(FLAPPING_RESIDUAL_FACTOR,
                   (1.0 - drop_prob) ** GO_BACK_N_WINDOW)

    def _end_comm(self) -> None:
        if not self._running or self.task_failed:
            return
        self._in_comm_phase = False
        now = self.cluster.sim.now
        cycle_ns = now - self._cycle_started_ns
        live = sum(1 for c in self.connections if not c.broken)
        total_gbits = self.config.data_gbits_per_cycle * live
        throughput = total_gbits / (cycle_ns / SECOND) if cycle_ns else 0.0
        self.throughput.record(now, throughput)
        if self._baseline is None and self.cycles_completed >= 2:
            self._baseline = throughput
        self.cycles_completed += 1
        self.compute_speed_factor *= (1.0 - self._compute_decay_per_cycle)

        self.traffic.clear()
        if (self.config.checkpoint_every_cycles
                and self.cycles_completed
                % self.config.checkpoint_every_cycles == 0):
            self._begin_checkpoint()
        else:
            self._begin_compute()

    def _begin_checkpoint(self) -> None:
        """TCP checkpoint upload: RoCE idle, CPUs pinned (Figure 5)."""
        now = self.cluster.sim.now
        self.checkpoint_windows.append(
            (now, now + self.config.checkpoint_duration_ns))
        self._set_participant_load(self.config.checkpoint_cpu_load)
        self.cluster.sim.call_later(self.config.checkpoint_duration_ns,
                                    self._begin_compute)

    def _fail_task(self) -> None:
        """A broken connection fails the whole training task (§2.1)."""
        self.task_failed = True
        self._running = False
        self.traffic.clear()
        self.throughput.record(self.cluster.sim.now, 0.0)
        self._set_participant_load(0.10)

    # -- ServiceMonitor protocol (§4.3.4) ---------------------------------------------

    def current_throughput(self) -> Optional[float]:
        """Most recent cycle's training throughput (Gbit/s of gradients)."""
        if not self.throughput.values:
            return None
        return self.throughput.values[-1]

    def degraded(self) -> bool:
        """Whether the service metric breaches the team's threshold."""
        if self.task_failed:
            return True
        current = self.current_throughput()
        if current is None or self._baseline is None:
            return False
        return current < self.config.degradation_threshold * self._baseline

    @property
    def in_comm_phase(self) -> bool:
        """Whether the job is currently in a communicate phase."""
        return self._in_comm_phase
