"""Storage-cluster interactions: model loading before training (§2.3 case 2).

Before a training task starts, every participating host loads the model from
the remote storage cluster over TCP, which is CPU-intensive.  Training
cannot begin until the *slowest* host finishes (another barrel effect), so
one host with an overloaded CPU stalls the whole job — the second §2.3
bottleneck case, detectable through R-Pingmesh's end-host processing delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster import Cluster
from repro.sim.units import SECOND


@dataclass
class LoadResult:
    """Outcome of one model-loading phase."""

    per_host_ns: dict[str, int]
    started_at_ns: int
    finished_at_ns: int

    @property
    def straggler(self) -> str:
        """The host that paced the whole load."""
        return max(self.per_host_ns, key=self.per_host_ns.get)

    @property
    def duration_ns(self) -> int:
        return self.finished_at_ns - self.started_at_ns


class ModelLoadPhase:
    """TCP-based model loading across a set of hosts.

    Each host's load time inflates with its CPU load (TCP copies burn CPU);
    the phase completes when every host has finished.
    """

    def __init__(self, cluster: Cluster, host_names: list[str], *,
                 base_duration_ns: int = 30 * SECOND,
                 loading_cpu_load: float = 0.80):
        if not host_names:
            raise ValueError("need at least one host")
        self.cluster = cluster
        self.host_names = list(host_names)
        self.base_duration_ns = base_duration_ns
        self.loading_cpu_load = loading_cpu_load
        self.result: Optional[LoadResult] = None

    def expected_duration_ns(self, host_name: str) -> int:
        """This host's load time given its *pre-existing* CPU load.

        A host already near saturation (e.g. a co-located noisy job) slows
        dramatically: M/M/1-style ``base / (1 - load)`` inflation.
        """
        host = self.cluster.hosts[host_name]
        inflation = 1.0 / max(1e-3, 1.0 - host.cpu.load)
        return round(self.base_duration_ns * inflation)

    def run(self, on_done: Callable[[LoadResult], None]) -> None:
        """Start loading on all hosts; call ``on_done`` when all finish."""
        start = self.cluster.sim.now
        per_host: dict[str, int] = {}
        for name in self.host_names:
            per_host[name] = self.expected_duration_ns(name)
            host = self.cluster.hosts[name]
            # Loading itself pins CPU further (visible as processing delay).
            host.cpu.set_load(max(host.cpu.load, self.loading_cpu_load))
        longest = max(per_host.values())

        def _finish() -> None:
            for name in self.host_names:
                self.cluster.hosts[name].cpu.set_load(0.10)
            self.result = LoadResult(per_host_ns=per_host,
                                     started_at_ns=start,
                                     finished_at_ns=self.cluster.sim.now)
            on_done(self.result)

        self.cluster.sim.call_later(longest, _finish)
