"""Service workloads: DML training, storage loading, traffic, CC models."""

from repro.services.congestion import CUSTOM_CC, DCQCN, CcModel
from repro.services.dml import (CommPattern, DmlConfig, DmlConnection,
                                DmlJob)
from repro.services.storage import LoadResult, ModelLoadPhase
from repro.services.traffic import Flow, TrafficEngine

__all__ = [
    "CcModel",
    "DCQCN",
    "CUSTOM_CC",
    "DmlJob",
    "DmlConfig",
    "DmlConnection",
    "CommPattern",
    "ModelLoadPhase",
    "LoadResult",
    "Flow",
    "TrafficEngine",
]
