"""Fluid traffic engine: maps service flows onto link loads.

Service traffic (DML gradient exchanges, checkpoint uploads) is modelled as
fluid flows.  Each flow is pinned to the exact ECMP path its 5-tuple hashes
to — the same path discrete probe packets with that 5-tuple take — so
congestion appears on precisely the links where Service Tracing probes will
observe it.

On :meth:`apply`, the engine:

1. routes every flow and accumulates per-link demand,
2. sets each link's fluid offered load,
3. for overloaded links, installs the standing queue prescribed by the
   active congestion-control model (see :mod:`repro.services.congestion`),
4. computes per-flow goodput via bottleneck share (approximate max-min).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster import Cluster
from repro.net.addresses import FiveTuple
from repro.net.topology import DirectedLink
from repro.services.congestion import CcModel, DCQCN


@dataclass
class Flow:
    """One fluid service flow."""

    five_tuple: FiveTuple
    src_port_node: str          # topology host-port of the source RNIC
    demand_gbps: float
    # Filled in by the engine on apply():
    path: list[str] = field(default_factory=list)
    goodput_gbps: float = 0.0


class TrafficEngine:
    """Applies a set of fluid flows to the fabric's links."""

    def __init__(self, cluster: Cluster, *, cc: CcModel = DCQCN):
        self.cluster = cluster
        self.cc = cc
        self._touched: set[tuple[str, str]] = set()
        self.flows: list[Flow] = []

    def set_cc(self, cc: CcModel) -> None:
        """Swap the congestion-control model (Figure 11 right)."""
        self.cc = cc

    def apply(self, flows: list[Flow]) -> None:
        """Replace the active flow set and recompute link loads."""
        now = self.cluster.sim.now
        topo = self.cluster.topology

        # Clear loads we set previously (links may have dropped out).
        for key in self._touched:
            link = topo.links[key]
            link.set_offered_load(now, 0.0)
            link.queue_bytes = 0.0
        self._touched.clear()

        demand: dict[tuple[str, str], float] = {}
        for flow in flows:
            flow.path = self.cluster.fabric.path_of(
                flow.five_tuple, flow.src_port_node)
            for a, b in zip(flow.path, flow.path[1:]):
                demand[(a, b)] = demand.get((a, b), 0.0) + flow.demand_gbps

        for key, load in demand.items():
            link = topo.links[key]
            link.set_offered_load(now, load)
            if load > link.rate_gbps:
                # Congestion: CC caps arrivals at capacity but leaves its
                # characteristic standing queue (tail-RTT signature).
                link.set_offered_load(now, link.rate_gbps)
                link.queue_bytes = self.cc.congested_queue_fill \
                    * link.buffer_bytes
            self._touched.add(key)

        self._compute_goodputs(flows, demand)
        self.flows = flows

    def clear(self) -> None:
        """Remove all service load (compute phases, job teardown)."""
        self.apply([])

    def _compute_goodputs(self, flows: list[Flow],
                          demand: dict[tuple[str, str], float]) -> None:
        topo = self.cluster.topology
        for flow in flows:
            share = 1.0
            for a, b in zip(flow.path, flow.path[1:]):
                link = topo.links[(a, b)]
                total = demand[(a, b)]
                if total > link.rate_gbps:
                    usable = link.rate_gbps * self.cc.goodput_efficiency
                    share = min(share, usable / total)
            flow.goodput_gbps = flow.demand_gbps * share

    # -- observability ------------------------------------------------------------

    def overloaded_links(self) -> list[DirectedLink]:
        """Links whose demand exceeded capacity at the last apply()."""
        topo = self.cluster.topology
        out = []
        for key in sorted(self._touched):
            link = topo.links[key]
            if link.queue_bytes > 0:
                out.append(link)
        return out

    def link_demand(self, src: str, dst: str) -> float:
        """Current total flow demand mapped onto one directed link."""
        total = 0.0
        for flow in self.flows:
            for a, b in zip(flow.path, flow.path[1:]):
                if (a, b) == (src, dst):
                    total += flow.demand_gbps
        return total

    def min_goodput(self) -> Optional[float]:
        """The slowest flow's goodput — the DML barrel-effect bound."""
        if not self.flows:
            return None
        return min(flow.goodput_gbps for flow in self.flows)
