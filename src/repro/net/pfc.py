"""PFC pause propagation (the mechanics behind Table 2 #13/#14).

The paper (and its companion work, Hostping) describes the chain: an
intra-host bottleneck (downgraded PCIe, bad ACS/ATS config) leaves the
RNIC unable to drain at line rate; the RNIC emits PFC pause frames; the
ToR port buffers and, when its headroom fills, pauses *its* upstream
ports; congestion spreads backwards — a PFC storm whose visible symptom
is a high P99 network RTT toward the victim (Figure 8 right).

The default substrate models the storm's *effect* with a static pause
delay installed by the fault (enough for every headline experiment).
This engine is the mechanistic, opt-in alternative: it periodically
derives pause pressure from actual drain deficits and traffic, so the
storm emerges — and subsides — with the workload.

Model per evaluation tick:

1. victim detection: for each RNIC, ``deficit = inbound_demand -
   drain_capacity`` where drain is ``min(pcie_gbps, link_gbps)``;
2. a positive deficit pauses the ToR->RNIC link for
   ``deficit / inbound_demand`` of each second (pause duty), which the
   queue model sees as added delay;
3. one tier of backpressure: each upstream link feeding a paused port
   inherits a fraction of the pause duty proportional to how much of its
   traffic heads to the paused port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.engine import PeriodicTask
from repro.sim.units import MILLISECOND

if TYPE_CHECKING:
    from repro.cluster import Cluster

# How much one-second pause duty converts to added per-packet delay.
# A fully paused port (duty 1.0) would add ~1 ms to every traversal.
PAUSE_DUTY_TO_DELAY_NS = 1_000_000
# Fraction of pause pressure inherited one tier upstream.
UPSTREAM_INHERITANCE = 0.5


@dataclass
class PauseState:
    """Current pause pressure on one directed link."""

    link_name: str
    duty: float               # fraction of time paused, [0, 1]
    source: str               # the victim RNIC that caused it


class PfcPropagationEngine:
    """Derives pause delays from drain deficits; opt-in substrate service."""

    def __init__(self, cluster: "Cluster", *,
                 tick_ns: int = 50 * MILLISECOND):
        self.cluster = cluster
        self.tick_ns = tick_ns
        self._task: PeriodicTask | None = None
        # Links whose pause_delay this engine owns (never fight faults).
        self._owned: set[tuple[str, str]] = set()
        self.pause_states: list[PauseState] = []

    def start(self) -> None:
        """Begin periodic evaluation."""
        if self._task is None:
            self._task = self.cluster.sim.every(self.tick_ns, self.evaluate)

    def stop(self) -> None:
        """Stop and clear all engine-owned pause pressure."""
        if self._task is not None:
            self._task.stop()
            self._task = None
        self._clear_owned()

    def _clear_owned(self) -> None:
        for key in self._owned:
            self.cluster.topology.links[key].pause_delay_ns = 0
        self._owned.clear()
        self.pause_states = []

    # -- the model ----------------------------------------------------------------

    def _inbound_demand_gbps(self, rnic_name: str) -> float:
        """Offered load on the ToR->RNIC downlink (fluid traffic)."""
        tor = self.cluster.tor_of(rnic_name)
        return self.cluster.topology.link(tor, rnic_name).offered_load_gbps

    def evaluate(self) -> list[PauseState]:
        """One tick: recompute every engine-owned pause delay."""
        was_storming = bool(self.pause_states)
        self._clear_owned()
        topo = self.cluster.topology
        states: list[PauseState] = []

        for rnic in self.cluster.all_rnics():
            demand = self._inbound_demand_gbps(rnic.name)
            if demand <= 0:
                continue
            drain = min(rnic.pcie_gbps, rnic.link_gbps)
            deficit = demand - drain
            if deficit <= 0:
                continue
            duty = min(1.0, deficit / demand)
            tor = self.cluster.tor_of(rnic.name)
            downlink = topo.link(tor, rnic.name)
            downlink.pause_delay_ns += round(duty * PAUSE_DUTY_TO_DELAY_NS)
            self._owned.add((tor, rnic.name))
            states.append(PauseState(link_name=downlink.name, duty=duty,
                                     source=rnic.name))

            # One tier of backpressure: upstream links feeding this ToR
            # inherit pressure proportional to their share of the ToR's
            # inbound traffic (approximated as uniform over active feeds).
            feeders = [n for n in topo.neighbors(tor)
                       if topo.nodes[n].is_switch]
            active = [n for n in feeders
                      if topo.link(n, tor).offered_load_gbps > 0]
            for feeder in active or feeders:
                uplink = topo.link(feeder, tor)
                share = duty * UPSTREAM_INHERITANCE / max(1, len(
                    active or feeders))
                uplink.pause_delay_ns += round(
                    share * PAUSE_DUTY_TO_DELAY_NS)
                self._owned.add((feeder, tor))
                states.append(PauseState(link_name=uplink.name,
                                         duty=share, source=rnic.name))
        self.pause_states = states
        self._observe(states, was_storming)
        return states

    def _observe(self, states: list[PauseState],
                 was_storming: bool) -> None:
        """Feed pause pressure into the observability layer (repro.obs).

        One fabric-wide trace event per paused link per tick, plus storm
        onset/decay edges; probes traversing a paused link additionally
        carry ``pfc_pause_ns`` on their own ``fabric.hop`` span events.
        """
        obs = self.cluster.obs
        tracer = obs.tracer
        if tracer.enabled:
            now = self.cluster.sim.now
            if states and not was_storming:
                tracer.fabric_event(now, "pfc.storm_onset",
                                    victims=sorted({s.source
                                                    for s in states}))
            elif was_storming and not states:
                tracer.fabric_event(now, "pfc.storm_decay")
            for state in states:
                tracer.fabric_event(now, "pfc.pause", link=state.link_name,
                                    duty=round(state.duty, 6),
                                    source=state.source)
        if obs.metrics_enabled:
            obs.metrics.gauge("repro_pfc_paused_links").set(len(states))
            obs.metrics.gauge("repro_pfc_pause_duty_total").set(
                round(sum(s.duty for s in states), 9))
            if states:
                obs.metrics.counter("repro_pfc_pause_frames_total").inc(
                    len(states))

    # -- observability ---------------------------------------------------------------

    def storming(self) -> bool:
        """Whether any pause pressure currently exists."""
        return bool(self.pause_states)

    def victims(self) -> set[str]:
        """RNICs currently causing pause pressure."""
        return {s.source for s in self.pause_states}
