"""Fault injection: the 14 root causes of Table 2, plus scheduling.

Every fault knows its ground truth — Table 2 row, category, the device or
link at fault, and whether the paper marks it service-failing (*) — so
experiments can score the Analyzer's detection and localisation accuracy
against what was actually injected (Figure 6).

Faults are injected/cleared against a :class:`~repro.cluster.Cluster`; the
:class:`FaultManager` schedules activation windows on the simulator and
keeps the ground-truth registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.cluster import Cluster
from repro.net.addresses import FiveTuple
from repro.sim.engine import PeriodicTask
from repro.sim.units import MILLISECOND, SECOND

# Time for routing to converge around a cleanly failed link.  Flapping
# faster than this leaves the link in ECMP and black-holes hashed flows.
ROUTING_CONVERGENCE_NS = 3 * SECOND


class ProblemCategory(Enum):
    """Table 2 root-cause categories."""

    HARDWARE_FAILURE = "hardware_failure"
    MISCONFIGURATION = "misconfiguration"
    NETWORK_CONGESTION = "network_congestion"
    INTRA_HOST_BOTTLENECK = "intra_host_bottleneck"


class LocusKind(Enum):
    """What kind of component the fault lives on."""

    RNIC = "rnic"
    SWITCH = "switch"
    LINK = "link"
    HOST = "host"


@dataclass
class GroundTruth:
    """What was actually injected; the scoring key for Figure 6."""

    fault_id: str
    table2_row: int
    category: ProblemCategory
    locus_kind: LocusKind
    locus: str
    causes_service_failure: bool = False
    active: bool = False


class Fault:
    """Base class: subclasses override ``_inject`` and ``_clear``."""

    table2_row: int = 0
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.LINK
    causes_service_failure = False

    def __init__(self, cluster: Cluster, locus: str, *,
                 fault_id: Optional[str] = None):
        self.cluster = cluster
        self.locus = locus
        self.ground_truth = GroundTruth(
            fault_id=fault_id or f"{type(self).__name__}:{locus}",
            table2_row=self.table2_row, category=self.category,
            locus_kind=self.locus_kind, locus=locus,
            causes_service_failure=self.causes_service_failure)
        # Open activation windows (see acquire/release).  Raw inject() /
        # clear() bypass the count and stay idempotent on their own.
        self._open_windows = 0

    def inject(self) -> None:
        """Activate the fault (idempotent)."""
        if self.ground_truth.active:
            return
        self.ground_truth.active = True
        self._inject()

    def clear(self) -> None:
        """Deactivate the fault (idempotent)."""
        if not self.ground_truth.active:
            return
        self.ground_truth.active = False
        self._clear()

    def acquire(self) -> None:
        """Open one activation window (refcounted inject).

        Campaign schedules may lay overlapping windows on the same fault
        (or butt two windows against each other at one timestamp, where
        the engine may run the second window's start before the first
        window's end).  Refcounting makes the outcome order-independent:
        the fault is active exactly while >= 1 window is open.
        """
        self._open_windows += 1
        if self._open_windows == 1:
            self.inject()

    def release(self) -> None:
        """Close one activation window (refcounted clear).

        A release with no open window — a clear scheduled before any
        inject ever ran — is a no-op, so campaign event ordering cannot
        wedge a fault into a half-cleared state.
        """
        if self._open_windows == 0:
            return
        self._open_windows -= 1
        if self._open_windows == 0:
            self.clear()

    @property
    def open_windows(self) -> int:
        """How many scheduled activation windows are currently open."""
        return self._open_windows

    def _inject(self) -> None:
        raise NotImplementedError

    def _clear(self) -> None:
        raise NotImplementedError


# --------------------------------------------------------------------------
# #1 — RNIC or switch port flapping
# --------------------------------------------------------------------------

class SwitchPortFlapping(Fault):
    """Table 2 #1 (switch side): a cable's state oscillates up/down.

    The flap period is far below routing convergence, so ECMP keeps
    offering the link and flows hashed onto it lose packets during every
    down phase — the Figure 1 (top) scenario.
    """

    table2_row = 1
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.LINK

    def __init__(self, cluster: Cluster, a: str, b: str, *,
                 period_ns: int = 400 * MILLISECOND,
                 down_fraction: float = 0.5):
        super().__init__(cluster, f"{a}<->{b}")
        if not 0.0 < down_fraction < 1.0:
            raise ValueError("down_fraction must be in (0, 1)")
        self.pair = cluster.topology.link_pair(a, b)
        self.period_ns = period_ns
        self.down_fraction = down_fraction
        self._task: Optional[PeriodicTask] = None
        self._phase_down = False

    def _inject(self) -> None:
        half = max(1, round(self.period_ns * self.down_fraction))
        self._phase_down = True
        self.pair.up = False
        self.pair.mark_transition(self.cluster.sim.now)
        self._task = self.cluster.sim.every(half, self._toggle, delay=half)

    def _toggle(self) -> None:
        self._phase_down = not self._phase_down
        self.pair.up = not self._phase_down
        self.pair.mark_transition(self.cluster.sim.now)
        assert self._task is not None
        if self._phase_down:
            self._task.set_interval(
                max(1, round(self.period_ns * self.down_fraction)))
        else:
            self._task.set_interval(
                max(1, round(self.period_ns * (1 - self.down_fraction))))

    def _clear(self) -> None:
        if self._task is not None:
            self._task.stop()
        self.pair.up = True


class RnicFlapping(Fault):
    """Table 2 #1 (RNIC side): the NIC port oscillates — Figure 1 (bottom)."""

    table2_row = 1
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.RNIC

    def __init__(self, cluster: Cluster, rnic_name: str, *,
                 period_ns: int = 400 * MILLISECOND,
                 down_fraction: float = 0.5):
        super().__init__(cluster, rnic_name)
        self.rnic = cluster.rnic(rnic_name)
        self.period_ns = period_ns
        self.down_fraction = down_fraction
        self._task: Optional[PeriodicTask] = None
        self._phase_down = False

    def _inject(self) -> None:
        half = max(1, round(self.period_ns * self.down_fraction))
        self._phase_down = True
        self.rnic.flap_down = True
        self.rnic.last_flap_ns = self.cluster.sim.now
        self._task = self.cluster.sim.every(half, self._toggle, delay=half)

    def _toggle(self) -> None:
        self._phase_down = not self._phase_down
        self.rnic.flap_down = self._phase_down
        self.rnic.last_flap_ns = self.cluster.sim.now
        assert self._task is not None
        fraction = (self.down_fraction if self._phase_down
                    else 1 - self.down_fraction)
        self._task.set_interval(max(1, round(self.period_ns * fraction)))

    def _clear(self) -> None:
        if self._task is not None:
            self._task.stop()
        self.rnic.flap_down = False


# --------------------------------------------------------------------------
# #2 — packet corruption (fiber damage, dusty optics)
# --------------------------------------------------------------------------

class LinkCorruption(Fault):
    """Table 2 #2 (in-network): a cable corrupts a fraction of packets."""

    table2_row = 2
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.LINK

    def __init__(self, cluster: Cluster, a: str, b: str, *,
                 drop_prob: float = 0.05):
        super().__init__(cluster, f"{a}<->{b}")
        if not 0.0 < drop_prob <= 1.0:
            raise ValueError("drop_prob must be in (0, 1]")
        self.links = [cluster.topology.link(a, b), cluster.topology.link(b, a)]
        self.drop_prob = drop_prob

    def _inject(self) -> None:
        for link in self.links:
            link.corruption_drop_prob = self.drop_prob

    def _clear(self) -> None:
        for link in self.links:
            link.corruption_drop_prob = 0.0


class RnicCorruption(Fault):
    """Table 2 #2 (RNIC side): the NIC or its cable corrupts packets."""

    table2_row = 2
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.RNIC

    def __init__(self, cluster: Cluster, rnic_name: str, *,
                 drop_prob: float = 0.05):
        super().__init__(cluster, rnic_name)
        self.rnic = cluster.rnic(rnic_name)
        self.drop_prob = drop_prob

    def _inject(self) -> None:
        self.rnic.rx_corruption_prob = self.drop_prob
        self.rnic.tx_corruption_prob = self.drop_prob

    def _clear(self) -> None:
        self.rnic.rx_corruption_prob = 0.0
        self.rnic.tx_corruption_prob = 0.0


# --------------------------------------------------------------------------
# #3 / #4 — accidental RNIC / host down  (service-failing *)
# --------------------------------------------------------------------------

class RnicDown(Fault):
    """Table 2 #3: the RNIC dies. Marked (*) — breaks service connections."""

    table2_row = 3
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.RNIC
    causes_service_failure = True

    def __init__(self, cluster: Cluster, rnic_name: str):
        super().__init__(cluster, rnic_name)
        self.rnic = cluster.rnic(rnic_name)

    def _inject(self) -> None:
        self.rnic.admin_up = False

    def _clear(self) -> None:
        self.rnic.admin_up = True


class HostDown(Fault):
    """Table 2 #4: the whole host dies (Agent stops uploading too)."""

    table2_row = 4
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.HOST
    causes_service_failure = True

    def __init__(self, cluster: Cluster, host_name: str):
        super().__init__(cluster, host_name)
        self.host = cluster.hosts[host_name]

    def _inject(self) -> None:
        self.host.set_down()

    def _clear(self) -> None:
        self.host.set_up()


# --------------------------------------------------------------------------
# #5 — PFC deadlock  (service-failing *)
# --------------------------------------------------------------------------

class PfcDeadlock(Fault):
    """Table 2 #5: two ports pause each other forever; the link is dead to
    traffic while physically up, so routing never converges around it."""

    table2_row = 5
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.LINK
    causes_service_failure = True

    def __init__(self, cluster: Cluster, a: str, b: str):
        super().__init__(cluster, f"{a}<->{b}")
        self.links = [cluster.topology.link(a, b), cluster.topology.link(b, a)]

    def _inject(self) -> None:
        for link in self.links:
            link.pfc_deadlocked = True

    def _clear(self) -> None:
        for link in self.links:
            link.pfc_deadlocked = False


# --------------------------------------------------------------------------
# #6 / #7 — RNIC misconfigurations  (service-failing *)
# --------------------------------------------------------------------------

class RnicRoutingMisconfig(Fault):
    """Table 2 #6: the post-boot RoCE routing script failed; the RNIC
    cannot send anything."""

    table2_row = 6
    category = ProblemCategory.MISCONFIGURATION
    locus_kind = LocusKind.RNIC
    causes_service_failure = True

    def __init__(self, cluster: Cluster, rnic_name: str):
        super().__init__(cluster, rnic_name)
        self.rnic = cluster.rnic(rnic_name)

    def _inject(self) -> None:
        self.rnic.routing_configured = False

    def _clear(self) -> None:
        self.rnic.routing_configured = True


class RnicGidIndexMissing(Fault):
    """Table 2 #7: the RoCEv2 GID index disappeared; the RNIC neither
    matches inbound GIDs nor can source outbound packets."""

    table2_row = 7
    category = ProblemCategory.MISCONFIGURATION
    locus_kind = LocusKind.RNIC
    causes_service_failure = True

    def __init__(self, cluster: Cluster, rnic_name: str):
        super().__init__(cluster, rnic_name)
        self.rnic = cluster.rnic(rnic_name)

    def _inject(self) -> None:
        self.rnic.gid_index_present = False

    def _clear(self) -> None:
        self.rnic.gid_index_present = True


# --------------------------------------------------------------------------
# #8 — switch ACL misconfiguration  (service-failing *)
# --------------------------------------------------------------------------

class SwitchAclError(Fault):
    """Table 2 #8: a tenant-isolation ACL wrongly denies some src/dst."""

    table2_row = 8
    category = ProblemCategory.MISCONFIGURATION
    locus_kind = LocusKind.SWITCH
    causes_service_failure = True

    def __init__(self, cluster: Cluster, switch_name: str, *,
                 src_ip: Optional[str] = None, dst_ip: Optional[str] = None):
        super().__init__(cluster, switch_name)
        self.switch = cluster.topology.node(switch_name)
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self._rule = None

    def _inject(self) -> None:
        self._rule = self.switch.acl.deny(self.src_ip, self.dst_ip)

    def _clear(self) -> None:
        if self._rule is not None:
            self.switch.acl.remove(self._rule)
            self._rule = None


# --------------------------------------------------------------------------
# #9 — PFC unconfigured / bad headroom
# --------------------------------------------------------------------------

class PfcHeadroomMisconfig(Fault):
    """Table 2 #9: the RoCE queue is effectively lossy on this cable;
    packets drop during heavy congestion (and only then)."""

    table2_row = 9
    category = ProblemCategory.MISCONFIGURATION
    locus_kind = LocusKind.LINK

    def __init__(self, cluster: Cluster, a: str, b: str):
        super().__init__(cluster, f"{a}<->{b}")
        self.links = [cluster.topology.link(a, b), cluster.topology.link(b, a)]

    def _inject(self) -> None:
        for link in self.links:
            link.pfc_headroom_ok = False

    def _clear(self) -> None:
        for link in self.links:
            link.pfc_headroom_ok = True


# --------------------------------------------------------------------------
# #10 / #11 — network congestion
# --------------------------------------------------------------------------

class LinkOverload(Fault):
    """Extra fluid load on one directed link.

    Stands in for Table 2 #10 (ECMP hash-collision uplink congestion) and
    #11 (inter-service interference), which in production arise from
    traffic, not device state.  Workload-driven congestion also exists in
    :mod:`repro.services`; this fault is the controlled-dose variant used
    by localisation experiments.
    """

    table2_row = 10
    category = ProblemCategory.NETWORK_CONGESTION
    locus_kind = LocusKind.LINK

    def __init__(self, cluster: Cluster, src: str, dst: str, *,
                 extra_gbps: float, table2_row: int = 10):
        super().__init__(cluster, f"{src}->{dst}")
        self.table2_row = table2_row
        self.ground_truth.table2_row = table2_row
        self.link = cluster.topology.link(src, dst)
        self.extra_gbps = extra_gbps
        self._baseline = 0.0

    def _inject(self) -> None:
        now = self.cluster.sim.now
        self._baseline = self.link.offered_load_gbps
        self.link.set_offered_load(now, self._baseline + self.extra_gbps)

    def _clear(self) -> None:
        now = self.cluster.sim.now
        reduced = max(0.0, self.link.offered_load_gbps - self.extra_gbps)
        self.link.set_offered_load(now, reduced)


# --------------------------------------------------------------------------
# #12 — CPU overload
# --------------------------------------------------------------------------

class CpuOverload(Fault):
    """Table 2 #12: the host CPU is pinned; processing delay inflates and
    the Agent's responder starves (the Figure 6-right false-positive
    mechanism)."""

    table2_row = 12
    category = ProblemCategory.INTRA_HOST_BOTTLENECK
    locus_kind = LocusKind.HOST

    def __init__(self, cluster: Cluster, host_name: str, *,
                 load: float = 0.96):
        super().__init__(cluster, host_name)
        self.host = cluster.hosts[host_name]
        self.load = load
        self._previous = 0.0

    def _inject(self) -> None:
        self._previous = self.host.cpu.load
        self.host.cpu.set_load(self.load)

    def _clear(self) -> None:
        self.host.cpu.set_load(self._previous)


# --------------------------------------------------------------------------
# #13 / #14 — intra-host bandwidth degradation -> PFC storm
# --------------------------------------------------------------------------

class PcieDowngrade(Fault):
    """Table 2 #13: the RNIC's PCIe link degrades; the NIC cannot drain at
    line rate, emits PFC pauses, and the ToR port backs up — traffic toward
    this RNIC sees large extra delay (Figure 8 right)."""

    table2_row = 13
    category = ProblemCategory.INTRA_HOST_BOTTLENECK
    locus_kind = LocusKind.RNIC

    def __init__(self, cluster: Cluster, rnic_name: str, *,
                 degraded_pcie_gbps: float = 32.0,
                 pause_delay_ns: int = 300_000):
        super().__init__(cluster, rnic_name)
        self.rnic = cluster.rnic(rnic_name)
        tor = cluster.tor_of(rnic_name)
        self.downlink = cluster.topology.link(tor, rnic_name)
        self.degraded_pcie_gbps = degraded_pcie_gbps
        self.pause_delay_ns = pause_delay_ns
        self._orig_pcie = self.rnic.pcie_gbps

    def _inject(self) -> None:
        self._orig_pcie = self.rnic.pcie_gbps
        self.rnic.pcie_gbps = self.degraded_pcie_gbps
        self.downlink.pause_delay_ns = self.pause_delay_ns

    def _clear(self) -> None:
        self.rnic.pcie_gbps = self._orig_pcie
        self.downlink.pause_delay_ns = 0


class RnicAcsMisconfig(PcieDowngrade):
    """Table 2 #14: wrong ACS/ATS configuration — same PFC-storm signature
    as a PCIe downgrade, different root cause (and category row)."""

    table2_row = 14
    category = ProblemCategory.INTRA_HOST_BOTTLENECK


# --------------------------------------------------------------------------
# Extra in-network fault shapes used by §4.1 and ablations
# --------------------------------------------------------------------------

class LinkFailure(Fault):
    """Clean persistent link-down: routing converges around it after
    ROUTING_CONVERGENCE_NS (the window during which probes still die)."""

    table2_row = 1
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.LINK

    def __init__(self, cluster: Cluster, a: str, b: str):
        super().__init__(cluster, f"{a}<->{b}")
        self.pair = cluster.topology.link_pair(a, b)

    def _inject(self) -> None:
        self.pair.up = False
        self.cluster.sim.call_later(ROUTING_CONVERGENCE_NS, self._converge)

    def _converge(self) -> None:
        if not self.pair.up:
            self.pair.routed_around = True
            self.cluster.topology.invalidate_routes()

    def _clear(self) -> None:
        self.pair.up = True
        if self.pair.routed_around:
            self.pair.routed_around = False
            self.cluster.topology.invalidate_routes()


class SilentDrop(Fault):
    """Silent per-5-tuple drops (§4.1): only certain 5-tuples die, which is
    why the Controller rotates inter-ToR 5-tuples hourly."""

    table2_row = 2
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.LINK

    def __init__(self, cluster: Cluster, src: str, dst: str, *,
                 match_port_mod: int = 8, match_port_rem: int = 3):
        super().__init__(cluster, f"{src}->{dst}")
        self.link = cluster.topology.link(src, dst)
        self.mod = match_port_mod
        self.rem = match_port_rem

    def matches(self, five_tuple: FiveTuple) -> bool:
        """The 'certain 5-tuples' predicate."""
        return five_tuple.src_port % self.mod == self.rem

    def _inject(self) -> None:
        self.link.silent_drop_predicate = self.matches

    def _clear(self) -> None:
        self.link.silent_drop_predicate = None


# --------------------------------------------------------------------------
# Control-plane faults (management network, §4.2.3)
# --------------------------------------------------------------------------

class ControlPlanePartition(Fault):
    """Cut one endpoint off the TCP management network.

    The RoCE data plane is untouched: a partitioned Agent keeps probing
    from its cached pinglists and buffering results, but its uploads,
    registrations, and lookups all die on the wire — so the Analyzer sees
    upload silence (and will call the host down) while the host is in
    fact alive.  Partitioning the ``controller`` endpoint instead leaves
    every Agent probing from stale pinglists until the partition heals.

    Requires a deployed system (``cluster.management`` is set by
    :class:`~repro.core.system.RPingmesh`).
    """

    table2_row = 0  # not a Table 2 root cause; a monitoring-infra fault
    category = ProblemCategory.HARDWARE_FAILURE
    locus_kind = LocusKind.HOST

    def __init__(self, cluster: Cluster, endpoint: str):
        super().__init__(cluster, endpoint)
        if cluster.management is None:
            raise RuntimeError(
                "no management network: deploy RPingmesh before injecting "
                "control-plane faults")
        self.endpoint = endpoint

    @classmethod
    def for_host(cls, cluster: Cluster,
                 host_name: str) -> "ControlPlanePartition":
        """Partition the Agent endpoint of one host."""
        from repro.core.agent import agent_endpoint_name
        return cls(cluster, agent_endpoint_name(host_name))

    def _inject(self) -> None:
        self.cluster.management.partition(self.endpoint)

    def _clear(self) -> None:
        self.cluster.management.heal(self.endpoint)


# --------------------------------------------------------------------------
# Scheduling
# --------------------------------------------------------------------------

class FaultManager:
    """Schedules fault windows and keeps the ground-truth registry.

    Windows are refcounted through :meth:`Fault.acquire` /
    :meth:`Fault.release`, so scheduling overlapping (or same-timestamp
    adjacent) windows on one fault is safe: the fault stays active until
    its *last* open window ends, whatever order the engine fires the
    boundary events in.  Each fault registers in the ground-truth list
    once, however many windows it gets.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.faults: list[Fault] = []

    def _register(self, fault: Fault) -> None:
        if not any(f is fault for f in self.faults):
            self.faults.append(fault)

    def schedule(self, fault: Fault, *, start_ns: int,
                 end_ns: Optional[int] = None) -> Fault:
        """Open a window at ``start_ns``; close it at ``end_ns`` if given."""
        if end_ns is not None and end_ns <= start_ns:
            raise ValueError("end_ns must follow start_ns")
        self._register(fault)
        self.cluster.sim.call_at(start_ns, fault.acquire)
        if end_ns is not None:
            self.cluster.sim.call_at(end_ns, fault.release)
        return fault

    def inject_now(self, fault: Fault) -> Fault:
        """Open a window immediately (never auto-closed)."""
        self._register(fault)
        fault.acquire()
        return fault

    def clear_all(self) -> None:
        """Close every open window and force-clear every fault."""
        for fault in self.faults:
            while fault.open_windows:
                fault.release()
            fault.clear()

    def ground_truths(self) -> list[GroundTruth]:
        """All registered ground truths."""
        return [f.ground_truth for f in self.faults]

    def active_ground_truths(self) -> list[GroundTruth]:
        """Ground truths of currently active faults."""
        return [f.ground_truth for f in self.faults if f.ground_truth.active]
