"""Network substrate: addressing, packets, topologies, fabric, faults."""

from repro.net.addresses import (GID, ROCE_UDP_PORT, FiveTuple, FlowKey,
                                 IPAllocator, roce_five_tuple)
from repro.net.clos import ClosFabricPlan, ClosParams, build_clos
from repro.net.ecmp import ecmp_hash, pick_next_hop
from repro.net.fabric import (DeliveryRecord, DropReason, DropRecord, Fabric)
from repro.net.packet import (Packet, RoCEOpcode, RoCEPacket, TCPPacket,
                              probe_packet_size)
from repro.net.pfc import PauseState, PfcPropagationEngine
from repro.net.rail import RailFabricPlan, RailParams, build_rail
from repro.net.telemetry import (ErspanTracer, IntHop, IntRecord, IntTracer,
                                 localize_congestion_with_int)
from repro.net.topology import (Acl, AclRule, DirectedLink, LinkPair, Node,
                                NodeKind, Tier, Topology, TracerouteLimiter)
from repro.net.traceroute import PathRecord, TracerouteService

__all__ = [
    "FiveTuple",
    "FlowKey",
    "GID",
    "IPAllocator",
    "ROCE_UDP_PORT",
    "roce_five_tuple",
    "ecmp_hash",
    "pick_next_hop",
    "Packet",
    "RoCEPacket",
    "TCPPacket",
    "RoCEOpcode",
    "probe_packet_size",
    "Topology",
    "Node",
    "NodeKind",
    "Tier",
    "DirectedLink",
    "LinkPair",
    "Acl",
    "AclRule",
    "TracerouteLimiter",
    "Fabric",
    "DropReason",
    "DropRecord",
    "DeliveryRecord",
    "ClosParams",
    "ClosFabricPlan",
    "build_clos",
    "RailParams",
    "RailFabricPlan",
    "build_rail",
    "PathRecord",
    "TracerouteService",
    "PfcPropagationEngine",
    "PauseState",
    "ErspanTracer",
    "IntTracer",
    "IntHop",
    "IntRecord",
    "localize_congestion_with_int",
]
