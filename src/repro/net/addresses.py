"""Addressing primitives: IPs, GIDs, QPNs, and 5-tuples.

RoCEv2 encapsulates RDMA over UDP: the *outer* 5-tuple is
``(src_ip, src_port, dst_ip, 4791, UDP)`` and is what ECMP hashes on; the
*inner* 4-tuple ``(src_gid, src_qpn, dst_gid, dst_qpn)`` is what the RNIC
uses to identify a flow (paper §3.1).  The verbs API lets an application
choose the outer UDP source port (the "flow label"), which is exactly how
R-Pingmesh steers probes onto the same ECMP paths as service flows.
"""

from __future__ import annotations

from dataclasses import dataclass

ROCE_UDP_PORT = 4791
PROTO_UDP = "udp"
PROTO_TCP = "tcp"

# Valid ephemeral source-port range used for flow labels.
MIN_SRC_PORT = 1024
MAX_SRC_PORT = 65535


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """Outer transport 5-tuple; the unit ECMP hashes on."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    proto: str = PROTO_UDP

    def __post_init__(self) -> None:
        if not 0 < self.src_port <= MAX_SRC_PORT:
            raise ValueError(f"bad src_port: {self.src_port}")
        if not 0 < self.dst_port <= MAX_SRC_PORT:
            raise ValueError(f"bad dst_port: {self.dst_port}")
        if self.proto not in (PROTO_UDP, PROTO_TCP):
            raise ValueError(f"bad proto: {self.proto}")

    @property
    def is_roce(self) -> bool:
        """True for RoCEv2 packets (UDP destination port 4791)."""
        return self.proto == PROTO_UDP and self.dst_port == ROCE_UDP_PORT

    def reversed(self) -> "FiveTuple":
        """The 5-tuple of reply traffic.

        RoCE ACKs mimic the forward direction's source port (the responder
        echoes the probe's source port, §5), so for RoCE the reverse keeps
        destination port 4791 and uses the forward source port as its own
        source port.
        """
        if self.is_roce:
            return FiveTuple(self.dst_ip, self.src_port, self.src_ip,
                             self.dst_port, self.proto)
        return FiveTuple(self.dst_ip, self.dst_port, self.src_ip,
                         self.src_port, self.proto)

    def __str__(self) -> str:
        return (f"{self.proto}:{self.src_ip}:{self.src_port}->"
                f"{self.dst_ip}:{self.dst_port}")


def roce_five_tuple(src_ip: str, dst_ip: str, src_port: int) -> FiveTuple:
    """Build an outer RoCEv2 5-tuple with a chosen source port."""
    return FiveTuple(src_ip, src_port, dst_ip, ROCE_UDP_PORT, PROTO_UDP)


@dataclass(frozen=True, slots=True)
class GID:
    """RoCE Global Identifier.

    In RoCEv2 the GID is derived from the interface IP; we keep both the
    string form and the GID table index the paper's misconfiguration #7
    ("RNIC GID index missing") manipulates.
    """

    value: str
    index: int = 3  # RoCEv2 GIDs commonly live at index 3

    @classmethod
    def from_ip(cls, ip: str, index: int = 3) -> "GID":
        return cls(value=f"::ffff:{ip}", index=index)

    @property
    def ip(self) -> str:
        """The IPv4 address embedded in an IPv4-mapped GID."""
        if not self.value.startswith("::ffff:"):
            raise ValueError(f"not an IPv4-mapped GID: {self.value}")
        return self.value[len("::ffff:"):]


@dataclass(frozen=True, slots=True)
class FlowKey:
    """Inner RDMA 4-tuple identifying a flow to the RNIC (paper fn. 3)."""

    src_gid: str
    src_qpn: int
    dst_gid: str
    dst_qpn: int


class IPAllocator:
    """Hands out unique addresses inside a /8, one per RNIC or host NIC."""

    def __init__(self, prefix: int = 10):
        if not 0 < prefix < 256:
            raise ValueError(f"bad prefix: {prefix}")
        self._prefix = prefix
        self._next = 0
        self._allocated: set[str] = set()

    def allocate(self) -> str:
        """Return the next unused address."""
        n = self._next
        self._next += 1
        if n >= 1 << 24:
            raise RuntimeError("IP space exhausted")
        ip = f"{self._prefix}.{(n >> 16) & 0xFF}.{(n >> 8) & 0xFF}.{n & 0xFF}"
        self._allocated.add(ip)
        return ip

    def __contains__(self, ip: str) -> bool:
        return ip in self._allocated
