"""Three-tier Clos fabric builder.

The evaluation cluster in the paper (§6) is a 3-tier CLOS of Tomahawk-4
switches with 1:1 oversubscription at every tier.  This builder produces a
downscaled but structurally identical fabric:

* ``pods`` pods; each pod has ``tors_per_pod`` ToR switches and
  ``aggs_per_pod`` aggregation switches, fully bipartite within the pod.
* ``spines`` spine switches; every aggregation switch uplinks to every
  spine (a full-bisection spine plane).
* ``hosts_per_tor`` hosts per ToR, ``rnics_per_host`` RNICs per host.
  In the (default) single-rail layout all RNICs of a host land on the same
  ToR; the rail-optimized alternative lives in :mod:`repro.net.rail`.

Naming is positional and stable (``pod0-tor1``, ``pod2-agg0``, ``spine3``,
``host5-rnic0``) so tests can address devices symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.topology import Tier, Topology


@dataclass(frozen=True)
class ClosParams:
    """Shape of a 3-tier Clos fabric."""

    pods: int = 2
    tors_per_pod: int = 2
    aggs_per_pod: int = 2
    spines: int = 2
    hosts_per_tor: int = 4
    rnics_per_host: int = 1
    host_link_gbps: float = 400.0
    fabric_link_gbps: float = 400.0

    def __post_init__(self) -> None:
        for name in ("pods", "tors_per_pod", "aggs_per_pod", "spines",
                     "hosts_per_tor", "rnics_per_host"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def total_hosts(self) -> int:
        return self.pods * self.tors_per_pod * self.hosts_per_tor

    @property
    def total_rnics(self) -> int:
        return self.total_hosts * self.rnics_per_host


@dataclass
class ClosFabricPlan:
    """The built topology plus the host/RNIC layout tables."""

    params: ClosParams
    topology: Topology
    # host name -> list of RNIC port names (in rnic-index order)
    host_rnics: dict[str, list[str]] = field(default_factory=dict)
    # RNIC port name -> ToR switch name
    rnic_tor: dict[str, str] = field(default_factory=dict)

    def rnics_under_tor(self, tor: str) -> list[str]:
        """All RNIC port names attached to a given ToR, sorted."""
        return sorted(r for r, t in self.rnic_tor.items() if t == tor)

    def host_of(self, rnic: str) -> str:
        """The host a given RNIC port belongs to."""
        return rnic.split("-rnic")[0]

    def tors(self) -> list[str]:
        """All ToR switch names, sorted."""
        return self.topology.switches(Tier.TOR)

    def parallel_paths_between_tors(self) -> int:
        """Number of equal-cost paths between two ToRs in different pods.

        Used as ``N`` in Equation 1: a flow leaving a ToR picks one of
        ``aggs_per_pod`` aggs, then one of ``spines`` spines, giving
        ``aggs_per_pod * spines`` distinct cross-pod paths (the downstream
        agg is determined by the destination pod's wiring... one choice per
        tier with per-switch hashing; the down-direction agg is also an ECMP
        choice at the spine).
        """
        return self.params.aggs_per_pod * self.params.spines


def build_clos(params: ClosParams) -> ClosFabricPlan:
    """Construct the Clos topology described by ``params``."""
    topo = Topology(name="clos")
    plan = ClosFabricPlan(params=params, topology=topo)

    spines = [f"spine{s}" for s in range(params.spines)]
    for spine in spines:
        topo.add_switch(spine, Tier.SPINE)

    host_index = 0
    for p in range(params.pods):
        aggs = [f"pod{p}-agg{a}" for a in range(params.aggs_per_pod)]
        for agg in aggs:
            topo.add_switch(agg, Tier.AGG)
            for spine in spines:
                topo.add_cable(agg, spine,
                               rate_gbps=params.fabric_link_gbps)
        for t in range(params.tors_per_pod):
            tor = f"pod{p}-tor{t}"
            topo.add_switch(tor, Tier.TOR)
            for agg in aggs:
                topo.add_cable(tor, agg, rate_gbps=params.fabric_link_gbps)
            for _h in range(params.hosts_per_tor):
                host = f"host{host_index}"
                host_index += 1
                rnics = []
                for r in range(params.rnics_per_host):
                    rnic = f"{host}-rnic{r}"
                    topo.add_host_port(rnic)
                    topo.add_cable(rnic, tor, rate_gbps=params.host_link_gbps)
                    rnics.append(rnic)
                    plan.rnic_tor[rnic] = tor
                plan.host_rnics[host] = rnics
    return plan
