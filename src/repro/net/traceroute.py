"""Traceroute over the simulated fabric.

R-Pingmesh traces the path of every probe 5-tuple *continuously* rather than
on demand (§4.2.3): after a failure, replayed packets would be rehashed onto
healthy links and mislead localisation.  The Agent therefore keeps a fresh
:class:`PathRecord` per active 5-tuple.

Switches rate-limit their TTL-exceeded replies (switch CPU protection), so a
trace may come back with unknown hops; the record keeps ``None`` in those
positions and marks itself incomplete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import FiveTuple
from repro.net.fabric import Fabric


@dataclass(frozen=True)
class PathRecord:
    """A traced path for one 5-tuple at one point in time.

    ``hops`` holds node names from the source host port to the last node the
    trace reached; rate-limited switches appear as ``None``.  ``reached``
    says whether the destination host port answered.
    """

    five_tuple: FiveTuple
    traced_at_ns: int
    hops: tuple[Optional[str], ...]
    reached: bool

    @property
    def complete(self) -> bool:
        """True when every hop is known and the destination was reached."""
        return self.reached and all(h is not None for h in self.hops)

    def known_links(self) -> list[tuple[str, str]]:
        """Directed (src, dst) link pairs between consecutive known hops."""
        links = []
        for a, b in zip(self.hops, self.hops[1:]):
            if a is not None and b is not None:
                links.append((a, b))
        return links

    def known_switches(self) -> list[str]:
        """Known intermediate switch hops (excludes the two host ports)."""
        return [h for h in self.hops[1:-1] if h is not None]


class TracerouteService:
    """Issues traceroutes against the fabric, honoring switch rate limits."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self.traces_issued = 0
        # Hops lost to switch-CPU rate limiting (a None in some record's
        # ``hops``) — the telemetry gap ERSPAN/INT close in §7.4.
        self.rate_limited_hops = 0

    def trace(self, five_tuple: FiveTuple, src_port: str,
              dst_port: Optional[str] = None) -> PathRecord:
        """Trace the current path of ``five_tuple`` from ``src_port``.

        The walk follows the same per-switch ECMP choices the data path
        makes.  A down link truncates the trace (the TTL probes beyond it
        die), and each switch on the path consumes a token from its
        traceroute limiter — an exhausted switch shows up as ``None``.
        """
        self.traces_issued += 1
        now = self.fabric.sim.now
        raw_path = self.fabric.path_of(five_tuple, src_port, dst_port,
                                       respect_down=True)
        if dst_port is None:
            dst_port = self.fabric.port_for_ip(five_tuple.dst_ip)
        reached = bool(raw_path) and raw_path[-1] == dst_port

        hops: list[Optional[str]] = []
        topo = self.fabric.topology
        for name in raw_path:
            node = topo.nodes[name]
            if node.is_switch and not node.traceroute.allow(now):
                self.rate_limited_hops += 1
                hops.append(None)
            else:
                hops.append(name)
        return PathRecord(five_tuple=five_tuple, traced_at_ns=now,
                          hops=tuple(hops), reached=reached)
