"""Topology graph: nodes, directed links, and the link queue model.

The graph has two node kinds: *switches* and *host ports* (one host port per
RNIC).  Links are directed — the paper's probing requirements ("more than 10
probes per second per **direction**", §5) and Algorithm 1's voting both work
per direction — and bidirectional physical cables are simply two directed
links that share fault state through a :class:`LinkPair`.

Queue model
-----------
Service traffic is fluid: the traffic layer assigns each directed link an
*offered background load* in Gbps.  A link integrates its queue occupancy
lazily: whenever a discrete packet traverses (or the load changes), the
occupancy is advanced from the last update using ``(offered - capacity)``.
A discrete packet then experiences::

    delay = propagation + serialization + queue_bytes * 8 / rate

This hybrid keeps month-scale scenarios tractable while giving probes the
queue-delay tails that Figures 5, 8, 10, 11 and 13 depend on.

Lossless behaviour: with PFC enabled the queue saturates at the buffer limit
and packets are delayed, not dropped.  With PFC unconfigured or headroom
misconfigured (fault #9), packets arriving at a saturated queue are dropped
with a probability proportional to the overload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Optional

from repro.net.addresses import FiveTuple
from repro.sim.units import serialization_delay_ns


class NodeKind(Enum):
    """What a graph vertex represents."""

    SWITCH = "switch"
    HOST_PORT = "host_port"


class Tier(Enum):
    """Where a node sits in the fabric (Clos naming)."""

    HOST = 0
    TOR = 1
    AGG = 2
    SPINE = 3


@dataclass
class AclRule:
    """A deny rule: drop packets matching src/dst IP (None = wildcard)."""

    src_ip: Optional[str] = None
    dst_ip: Optional[str] = None

    def matches(self, five_tuple: FiveTuple) -> bool:
        if self.src_ip is not None and five_tuple.src_ip != self.src_ip:
            return False
        if self.dst_ip is not None and five_tuple.dst_ip != self.dst_ip:
            return False
        return True


class Acl:
    """Per-switch access control list (default: permit everything)."""

    def __init__(self) -> None:
        self._deny_rules: list[AclRule] = []
        # Topology hook (set by add_node): rule edits bump the fault-knob
        # epoch so the fabric's fault-free fast path re-evaluates.
        self._on_change: Optional[Callable[[], None]] = None

    def _changed(self) -> None:
        callback = self._on_change
        if callback is not None:
            callback()

    def deny(self, src_ip: Optional[str] = None,
             dst_ip: Optional[str] = None) -> AclRule:
        """Install a deny rule and return it (for later removal)."""
        rule = AclRule(src_ip, dst_ip)
        self._deny_rules.append(rule)
        self._changed()
        return rule

    def remove(self, rule: AclRule) -> None:
        """Remove a previously installed rule (no-op if absent)."""
        if rule in self._deny_rules:
            self._deny_rules.remove(rule)
            self._changed()

    def clear(self) -> None:
        """Remove all deny rules."""
        self._deny_rules.clear()
        self._changed()

    def permits(self, five_tuple: FiveTuple) -> bool:
        """Whether the packet passes the ACL."""
        return not any(rule.matches(five_tuple) for rule in self._deny_rules)

    @property
    def rule_count(self) -> int:
        return len(self._deny_rules)


class TracerouteLimiter:
    """Switch-CPU rate limit on traceroute (ICMP time-exceeded) replies.

    Data-center switches throttle punted packets; the paper limits Agent's
    Traceroute frequency for this reason (§4.2.3).  The limiter is a simple
    token bucket refilled continuously.
    """

    def __init__(self, responses_per_second: float = 100.0,
                 burst: float = 20.0):
        if responses_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rate = responses_per_second
        self.burst = burst
        self._tokens = burst
        self._last_ns = 0
        self.responses_sent = 0
        self.responses_suppressed = 0

    def allow(self, now_ns: int) -> bool:
        """Consume a token if available; return whether the reply is sent."""
        elapsed = max(0, now_ns - self._last_ns)
        self._last_ns = max(self._last_ns, now_ns)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate / 1e9)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.responses_sent += 1
            return True
        self.responses_suppressed += 1
        return False


@dataclass
class Node:
    """A vertex in the topology graph."""

    name: str
    kind: NodeKind
    tier: Tier
    acl: Acl = field(default_factory=Acl)
    traceroute: TracerouteLimiter = field(default_factory=TracerouteLimiter)

    @property
    def is_switch(self) -> bool:
        return self.kind == NodeKind.SWITCH

    def __hash__(self) -> int:
        return hash(self.name)


class LinkPair:
    """Shared physical-cable state for the two directions of a cable."""

    __slots__ = ("name", "_up", "_routed_around", "last_transition_ns",
                 "transition_count", "_on_change")

    def __init__(self, name: str, up: bool = True,
                 routed_around: bool = False,
                 last_transition_ns: int = -(1 << 62),
                 transition_count: int = 0):
        self.name = name
        self._up = up
        self._routed_around = routed_around
        # Last up/down transition (flap detection for transports).
        self.last_transition_ns = last_transition_ns
        # Lifetime transition count (the "port flap counter" operators read).
        self.transition_count = transition_count
        # Topology hook (set by add_cable), called with whether the change
        # affects routing.  State writes route through it so that *any*
        # writer — faults or tests poking pairs directly — invalidates the
        # fabric's fast-path and route caches.
        self._on_change: Optional[Callable[[bool], None]] = None

    @property
    def up(self) -> bool:
        """Physical cable state (both directions)."""
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        if value == self._up:
            return
        self._up = value
        callback = self._on_change
        if callback is not None:
            callback(False)

    @property
    def routed_around(self) -> bool:
        """Whether routing has converged around the (down) cable."""
        return self._routed_around

    @routed_around.setter
    def routed_around(self, value: bool) -> None:
        if value == self._routed_around:
            return
        self._routed_around = value
        callback = self._on_change
        if callback is not None:
            callback(True)

    def mark_transition(self, now_ns: int) -> None:
        """Record an up/down state change at ``now_ns``."""
        self.last_transition_ns = now_ns
        self.transition_count += 1

    def flapped_recently(self, now_ns: int,
                         window_ns: int = 2_000_000_000) -> bool:
        """Whether the cable changed state within the last ``window_ns``.

        RDMA transports experience a flapping cable as packet loss across
        the whole window, not just at sampling instants.
        """
        return now_ns - self.last_transition_ns <= window_ns


class DirectedLink:
    """One direction of a cable, with queue state and fault knobs."""

    def __init__(self, src: str, dst: str, pair: LinkPair, *,
                 rate_gbps: float = 400.0, propagation_ns: int = 500,
                 buffer_bytes: int = 16 * 1024 * 1024):
        if rate_gbps <= 0:
            raise ValueError(f"rate must be positive: {rate_gbps}")
        self.src = src
        self.dst = dst
        self.pair = pair
        self.rate_gbps = rate_gbps
        self.propagation_ns = propagation_ns
        self.buffer_bytes = buffer_bytes

        # Fault knobs (driven by repro.net.faults).  Writes go through
        # properties that notify the owning topology (fault-knob epoch) so
        # the fabric's fault-free fast path re-evaluates; rate/propagation
        # are construction-time constants, which the base-delay cache and
        # the ECMP path cache both rely on.
        self._corruption_drop_prob = 0.0
        self._silent_drop_predicate: Optional[Callable[[FiveTuple], bool]] = None
        self._pfc_enabled = True
        self._pfc_headroom_ok = True
        self._pfc_deadlocked = False
        self._on_knob_change: Optional[Callable[[], None]] = None
        # Extra fixed delay, e.g. PFC storm pause pressure (Figure 8 right).
        self.pause_delay_ns = 0

        # Fluid queue state
        self.offered_load_gbps = 0.0
        self.queue_bytes = 0.0
        self._queue_updated_ns = 0
        # propagation + serialization per packet size (both immutable).
        self._base_delay_ns: dict[int, int] = {}

        # Counters for assertions and SLA accounting
        self.packets_forwarded = 0
        self.packets_dropped = 0
        # CRC error counter, as a switch would expose for this port.
        self.crc_errors = 0

    def _knob_changed(self) -> None:
        callback = self._on_knob_change
        if callback is not None:
            callback()

    @property
    def corruption_drop_prob(self) -> float:
        """Per-packet corruption drop probability (fault #2)."""
        return self._corruption_drop_prob

    @corruption_drop_prob.setter
    def corruption_drop_prob(self, value: float) -> None:
        self._corruption_drop_prob = value
        self._knob_changed()

    @property
    def silent_drop_predicate(self) -> Optional[Callable[[FiveTuple], bool]]:
        """Per-5-tuple silent-drop rule (the §4.1 problem), or None."""
        return self._silent_drop_predicate

    @silent_drop_predicate.setter
    def silent_drop_predicate(
            self, value: Optional[Callable[[FiveTuple], bool]]) -> None:
        self._silent_drop_predicate = value
        self._knob_changed()

    @property
    def pfc_enabled(self) -> bool:
        """Whether PFC is configured on the RoCE queue."""
        return self._pfc_enabled

    @pfc_enabled.setter
    def pfc_enabled(self, value: bool) -> None:
        self._pfc_enabled = value
        self._knob_changed()

    @property
    def pfc_headroom_ok(self) -> bool:
        """Whether PFC headroom is sized correctly (fault #9 clears it)."""
        return self._pfc_headroom_ok

    @pfc_headroom_ok.setter
    def pfc_headroom_ok(self, value: bool) -> None:
        self._pfc_headroom_ok = value
        self._knob_changed()

    @property
    def pfc_deadlocked(self) -> bool:
        """Whether a PFC deadlock blocks the RoCE queue."""
        return self._pfc_deadlocked

    @pfc_deadlocked.setter
    def pfc_deadlocked(self, value: bool) -> None:
        self._pfc_deadlocked = value
        self._knob_changed()

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    @property
    def up(self) -> bool:
        """Physical state, shared with the reverse direction."""
        return self.pair.up

    def advance_queue(self, now_ns: int) -> None:
        """Integrate fluid queue occupancy up to ``now_ns``."""
        dt = now_ns - self._queue_updated_ns
        if dt <= 0:
            return
        net_gbps = self.offered_load_gbps - self.rate_gbps
        # Gbps == bits/ns, so bytes delta = net * dt / 8.
        self.queue_bytes += net_gbps * dt / 8.0
        self.queue_bytes = min(max(self.queue_bytes, 0.0),
                               float(self.buffer_bytes))
        self._queue_updated_ns = now_ns

    def set_offered_load(self, now_ns: int, load_gbps: float) -> None:
        """Update the fluid background load (traffic layer hook)."""
        if load_gbps < 0:
            raise ValueError(f"load must be non-negative: {load_gbps}")
        self.advance_queue(now_ns)
        self.offered_load_gbps = load_gbps

    def utilization(self) -> float:
        """Offered load over capacity (may exceed 1.0 when congested)."""
        return self.offered_load_gbps / self.rate_gbps

    def queue_delay_ns(self, now_ns: int) -> int:
        """Queue wait a packet entering now would experience."""
        self.advance_queue(now_ns)
        return round(self.queue_bytes * 8.0 / self.rate_gbps)

    def traversal_delay_ns(self, now_ns: int, size_bytes: int, *,
                           roce_queue: bool = True) -> int:
        """Total one-hop latency for a discrete packet entering now.

        The fluid queue and PFC pause pressure live in the *RoCE* traffic
        class; TCP rides a separate, lightly loaded queue (§2.4), so
        non-RoCE packets see only propagation + serialization.
        """
        delay = self._base_delay_ns.get(size_bytes)
        if delay is None:
            delay = self._base_delay_ns[size_bytes] = (
                self.propagation_ns
                + serialization_delay_ns(size_bytes, self.rate_gbps))
        if roce_queue:
            if self.offered_load_gbps == 0.0 and self.queue_bytes == 0.0:
                # Idle fluid queue: integrating it is a no-op and the queue
                # delay is exactly round(0) — skip both.
                self._queue_updated_ns = max(self._queue_updated_ns, now_ns)
                return delay + self.pause_delay_ns
            delay += self.queue_delay_ns(now_ns) + self.pause_delay_ns
        return delay

    def congestion_drop_prob(self, now_ns: int) -> float:
        """Probability a packet is dropped by a *lossy* saturated queue.

        Zero whenever PFC is healthy (lossless), or the queue is not full.
        With PFC unconfigured/mis-headroomed (fault #9), overload spills.
        """
        if self.pfc_enabled and self.pfc_headroom_ok:
            return 0.0
        self.advance_queue(now_ns)
        if self.queue_bytes < self.buffer_bytes * 0.98:
            return 0.0
        overload = self.offered_load_gbps / self.rate_gbps
        if overload <= 1.0:
            return 0.0
        # Fraction of arrivals that cannot be served nor buffered.
        return min(1.0, 1.0 - 1.0 / overload)


class Topology:
    """The fabric graph plus per-destination ECMP next-hop tables."""

    def __init__(self, name: str = "fabric"):
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.links: dict[tuple[str, str], DirectedLink] = {}
        self._adjacency: dict[str, list[str]] = {}
        self._next_hops: dict[str, dict[str, list[str]]] = {}
        self._routes_dirty = True
        # Invalidations for the fabric's fast-path caches (DESIGN.md §10):
        # knob_epoch bumps on any fault-knob / link-state / ACL change
        # (fault-free scan result is stale); route_epoch bumps whenever
        # next-hop tables are invalidated (resolved-path cache is stale).
        self.knob_epoch = 0
        self.route_epoch = 0
        # (node, dst) -> filtered ECMP candidates, valid for the current
        # route tables + routed_around flags.
        self._next_hop_memo: dict[tuple[str, str], list[str]] = {}

    def _bump_knob_epoch(self) -> None:
        self.knob_epoch += 1

    def _pair_changed(self, routing_changed: bool) -> None:
        self.knob_epoch += 1
        if routing_changed:
            # routed_around flips alter the live next_hops filter but NOT
            # the stale BFS tables (reconvergence needs an explicit
            # invalidate_routes — the black-hole window depends on this).
            self._next_hop_memo.clear()

    # -- construction -----------------------------------------------------

    def add_node(self, name: str, kind: NodeKind, tier: Tier) -> Node:
        """Add a vertex; names must be unique."""
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name}")
        node = Node(name=name, kind=kind, tier=tier)
        node.acl._on_change = self._bump_knob_epoch
        self.nodes[name] = node
        self._adjacency[name] = []
        self.invalidate_routes()
        return node

    def add_switch(self, name: str, tier: Tier) -> Node:
        """Add a switch vertex."""
        return self.add_node(name, NodeKind.SWITCH, tier)

    def add_host_port(self, name: str) -> Node:
        """Add a host-port (RNIC attachment) vertex."""
        return self.add_node(name, NodeKind.HOST_PORT, Tier.HOST)

    def add_cable(self, a: str, b: str, *, rate_gbps: float = 400.0,
                  propagation_ns: int = 500,
                  buffer_bytes: int = 16 * 1024 * 1024) -> LinkPair:
        """Add a bidirectional cable as two directed links."""
        for end in (a, b):
            if end not in self.nodes:
                raise ValueError(f"unknown node: {end}")
        if (a, b) in self.links:
            raise ValueError(f"duplicate cable: {a} <-> {b}")
        pair = LinkPair(name=f"{a}<->{b}")
        pair._on_change = self._pair_changed
        for src, dst in ((a, b), (b, a)):
            link = DirectedLink(
                src, dst, pair, rate_gbps=rate_gbps,
                propagation_ns=propagation_ns, buffer_bytes=buffer_bytes)
            link._on_knob_change = self._bump_knob_epoch
            self.links[(src, dst)] = link
            self._adjacency[src].append(dst)
        self.invalidate_routes()
        return pair

    # -- accessors ---------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a vertex."""
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown node: {name}") from None

    def link(self, src: str, dst: str) -> DirectedLink:
        """Look up a directed link."""
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst}") from None

    def link_pair(self, a: str, b: str) -> LinkPair:
        """Shared cable state for the a<->b cable."""
        return self.link(a, b).pair

    def neighbors(self, name: str) -> list[str]:
        """Adjacent node names."""
        return list(self._adjacency[name])

    def host_ports(self) -> list[str]:
        """All host-port vertex names, sorted."""
        return sorted(n for n, node in self.nodes.items()
                      if node.kind == NodeKind.HOST_PORT)

    def switches(self, tier: Optional[Tier] = None) -> list[str]:
        """All switch names, optionally filtered by tier, sorted."""
        return sorted(
            n for n, node in self.nodes.items()
            if node.is_switch and (tier is None or node.tier == tier))

    def tor_of(self, host_port: str) -> str:
        """The ToR switch a host port hangs off (its unique neighbor)."""
        neighbors = self._adjacency.get(host_port, [])
        tors = [n for n in neighbors if self.nodes[n].is_switch]
        if len(tors) != 1:
            raise ValueError(
                f"host port {host_port} has {len(tors)} switch neighbors")
        return tors[0]

    def all_directed_links(self) -> Iterable[DirectedLink]:
        """Every directed link."""
        return self.links.values()

    def switch_links(self) -> list[DirectedLink]:
        """Directed links where both endpoints are switches."""
        return [l for l in self.links.values()
                if self.nodes[l.src].is_switch and self.nodes[l.dst].is_switch]

    # -- routing -----------------------------------------------------------

    def _rebuild_routes(self) -> None:
        """BFS from every host port to build ECMP next-hop tables.

        ``_next_hops[dst][node]`` lists all neighbors of ``node`` that lie on
        a shortest path toward host port ``dst``.  Down links that routing
        has converged around (``routed_around``) are excluded; freshly-down
        links are not, which is how flapping causes black-holed packets.
        """
        self._next_hops = {}

        def usable(a: str, b: str) -> bool:
            # Routed-around links are withdrawn from the routing domain,
            # exactly as a converged IGP would withdraw a failed adjacency
            # (this also redirects *upstream* choices, e.g. a spine stops
            # sending pod traffic to an agg whose ToR downlink is out).
            return not self.links[(a, b)].pair.routed_around

        for dst in self.host_ports():
            dist = {dst: 0}
            frontier = [dst]
            while frontier:
                nxt: list[str] = []
                for node in frontier:
                    for neigh in self._adjacency[node]:
                        if neigh not in dist and usable(neigh, node):
                            dist[neigh] = dist[node] + 1
                            nxt.append(neigh)
                frontier = nxt
            table: dict[str, list[str]] = {}
            for node in self.nodes:
                if node == dst or node not in dist:
                    continue
                hops = [neigh for neigh in self._adjacency[node]
                        if dist.get(neigh, 1 << 30) == dist[node] - 1
                        and usable(node, neigh)]
                table[node] = sorted(hops)
            self._next_hops[dst] = table
        self._routes_dirty = False

    def invalidate_routes(self) -> None:
        """Force next-hop recomputation (after topology edits)."""
        self._routes_dirty = True
        self.route_epoch += 1
        self._next_hop_memo.clear()

    def next_hops(self, node: str, dst: str) -> list[str]:
        """ECMP candidate next hops from ``node`` toward host port ``dst``.

        Candidates whose link has been *converged around* are filtered; a
        link that is down but not yet converged around remains a candidate
        (packets hashed onto it black-hole), matching real fabrics between
        failure and reconvergence.

        Results are memoized per (node, dst); the memo is cleared whenever
        routes are invalidated or a routed_around flag flips, so it is
        always equal to the unmemoized filter.  Callers must treat the
        returned list as read-only.
        """
        if self._routes_dirty:
            self._rebuild_routes()
        key = (node, dst)
        memo = self._next_hop_memo
        hops = memo.get(key)
        if hops is None:
            table = self._next_hops.get(dst)
            if table is None:
                raise KeyError(f"unknown destination host port: {dst}")
            candidates = table.get(node, [])
            live = [h for h in candidates
                    if not self.links[(node, h)].pair.routed_around]
            # If everything is routed around, fall back to raw candidates
            # so the packet visibly dies on a dead link rather than
            # vanishing silently.
            hops = memo[key] = live if live else candidates
        return hops
