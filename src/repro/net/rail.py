"""Rail-optimized two-tier fabric builder (paper §7.4, Figure 12).

In a rail-optimized cluster each host has ``rails`` NICs; NIC ``i`` of every
host connects to rail switch ``i``.  All rail switches uplink to all spine
switches in full bisection.  Consequently traffic between two NICs *on the
same host* must traverse the top tier — which is why same-host cross-rail
probing covers all cluster links without a Controller-generated pinglist,
and why one-way probing (no ACKs) is possible there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.topology import Tier, Topology


@dataclass(frozen=True)
class RailParams:
    """Shape of a two-tier rail-optimized fabric."""

    hosts: int = 4
    rails: int = 4
    spines: int = 2
    host_link_gbps: float = 400.0
    fabric_link_gbps: float = 400.0

    def __post_init__(self) -> None:
        for name in ("hosts", "rails", "spines"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.rails < 2:
            raise ValueError("rail-optimized fabric needs >= 2 rails for "
                             "same-host cross-rail probing")


@dataclass
class RailFabricPlan:
    """The built rail topology plus layout tables."""

    params: RailParams
    topology: Topology
    host_rnics: dict[str, list[str]] = field(default_factory=dict)
    rnic_rail: dict[str, str] = field(default_factory=dict)

    def rail_switches(self) -> list[str]:
        """All rail (ToR-tier) switch names, sorted."""
        return self.topology.switches(Tier.TOR)

    def cross_rail_pairs(self, host: str) -> list[tuple[str, str]]:
        """Ordered same-host RNIC pairs on different rails."""
        rnics = self.host_rnics[host]
        return [(a, b) for a in rnics for b in rnics if a != b]

    def parallel_paths_cross_rail(self) -> int:
        """ECMP path count for same-host cross-rail traffic.

        The path is rnic_i -> rail_i -> spine -> rail_j -> rnic_j; the only
        ECMP choice is the spine, so N = spines.
        """
        return self.params.spines


def build_rail(params: RailParams) -> RailFabricPlan:
    """Construct the rail-optimized topology described by ``params``."""
    topo = Topology(name="rail")
    plan = RailFabricPlan(params=params, topology=topo)

    spines = [f"spine{s}" for s in range(params.spines)]
    for spine in spines:
        topo.add_switch(spine, Tier.SPINE)

    rails = [f"rail{r}" for r in range(params.rails)]
    for rail in rails:
        topo.add_switch(rail, Tier.TOR)
        for spine in spines:
            topo.add_cable(rail, spine, rate_gbps=params.fabric_link_gbps)

    for h in range(params.hosts):
        host = f"host{h}"
        rnics = []
        for r in range(params.rails):
            rnic = f"{host}-rnic{r}"
            topo.add_host_port(rnic)
            topo.add_cable(rnic, rails[r], rate_gbps=params.host_link_gbps)
            rnics.append(rnic)
            plan.rnic_rail[rnic] = rails[r]
        plan.host_rnics[host] = rnics
    return plan
