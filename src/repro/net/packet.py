"""Packet models for the simulated fabric.

Packets are plain dataclasses.  The fabric routes on the outer
:class:`~repro.net.addresses.FiveTuple`; RNICs dispatch on the RoCE
transport header fields (destination QPN, opcode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.net.addresses import FiveTuple

# RoCE and TCP traffic ride different switch/RNIC traffic queues so that
# lossless PFC applies only to RoCE (paper §2.4).
TC_ROCE = "roce"
TC_TCP = "tcp"


class RoCEOpcode(Enum):
    """The subset of BTH opcodes the simulation distinguishes."""

    UD_SEND = "ud_send"
    RC_SEND = "rc_send"
    UC_SEND = "uc_send"
    RC_ACK = "rc_ack"


@dataclass(slots=True)
class Packet:
    """Base wire unit.

    ``payload`` carries structured application data (probe sequence numbers,
    reported processing delays); ``size_bytes`` is what queues and
    serialization see and is independent of the payload dict.
    """

    five_tuple: FiveTuple
    size_bytes: int
    traffic_class: str = TC_ROCE
    ttl: int = 64
    payload: dict[str, Any] = field(default_factory=dict)
    # Stamped by Fabric.inject from a per-fabric counter; 0 = not injected.
    # (A module-level counter here would be shared process-wide state,
    # breaking same-process replay — detlint DET005.)
    packet_id: int = 0
    sent_at_ns: Optional[int] = None
    # True while a PacketPool owns this packet's storage: the fabric may
    # recycle it after delivery.  Directly-constructed packets stay False
    # and are never recycled, so references held by tests or DropRecords
    # cannot be mutated behind their backs.
    pooled: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive: {self.size_bytes}")
        if self.traffic_class not in (TC_ROCE, TC_TCP):
            raise ValueError(f"bad traffic class: {self.traffic_class}")


@dataclass(slots=True)
class RoCEPacket(Packet):
    """RoCEv2 packet with the BTH fields RNIC dispatch needs."""

    opcode: RoCEOpcode = RoCEOpcode.UD_SEND
    src_qpn: int = 0
    dst_qpn: int = 0
    src_gid: str = ""
    dst_gid: str = ""

    def __post_init__(self) -> None:
        Packet.__post_init__(self)
        if not self.five_tuple.is_roce:
            raise ValueError(
                f"RoCE packet must target UDP 4791: {self.five_tuple}")


@dataclass(slots=True)
class TCPPacket(Packet):
    """TCP segment (management traffic, Pingmesh baseline, checkpoints)."""

    def __post_init__(self) -> None:
        Packet.__post_init__(self)
        self.traffic_class = TC_TCP


class PacketPool:
    """Bounded free list recycling :class:`RoCEPacket` storage.

    Probe traffic churns through millions of short-lived RoCE packets;
    the pool reuses their (slotted) storage and payload dicts instead of
    re-allocating per probe.

    Ownership contract (DESIGN.md §10):

    * a packet acquired here belongs to the fabric until its delivery
      callback returns — receivers must copy anything they keep (RNICs
      snapshot payload/5-tuple fields into CQEs, so they already do);
    * *delivered* packets are released back to the pool;
    * *dropped* packets are never released — :class:`~repro.net.fabric.
      DropRecord` retains them, and recycling would rewrite drop evidence;
    * every acquired field is reassigned on reuse (payload dicts are
      cleared), so no stale state can leak between probes;
    * ``limit=0`` disables reuse; acquire still works and must be
      behaviourally indistinguishable (golden digests prove it);
    * with a ``sanitizer`` (PoolSan, DESIGN.md §12) every acquire/release
      is tracked, released packets are poisoned, and double-releasing a
      pool-owned packet raises instead of passing silently.
    """

    __slots__ = ("limit", "_free", "reused", "released", "_san")

    def __init__(self, limit: int = 0, *, sanitizer=None):
        self.limit = limit
        self._free: list[RoCEPacket] = []
        self.reused = 0
        self.released = 0
        self._san = sanitizer

    @property
    def free_count(self) -> int:
        """Packets currently parked on the free list (gauge surface)."""
        return len(self._free)

    def acquire_roce(self, five_tuple: FiveTuple, size_bytes: int,
                     opcode: RoCEOpcode, src_qpn: int, dst_qpn: int,
                     src_gid: str, dst_gid: str,
                     payload: dict[str, Any]) -> RoCEPacket:
        """A RoCE packet with exactly these fields (payload is copied)."""
        free = self._free
        if free:
            self.reused += 1
            packet = free.pop()
            if self._san is not None:
                self._san.reacquire_packet(packet)
            packet.five_tuple = five_tuple
            packet.size_bytes = size_bytes
            packet.traffic_class = TC_ROCE
            packet.ttl = 64
            stale = packet.payload
            stale.clear()
            stale.update(payload)
            packet.packet_id = 0
            packet.sent_at_ns = None
            packet.opcode = opcode
            packet.src_qpn = src_qpn
            packet.dst_qpn = dst_qpn
            packet.src_gid = src_gid
            packet.dst_gid = dst_gid
            packet.pooled = True
            return packet
        packet = RoCEPacket(
            five_tuple=five_tuple, size_bytes=size_bytes,
            opcode=opcode, src_qpn=src_qpn, dst_qpn=dst_qpn,
            src_gid=src_gid, dst_gid=dst_gid, payload=dict(payload))
        packet.pooled = True
        if self._san is not None:
            self._san.acquire_packet(packet)
        return packet

    def release(self, packet: Packet) -> None:
        """Return a delivered pool-owned packet; foreign packets pass by.

        A packet without the ``pooled`` flag is ignored: either it was
        never pool-owned (hand-constructed), or it was *already released*
        — the first release clears the flag.  The sanitizer tells those
        apart and raises :class:`~repro.analysis.sanitize.
        PoolSanitizerError` on the double-release case, which plain mode
        cannot distinguish and must let pass.
        """
        if not packet.pooled:
            if self._san is not None:
                self._san.foreign_release(packet)
            return
        packet.pooled = False
        recycled = len(self._free) < self.limit
        if self._san is not None:
            self._san.release_packet(packet, recycled=recycled)
        if recycled:
            self.released += 1
            self._free.append(packet)


# Overheads used to size small control packets realistically.
ROCE_HEADER_BYTES = 58   # Eth + IP + UDP + BTH (+ICRC)
TCP_HEADER_BYTES = 54    # Eth + IP + TCP
PROBE_PAYLOAD_BYTES = 50  # paper §5: 50-byte probe/ACK payload


def probe_packet_size() -> int:
    """On-wire size of an R-Pingmesh probe or ACK."""
    return ROCE_HEADER_BYTES + PROBE_PAYLOAD_BYTES
