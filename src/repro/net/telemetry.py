"""Alternative path-tracing backends: ERSPAN and INT (paper §7.4).

R-Pingmesh deliberately decouples path tracing from active probing so the
Traceroute backend (works on legacy switches, but rate-limited by switch
CPUs) can be swapped for ERSPAN or In-band Network Telemetry on fabrics
that support them:

* **ERSPAN** mirrors matching packets from the ASIC — no switch-CPU cost,
  no rate limit, so every trace is complete and fresh.
* **INT** additionally stamps per-hop metadata; here, the egress queue
  depth of each traversed port, which localises *congestion* (not just
  drops) to an exact queue.

All backends implement the same ``trace``/``PathRecord`` contract as
:class:`~repro.net.traceroute.TracerouteService`, so the Agent can adopt
them without code changes (the paper's stated design goal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.net.addresses import FiveTuple
from repro.net.fabric import Fabric
from repro.net.traceroute import PathRecord


@runtime_checkable
class PathTracer(Protocol):
    """The contract every tracing backend satisfies."""

    def trace(self, five_tuple: FiveTuple, src_port: str,
              dst_port: Optional[str] = None) -> PathRecord:
        """Trace the current path of one 5-tuple."""
        ...


class ErspanTracer:
    """ERSPAN-based tracing: ASIC mirroring, no CPU rate limits.

    Unlike traceroute, ERSPAN sessions observe the data plane itself, so
    hops are never missing; a down link still truncates (the mirrored
    packet dies where the real one does).
    """

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self.traces_issued = 0

    def trace(self, five_tuple: FiveTuple, src_port: str,
              dst_port: Optional[str] = None) -> PathRecord:
        """Full-fidelity trace of the flow's current path."""
        self.traces_issued += 1
        path = self.fabric.path_of(five_tuple, src_port, dst_port,
                                   respect_down=True)
        if dst_port is None:
            dst_port = self.fabric.port_for_ip(five_tuple.dst_ip)
        return PathRecord(
            five_tuple=five_tuple, traced_at_ns=self.fabric.sim.now,
            hops=tuple(path), reached=bool(path) and path[-1] == dst_port)


@dataclass(frozen=True)
class IntHop:
    """Per-hop INT metadata."""

    node: str
    egress_queue_bytes: float
    egress_utilization: float


@dataclass(frozen=True)
class IntRecord:
    """An INT trace: the path plus per-hop queue state."""

    path: PathRecord
    hops: tuple[IntHop, ...]

    def hottest_hop(self) -> Optional[IntHop]:
        """The hop with the deepest egress queue (congestion locus)."""
        if not self.hops:
            return None
        return max(self.hops, key=lambda h: h.egress_queue_bytes)


class IntTracer:
    """In-band Network Telemetry: path + per-hop queue depths.

    With INT, a single high-RTT probe pinpoints *which queue* delayed it —
    the §7.4 observation that INT "can help locate bottlenecks more
    accurately when R-Pingmesh detects network congestion".
    """

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self._erspan = ErspanTracer(fabric)
        self.traces_issued = 0

    def trace(self, five_tuple: FiveTuple, src_port: str,
              dst_port: Optional[str] = None) -> PathRecord:
        """PathTracer-compatible trace (metadata discarded)."""
        return self.trace_with_telemetry(five_tuple, src_port,
                                         dst_port).path

    def trace_with_telemetry(self, five_tuple: FiveTuple, src_port: str,
                             dst_port: Optional[str] = None) -> IntRecord:
        """Trace and collect each traversed link's egress queue state."""
        self.traces_issued += 1
        record = self._erspan.trace(five_tuple, src_port, dst_port)
        now = self.fabric.sim.now
        hops = []
        for a, b in record.known_links():
            link = self.fabric.topology.link(a, b)
            link.advance_queue(now)
            hops.append(IntHop(node=a,
                               egress_queue_bytes=link.queue_bytes,
                               egress_utilization=link.utilization()))
        return IntRecord(path=record, hops=tuple(hops))


def localize_congestion_with_int(tracer: IntTracer,
                                 five_tuples_and_srcs: list[tuple[FiveTuple,
                                                                  str]]
                                 ) -> Optional[str]:
    """Name the directed link whose queue delays the given flows most.

    A single INT sweep replaces Algorithm-1-style voting for congestion:
    queue depth is direct evidence, not coincidence counting.
    """
    best_link: Optional[str] = None
    best_depth = 0.0
    for five_tuple, src in five_tuples_and_srcs:
        record = tracer.trace_with_telemetry(five_tuple, src)
        hop = record.hottest_hop()
        if hop is None or hop.egress_queue_bytes <= best_depth:
            continue
        # Identify the link this hop's queue feeds.
        links = record.path.known_links()
        for a, b in links:
            if a == hop.node:
                best_link = f"{a}->{b}"
                best_depth = hop.egress_queue_bytes
                break
    return best_link
