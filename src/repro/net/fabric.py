"""Packet forwarding over the topology.

The :class:`Fabric` walks packets hop by hop so that drops happen at the
right link (which is what Algorithm 1's voting localises), queue delays are
sampled at traversal time, and TTL semantics work for traceroute.

Packets are injected at a source host port; at each node the next hop is the
ECMP choice for the packet's outer 5-tuple.  Every hop applies, in order:

1. physical link state (down -> drop, unless routing already converged
   around the link, in which case ECMP never offered it),
2. PFC deadlock (traffic through a deadlocked link is blocked; from the
   endpoint's perspective that is a drop),
3. random corruption drops (damaged fiber / dusty optics, fault #2),
4. silent per-5-tuple drops (the "certain 5-tuples" problem §4.1),
5. lossy-queue overflow (PFC unconfigured / bad headroom, fault #9),
6. ingress ACL at the downstream switch (fault #8).

Delivery invokes the receiver registered for the destination host port —
normally the RNIC model, which applies its own (host-side) fault logic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from functools import partial
from typing import Callable, Optional

from repro.net.ecmp import EcmpHasher, pick_next_hop
from repro.net.packet import TC_ROCE, Packet, PacketPool
from repro.net.topology import DirectedLink, Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream

SWITCH_FORWARD_LATENCY_NS = 450  # ASIC pipeline latency per switch hop


class DropReason(Enum):
    """Why the fabric dropped a packet."""

    LINK_DOWN = "link_down"
    PFC_DEADLOCK = "pfc_deadlock"
    CORRUPTION = "corruption"
    SILENT_DROP = "silent_drop"
    QUEUE_OVERFLOW = "queue_overflow"
    ACL_DENY = "acl_deny"
    NO_ROUTE = "no_route"
    TTL_EXPIRED = "ttl_expired"


@dataclass(slots=True)
class DropRecord:
    """One dropped packet: when, where, why."""

    time_ns: int
    packet: Packet
    reason: DropReason
    link: Optional[str]      # "src->dst" of the offending directed link
    node: Optional[str]      # node at which the drop was decided


@dataclass(slots=True)
class DeliveryRecord:
    """Bookkeeping attached to a delivered packet."""

    time_ns: int
    path: tuple[str, ...]    # node names traversed, inclusive of endpoints


class _CachedPath:
    """A fully resolved route for one 5-tuple: the fast path's unit."""

    __slots__ = ("nodes", "hops", "route_epoch")

    def __init__(self, nodes: tuple[str, ...],
                 hops: tuple[tuple[DirectedLink, bool], ...],
                 route_epoch: int):
        self.nodes = nodes           # node names, endpoints inclusive
        self.hops = hops             # per hop: (link, next_is_switch)
        self.route_epoch = route_epoch


class _Transit:
    """Pooled per-packet walker for the fault-free fast path.

    Schedules exactly one event per hop — the same event count and timing
    as the slow path's per-hop closures — but with the route, links, and
    ECMP choices resolved once at injection instead of at every hop.
    """

    __slots__ = ("fabric", "packet", "path", "idx", "is_roce")

    def __init__(self) -> None:
        self.fabric: Optional["Fabric"] = None
        self.packet: Optional[Packet] = None
        self.path: Optional[_CachedPath] = None
        self.idx = 0
        self.is_roce = True

    def __call__(self) -> None:
        self.fabric._transit_step(self)


class Fabric:
    """Forwards packets over a :class:`Topology` inside a simulation."""

    def __init__(self, sim: Simulator, topology: Topology, rng: RngStream,
                 *, pooling: bool = True, packet_pool_size: int = 4096,
                 sanitizer=None):
        self.sim = sim
        self.topology = topology
        self.rng = rng
        # Opt-in pool sanitizer (repro.analysis.sanitize); shared with the
        # packet pool here and inherited by every attached Rnic.
        self.sanitizer = sanitizer
        # InfiniBand-style Adaptive Routing (paper §7.5): every packet may
        # take any parallel path, independent of its 5-tuple.  Probing
        # still detects problems, but traced paths stop matching the
        # packets that died — the stated localisation limitation.
        self._adaptive_routing = False
        # Pooling knob: False forces fresh allocations everywhere (digest
        # equivalence with pooling on is a tested invariant).
        self.pooling = pooling
        self.packet_pool = PacketPool(
            limit=packet_pool_size if pooling else 0, sanitizer=sanitizer)
        self._hasher = EcmpHasher()
        # Fault-free fast-path state: the scan result is valid for exactly
        # one topology knob_epoch; the resolved-path cache for exactly one
        # route_epoch (see DESIGN.md §10 for the invalidation rule).
        self._fault_free = False
        self._fault_scan_epoch = -1
        self._path_cache: dict = {}
        self._path_cache_epoch = -1
        self._transit_free: list[_Transit] = []
        self._transit_pool_limit = 1024 if pooling else 0
        self._receivers: dict[str, Callable[[Packet, DeliveryRecord], None]] = {}
        self._ip_to_port: dict[str, str] = {}
        self._drop_listeners: list[Callable[[DropRecord], None]] = []
        self.drops: list[DropRecord] = []
        self.max_drop_log = 100_000
        self.packets_delivered = 0
        self.packets_injected = 0
        # Incremental per-reason totals; unlike the bounded drop log these
        # never saturate, which is what the metrics registry exports.
        self.drop_counts: dict[str, int] = {}
        # Probe-lifecycle tracer (repro.obs), installed by
        # Observability.install when tracing is on; None keeps the
        # per-packet fast path at a single attribute check.
        self.tracer = None
        # In-band telemetry collector (repro.diagnosis.inband), installed
        # by IntCollector.install when the "int" backend is deployed.
        # Same contract as the tracer — None keeps both forwarding paths
        # at a single attribute check; unlike the tracer, stamping does
        # NOT disqualify the fast path: queue build-up under a pure
        # congestion fault is exactly what INT must observe there.
        self.int_collector = None
        # Per-fabric packet id source: ids restart at 1 for every cluster
        # so same-process replays see identical ids.
        self._packet_ids = itertools.count(1)

    @property
    def adaptive_routing(self) -> bool:
        """Whether per-packet adaptive routing replaces ECMP (§7.5)."""
        return self._adaptive_routing

    @adaptive_routing.setter
    def adaptive_routing(self, value: bool) -> None:
        self._adaptive_routing = value
        self._fault_scan_epoch = -1   # force a fast-path re-evaluation

    # -- wiring ------------------------------------------------------------

    def register_ip(self, ip: str, host_port: str) -> None:
        """Bind an IP address to a host port vertex."""
        if host_port not in self.topology.nodes:
            raise KeyError(f"unknown host port: {host_port}")
        self._ip_to_port[ip] = host_port

    def attach_receiver(
            self, host_port: str,
            receiver: Callable[[Packet, DeliveryRecord], None]) -> None:
        """Register the packet sink for a host port (usually an RNIC)."""
        if host_port not in self.topology.nodes:
            raise KeyError(f"unknown host port: {host_port}")
        self._receivers[host_port] = receiver

    def add_drop_listener(
            self, listener: Callable[[DropRecord], None]) -> None:
        """Subscribe to drop events (used by tests and fault assertions)."""
        self._drop_listeners.append(listener)

    def port_for_ip(self, ip: str) -> Optional[str]:
        """Host port bound to ``ip``, if any."""
        return self._ip_to_port.get(ip)

    # -- sending -----------------------------------------------------------

    def inject(self, packet: Packet, src_port: str) -> None:
        """Send ``packet`` into the fabric from ``src_port``."""
        self.packets_injected += 1
        packet.packet_id = next(self._packet_ids)
        packet.sent_at_ns = self.sim.now
        dst_port = self._ip_to_port.get(packet.five_tuple.dst_ip)
        if dst_port is None:
            self._drop(packet, DropReason.NO_ROUTE, link=None, node=src_port)
            return
        if self.topology.knob_epoch != self._fault_scan_epoch:
            self._refresh_fast_path()
        if self._fault_free and self.tracer is None:
            cached = self._cached_path(packet.five_tuple, src_port, dst_port)
            if cached is not None:
                self._begin_transit(packet, cached)
                return
        self._forward(packet, src_port, dst_port, path=[src_port])

    # -- fault-free fast path ------------------------------------------------

    def _refresh_fast_path(self) -> None:
        """Re-evaluate fast-path eligibility for the current knob epoch.

        The fast path may run only when per-hop checking is provably a
        no-op for every link: all links up and not routed-around, no PFC
        deadlock, no corruption or silent-drop rules (their RNG draws and
        counters must not be skipped), PFC healthy everywhere (so
        ``congestion_drop_prob`` short-circuits to 0 without touching the
        fluid queue), and no ACL rules on any switch.  Any knob write bumps
        ``Topology.knob_epoch``, which forces this scan to rerun.
        """
        topology = self.topology
        self._fault_scan_epoch = topology.knob_epoch
        if self._adaptive_routing:
            self._fault_free = False
            return
        for link in topology.links.values():
            pair = link.pair
            if (not pair.up
                    or pair.routed_around
                    or link.pfc_deadlocked
                    or link.corruption_drop_prob > 0.0
                    or link.silent_drop_predicate is not None
                    or not link.pfc_enabled
                    or not link.pfc_headroom_ok):
                self._fault_free = False
                return
        for node in topology.nodes.values():
            if node.acl.rule_count:
                self._fault_free = False
                return
        self._fault_free = True

    def _cached_path(self, five_tuple, src_port: str,
                     dst_port: str) -> Optional[_CachedPath]:
        """The resolved route for this flow, cached per route_epoch."""
        epoch = self.topology.route_epoch
        cache = self._path_cache
        if self._path_cache_epoch != epoch:
            cache.clear()
            self._path_cache_epoch = epoch
        cached = cache.get(five_tuple)
        if (cached is not None and cached.nodes[0] == src_port
                and cached.nodes[-1] == dst_port):
            return cached
        cached = self._resolve_path(five_tuple, src_port, dst_port)
        if cached is not None:
            if len(cache) >= 65536:
                cache.clear()
            cache[five_tuple] = cached
        return cached

    def _resolve_path(self, five_tuple, src_port: str,
                      dst_port: str) -> Optional[_CachedPath]:
        """Walk the per-hop ECMP choices once; None falls back to _forward."""
        topology = self.topology
        hasher = self._hasher
        nodes = [src_port]
        hops = []
        node = src_port
        guard = 0
        while node != dst_port:
            guard += 1
            if guard > 64:
                return None
            candidates = topology.next_hops(node, dst_port)
            if not candidates:
                return None
            next_node = hasher.pick(five_tuple, node, candidates)
            hops.append((topology.links[(node, next_node)],
                         topology.nodes[next_node].is_switch))
            nodes.append(next_node)
            node = next_node
        return _CachedPath(tuple(nodes), tuple(hops), topology.route_epoch)

    def _begin_transit(self, packet: Packet, cached: _CachedPath) -> None:
        free = self._transit_free
        if free:
            transit = free.pop()
            if self.sanitizer is not None:
                self.sanitizer.reacquire_transit(transit)
        else:
            transit = _Transit()
            if self.sanitizer is not None:
                self.sanitizer.acquire_transit(transit)
        transit.fabric = self
        transit.packet = packet  # detlint: disable=DET007 in-flight slot; cleared by _release_transit before the packet is recycled
        transit.path = cached
        transit.idx = 0
        transit.is_roce = packet.traffic_class == TC_ROCE
        self._transit_step(transit)

    def _release_transit(self, transit: _Transit) -> None:
        transit.packet = None
        transit.path = None
        free = self._transit_free
        recycled = len(free) < self._transit_pool_limit
        if self.sanitizer is not None:
            self.sanitizer.release_transit(transit, recycled=recycled)
        if recycled:
            free.append(transit)

    def _transit_step(self, transit: _Transit) -> None:
        cached = transit.path
        idx = transit.idx
        nodes = cached.nodes
        if idx == len(nodes) - 1:
            # Arrived: mirror _deliver (no tracer on the fast path), then
            # recycle the packet — delivery is the only release point.
            packet = transit.packet
            self._release_transit(transit)
            self.packets_delivered += 1
            if self.int_collector is not None:
                self.int_collector.collect(packet, self.sim.now)
            receiver = self._receivers.get(nodes[-1])
            if receiver is not None:
                receiver(packet, DeliveryRecord(self.sim.now, nodes))
            self.packet_pool.release(packet)
            return
        topology = self.topology
        if topology.knob_epoch != self._fault_scan_epoch:
            self._refresh_fast_path()
        if (not self._fault_free or self.tracer is not None
                or cached.route_epoch != topology.route_epoch):
            # A fault/route/tracer change landed mid-flight: resume this
            # packet on the classic per-hop path from its current node, so
            # it sees exactly the checks the old code would have applied.
            packet = transit.packet
            node = nodes[idx]
            path = list(nodes[:idx + 1])
            self._release_transit(transit)
            self._forward(packet, node, nodes[-1], path)
            return
        packet = transit.packet
        link, next_is_switch = cached.hops[idx]
        if next_is_switch:
            packet.ttl -= 1
            if packet.ttl <= 0:
                self._drop(packet, DropReason.TTL_EXPIRED, link=link.name,
                           node=nodes[idx + 1])
                self._release_transit(transit)
                return
        delay = link.traversal_delay_ns(self.sim.now, packet.size_bytes,
                                        roce_queue=transit.is_roce)
        if next_is_switch:
            delay += SWITCH_FORWARD_LATENCY_NS
        link.packets_forwarded += 1
        if self.int_collector is not None:
            self.int_collector.stamp(packet, link, self.sim.now)
        transit.idx = idx + 1
        self.sim.schedule(delay, transit)

    # -- classic per-hop path ------------------------------------------------

    def _forward(self, packet: Packet, node: str, dst_port: str,
                 path: list[str]) -> None:
        if node == dst_port:
            self._deliver(packet, path)
            return
        candidates = self.topology.next_hops(node, dst_port)
        if not candidates:
            self._drop(packet, DropReason.NO_ROUTE, link=None, node=node)
            return
        if self._adaptive_routing and len(candidates) > 1:
            next_node = self.rng.choice(candidates)
        else:
            next_node = self._hasher.pick(packet.five_tuple, node, candidates)
        link = self.topology.link(node, next_node)
        now = self.sim.now
        is_roce = packet.traffic_class == TC_ROCE

        reason = self._check_link(packet, link, now, is_roce)
        if reason is not None:
            self._drop(packet, reason, link=link.name, node=node)
            return

        next_is_switch = self.topology.nodes[next_node].is_switch
        if next_is_switch:
            if not self.topology.nodes[next_node].acl.permits(packet.five_tuple):
                self._drop(packet, DropReason.ACL_DENY, link=link.name,
                           node=next_node)
                return
            packet.ttl -= 1
            if packet.ttl <= 0:
                self._drop(packet, DropReason.TTL_EXPIRED, link=link.name,
                           node=next_node)
                return

        delay = link.traversal_delay_ns(now, packet.size_bytes,
                                        roce_queue=is_roce)
        if next_is_switch:
            delay += SWITCH_FORWARD_LATENCY_NS
        link.packets_forwarded += 1
        if self.int_collector is not None:
            self.int_collector.stamp(packet, link, now)
        path.append(next_node)
        if self.tracer is not None:
            seq, leg = self._probe_leg(packet)
            if seq is not None:
                fields = {"leg": leg, "node": node, "next": next_node,
                          "delay_ns": delay, "ecmp_ways": len(candidates)}
                if link.pause_delay_ns:
                    fields["pfc_pause_ns"] = link.pause_delay_ns
                self.tracer.event(seq, now, "fabric.hop", **fields)
        self.sim.schedule(
            delay, partial(self._forward, packet, next_node, dst_port, path))

    def _check_link(self, packet: Packet, link: DirectedLink,
                    now: int, is_roce: bool) -> Optional[DropReason]:
        """Apply the per-hop drop rules; return a reason or None.

        PFC deadlock and lossy-RoCE-queue overflow affect only the RoCE
        traffic class: a TCP probe sails through a PFC-deadlocked link,
        which is precisely why TCP Pingmesh cannot detect those problems
        (§2.4).  Physical faults (down links, corruption) hit both classes.
        """
        if not link.up:
            return DropReason.LINK_DOWN
        if is_roce and link.pfc_deadlocked:
            return DropReason.PFC_DEADLOCK
        if link.corruption_drop_prob > 0 and self.rng.chance(
                link.corruption_drop_prob):
            link.crc_errors += 1   # the counter operators would inspect
            return DropReason.CORRUPTION
        if (link.silent_drop_predicate is not None
                and link.silent_drop_predicate(packet.five_tuple)):
            return DropReason.SILENT_DROP
        if is_roce:
            overflow = link.congestion_drop_prob(now)
            if overflow > 0 and self.rng.chance(overflow):
                return DropReason.QUEUE_OVERFLOW
        return None

    def _deliver(self, packet: Packet, path: list[str]) -> None:
        self.packets_delivered += 1
        if self.int_collector is not None:
            self.int_collector.collect(packet, self.sim.now)
        if self.tracer is not None:
            seq, leg = self._probe_leg(packet)
            if seq is not None:
                self.tracer.event(seq, self.sim.now, "fabric.deliver",
                                  leg=leg, dst=path[-1], hops=len(path) - 1)
        receiver = self._receivers.get(path[-1])
        if receiver is not None:
            receiver(packet, DeliveryRecord(self.sim.now, tuple(path)))
        # Delivered pool-owned packets are recycled once the receiver is
        # done with them; dropped packets never are (DropRecords keep them).
        self.packet_pool.release(packet)

    def _drop(self, packet: Packet, reason: DropReason, *,
              link: Optional[str], node: Optional[str]) -> None:
        record = DropRecord(self.sim.now, packet, reason, link, node)
        self.drop_counts[reason.value] = \
            self.drop_counts.get(reason.value, 0) + 1
        if self.sanitizer is not None and packet.pooled:
            # Dropped packets are never recycled: the DropRecord keeps
            # them as evidence (DESIGN.md §10).  Tell the leak detector.
            self.sanitizer.retain_packet(packet, f"drop evidence: {reason.value}")
        if len(self.drops) < self.max_drop_log:
            self.drops.append(record)  # detlint: disable=DET007 DropRecords retain dropped packets as evidence; never recycled
        if self.tracer is not None:
            seq, leg = self._probe_leg(packet)
            if seq is not None:
                self.tracer.event(seq, self.sim.now, "fabric.drop", leg=leg,
                                  reason=reason.value, link=link, node=node)
        for listener in self._drop_listeners:
            listener(record)

    @staticmethod
    def _probe_leg(packet: Packet) -> tuple[Optional[int], Optional[str]]:
        """(probe_seq, leg) of a probe-exchange packet, (None, None) else."""
        leg = packet.payload.get("t")
        if leg in ("probe", "ack1", "ack2"):
            return packet.payload.get("seq"), leg
        return None, None

    # -- path computation (control plane) -----------------------------------

    def path_of(self, five_tuple, src_port: str,
                dst_port: Optional[str] = None,
                *, respect_down: bool = False) -> list[str]:
        """The node sequence the flow's packets take right now.

        This mirrors the per-switch ECMP choices of the data path; it is
        used by the traffic layer to map fluid flows onto links and by the
        traceroute service.  With ``respect_down`` the walk stops at a down
        link (what a real traceroute would observe).
        """
        if dst_port is None:
            dst_port = self._ip_to_port.get(five_tuple.dst_ip)
            if dst_port is None:
                raise KeyError(f"no host port for {five_tuple.dst_ip}")
        path = [src_port]
        node = src_port
        guard = 0
        while node != dst_port:
            guard += 1
            if guard > 64:
                raise RuntimeError(f"routing loop toward {dst_port}")
            candidates = self.topology.next_hops(node, dst_port)
            if not candidates:
                break
            next_node = pick_next_hop(five_tuple, node, candidates)
            if respect_down and not self.topology.link(node, next_node).up:
                break
            path.append(next_node)
            node = next_node
        return path

    def links_of_path(self, path: list[str]) -> list[DirectedLink]:
        """Directed links along a node path."""
        return [self.topology.link(a, b) for a, b in zip(path, path[1:])]
