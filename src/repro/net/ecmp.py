"""ECMP hashing.

Switches hash the outer 5-tuple to pick one of several equal-cost next hops.
Each switch mixes its own name into the hash (real ASICs use per-switch hash
seeds) so that consecutive tiers don't make correlated choices — without
this, polarization would defeat the coverage math of Equation 1.

Implementation note: a plain CRC of ``salt|tuple`` is NOT enough.  CRC is
linear, so for two same-length salts the two hashes differ by a *constant*
XOR for every flow — the low bits stay perfectly correlated across switches
and an 8-way fabric degenerates to 2 observable paths (we hit exactly this).
The CRC therefore goes through a multiply-xorshift finalizer (splitmix-style)
that destroys the linearity, mirroring how real ASICs mix a per-switch seed
into the hash rather than merely prepending it.
"""

from __future__ import annotations

import zlib

from repro.net.addresses import FiveTuple


def _mix(value: int) -> int:
    """Non-linear 64-bit finalizer (splitmix64 style)."""
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 \
        & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB \
        & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def ecmp_hash(five_tuple: FiveTuple, salt: str = "") -> int:
    """Deterministic hash of a 5-tuple plus a per-switch salt."""
    tuple_key = (f"{five_tuple.src_ip}|{five_tuple.src_port}|"
                 f"{five_tuple.dst_ip}|{five_tuple.dst_port}|"
                 f"{five_tuple.proto}")
    h = zlib.crc32(tuple_key.encode())
    s = zlib.crc32(salt.encode())
    return _mix((h << 32) | s) & 0xFFFFFFFF


def pick_next_hop(five_tuple: FiveTuple, switch_name: str,
                  candidates: list[str]) -> str:
    """Choose a next hop for the flow at this switch."""
    if not candidates:
        raise ValueError(f"no next-hop candidates at {switch_name}")
    if len(candidates) == 1:
        return candidates[0]
    return candidates[ecmp_hash(five_tuple, switch_name) % len(candidates)]


class EcmpHasher:
    """Memoized ECMP hashing, bit-identical to :func:`pick_next_hop`.

    The CRC of a flow's 5-tuple string and the CRC of each switch's salt
    are pure functions of their inputs, so a fabric-lifetime memo of both
    halves turns the per-hop hash into one table lookup plus the splitmix
    finalizer.  The flow memo is bounded (probe 5-tuples rotate with source
    ports); the salt memo is naturally bounded by the switch count.
    """

    _MAX_FLOWS = 65536

    __slots__ = ("_flow_crc", "_salt_crc")

    def __init__(self) -> None:
        # FiveTuple -> crc32(tuple_key) << 32, pre-shifted for _mix input.
        self._flow_crc: dict[FiveTuple, int] = {}
        # switch name -> crc32(name)
        self._salt_crc: dict[str, int] = {}

    def _flow_half(self, five_tuple: FiveTuple) -> int:
        crc = self._flow_crc.get(five_tuple)
        if crc is None:
            if len(self._flow_crc) >= self._MAX_FLOWS:
                self._flow_crc.clear()
            tuple_key = (f"{five_tuple.src_ip}|{five_tuple.src_port}|"
                         f"{five_tuple.dst_ip}|{five_tuple.dst_port}|"
                         f"{five_tuple.proto}")
            crc = zlib.crc32(tuple_key.encode()) << 32
            self._flow_crc[five_tuple] = crc
        return crc

    def _salt_half(self, switch_name: str) -> int:
        crc = self._salt_crc.get(switch_name)
        if crc is None:
            crc = self._salt_crc[switch_name] = zlib.crc32(switch_name.encode())
        return crc

    def hash(self, five_tuple: FiveTuple, switch_name: str) -> int:
        """Same value as ``ecmp_hash(five_tuple, switch_name)``."""
        return _mix(self._flow_half(five_tuple)
                    | self._salt_half(switch_name)) & 0xFFFFFFFF

    def pick(self, five_tuple: FiveTuple, switch_name: str,
             candidates: list[str]) -> str:
        """Same choice as ``pick_next_hop(five_tuple, switch_name, ...)``."""
        if not candidates:
            raise ValueError(f"no next-hop candidates at {switch_name}")
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self.hash(five_tuple, switch_name) % len(candidates)]
