"""Figure 10: Service Tracing captures periodic All2All congestion.

DML alternates compute (network idle) and All2All communication (heavy
congestion) every few seconds.  With 10 ms probing and per-round pinglist
shuffling, the probes sent by one RNIC sample every path at random phases,
so RTT samples during communication phases are visibly higher — the
figure's periodic sawtooth.

We bucket each service-tracing probe of one RNIC by whether it was issued
during a communicate phase, and compare the two RTT distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core.records import ProbeKind
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim.stats import PercentileTracker
from repro.sim.units import MILLISECOND, seconds


@dataclass
class ServiceCaptureResult:
    """Figure 10 reproduction."""

    rtt_samples: list[tuple[float, float]] = field(default_factory=list)
    comm_windows_s: list[tuple[float, float]] = field(default_factory=list)
    comm_rtt_p90_us: float = 0.0
    idle_rtt_p90_us: float = 0.0
    comm_phase_sampled: int = 0
    idle_phase_sampled: int = 0

    @property
    def congestion_contrast(self) -> float:
        """comm-phase P90 over idle-phase P90; >> 1 means captured."""
        return self.comm_rtt_p90_us / max(self.idle_rtt_p90_us, 1e-9)


def run(*, seed: int = 11, duration_s: int = 60) -> ServiceCaptureResult:
    """Run an All2All job and bucket one RNIC's service-tracing RTTs."""
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    system = RPingmesh(cluster)
    system.start()
    captured = []
    system.analyzer.add_upload_listener(
        lambda batch: captured.extend(batch.results))
    job = DmlJob(cluster, cluster.rnic_names()[:8],
                 DmlConfig(pattern=CommPattern.ALL2ALL,
                           compute_time_ns=800 * MILLISECOND,
                           data_gbits_per_cycle=8.0))
    cluster.sim.run_for(seconds(3))

    comm_windows: list[tuple[int, int]] = []
    _orig_begin = job._begin_comm
    _orig_end = job._end_comm
    state = {"start": None}

    def begin_comm():
        state["start"] = cluster.sim.now
        _orig_begin()

    def end_comm():
        if state["start"] is not None:
            comm_windows.append((state["start"], cluster.sim.now))
            state["start"] = None
        _orig_end()

    job._begin_comm = begin_comm
    job._end_comm = end_comm
    job.start()
    cluster.sim.run_for(seconds(duration_s))

    watched_rnic = job.participants[0]

    result = ServiceCaptureResult()
    result.comm_windows_s = [(a / 1e9, b / 1e9) for a, b in comm_windows]

    def in_comm_phase(t_ns: int) -> bool:
        return any(a <= t_ns < b for a, b in comm_windows)

    comm_rtts, idle_rtts = PercentileTracker(), PercentileTracker()
    for res in captured:
        if (res.kind != ProbeKind.SERVICE_TRACING
                or res.prober_rnic != watched_rnic
                or res.network_rtt_ns is None):
            continue
        result.rtt_samples.append(
            (res.issued_at_ns / 1e9, res.network_rtt_ns / 1000))
        if in_comm_phase(res.issued_at_ns):
            comm_rtts.add(float(res.network_rtt_ns))
        else:
            idle_rtts.add(float(res.network_rtt_ns))
    result.comm_phase_sampled = len(comm_rtts)
    result.idle_phase_sampled = len(idle_rtts)
    if len(comm_rtts):
        result.comm_rtt_p90_us = comm_rtts.percentile(90) / 1000
    if len(idle_rtts):
        result.idle_rtt_p90_us = idle_rtts.percentile(90) / 1000
    return result
