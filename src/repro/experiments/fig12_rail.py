"""Figure 12 / §7.4: rail-optimized probing.

In the rail-optimized cluster, same-host cross-rail probes traverse the top
tier; with enough 5-tuples, the hosts' own probing covers every fabric link
— no Controller pinglists needed — and one-way probing (no ACKs) detects
one-way loss and delay changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import Cluster
from repro.core.railprobe import RailProber
from repro.net.faults import LinkCorruption, LinkOverload
from repro.net.rail import RailParams
from repro.net.topology import Tier
from repro.sim.units import MILLISECOND, seconds


@dataclass
class RailResult:
    """Figure 12 reproduction."""

    fabric_links_total: int
    fabric_links_covered: int
    healthy_timeout_rate: float
    faulty_timeout_rate: float
    delay_change_detected_ns: float

    @property
    def coverage(self) -> float:
        return self.fabric_links_covered / self.fabric_links_total


def run(*, seed: int = 13, hosts: int = 3, rails: int = 4,
        spines: int = 2) -> RailResult:
    """Cover the fabric from host-local probing, then detect faults."""
    cluster = Cluster.rail(
        RailParams(hosts=hosts, rails=rails, spines=spines), seed=seed)
    probers = [RailProber(cluster, host) for host in sorted(cluster.hosts)]

    # Coverage sweep: many 5-tuples per same-host pair.
    for prober in probers:
        prober.sweep_ports()
    cluster.sim.run_for(seconds(2))
    covered = set()
    for prober in probers:
        covered |= prober.covered_links()
    fabric_links = {l.name for l in cluster.topology.switch_links()}

    # Healthy one-way baseline.
    for _ in range(30):
        for prober in probers:
            prober.probe_round()
        cluster.sim.run_for(100 * MILLISECOND)
    healthy_rate = sum(p.timeout_rate() * len(p.results)
                       for p in probers) / sum(len(p.results)
                                               for p in probers)

    # One-way loss: corrupt a rail->spine cable, probe again.
    rail0 = cluster.topology.switches(Tier.TOR)[0]
    LinkCorruption(cluster, rail0, "spine0", drop_prob=0.5).inject()
    for prober in probers:
        prober.results.clear()
    for _ in range(30):
        for prober in probers:
            prober.probe_round()
        cluster.sim.run_for(100 * MILLISECOND)
    faulty_rate = sum(p.timeout_rate() * len(p.results)
                      for p in probers) / sum(len(p.results)
                                              for p in probers)

    # One-way delay change: congest a spine downlink and watch the delta.
    target_prober = probers[0]
    pair = (cluster.hosts[sorted(cluster.hosts)[0]].rnics[0].name,
            cluster.hosts[sorted(cluster.hosts)[0]].rnics[1].name)
    for _ in range(40):
        target_prober.probe_pair(*pair, src_port=30_000)
        cluster.sim.run_for(20 * MILLISECOND)
    rail_dst = cluster.topology.tor_of(pair[1])
    for spine in cluster.topology.switches(Tier.SPINE):
        LinkOverload(cluster, spine, rail_dst, extra_gbps=450.0).inject()
    for _ in range(40):
        target_prober.probe_pair(*pair, src_port=30_000)
        cluster.sim.run_for(20 * MILLISECOND)
    change = target_prober.delay_change_ns(*pair) or 0.0

    return RailResult(
        fabric_links_total=len(fabric_links),
        fabric_links_covered=len(fabric_links & covered),
        healthy_timeout_rate=healthy_rate,
        faulty_timeout_rate=faulty_rate,
        delay_change_detected_ns=change)
