"""Figure 13: the two most common congestion causes.

(a) ToR **downlink** congestion from many-to-one incast;
(b) ToR **uplink** congestion from ECMP hash collisions.

R-Pingmesh distinguishes them by *where* the high-RTT probes' paths pile
votes: the incast case on the ToR->host downlink, the collision case on a
ToR->agg uplink.  We build both traffic shapes, let Service Tracing observe
them, and check the localisation lands on the right link tier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import Cluster
from repro.core.records import ProblemCategory
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.net.addresses import roce_five_tuple
from repro.net.ecmp import pick_next_hop
from repro.net.topology import Tier
from repro.services.dml import DmlConfig, DmlJob
from repro.services.traffic import TrafficEngine
from repro.sim.units import MILLISECOND, seconds


@dataclass
class CongestionCauseResult:
    """One congestion scenario's localisation outcome.

    RTT is a round-trip measurement, so the vote localises the congested
    *cable*; the direction is ambiguous without one-way probing (§7.4).
    ``correct_tier`` therefore accepts either direction of the true cable.
    """

    scenario: str                 # incast | hash_collision
    congested_links: list[str]    # ground truth (from the traffic engine)
    localized_links: list[str]    # analyzer's HIGH_RTT suspects
    correct_tier: bool            # right cable at the right tier


def _cable_match(suspects: list[str], truth: str) -> bool:
    a, b = truth.split("->")
    return any(s in (f"{a}->{b}", f"{b}->{a}") for s in suspects)


def _high_rtt_suspects(system) -> list[str]:
    suspects = []
    for window in system.analyzer.windows:
        for problem in window.problems:
            if problem.category == ProblemCategory.HIGH_RTT \
                    and "->" in problem.locus:
                suspects.append(problem.locus)
    return suspects


def run_incast(*, seed: int = 14, senders: int = 5,
               duration_s: int = 50) -> CongestionCauseResult:
    """Many-to-one incast onto one host: ToR downlink congests."""
    cluster = Cluster.clos(default_cluster_params(hosts_per_tor=4),
                           seed=seed)
    system = RPingmesh(cluster)
    system.start()

    target = "host0-rnic0"
    sources = [r for r in cluster.rnic_names() if r != target][:senders]
    participants = [target] + sources
    # A custom flow set: every source sends to the single target.
    traffic = TrafficEngine(cluster)
    job = DmlJob(cluster, participants,
                 DmlConfig(compute_time_ns=300 * MILLISECOND,
                           data_gbits_per_cycle=4.0,
                           per_flow_demand_gbps=150.0),
                 traffic=traffic)
    # Override the ring with an incast pattern before starting.
    job._pairs = lambda: [(src, target) for src in sources]
    cluster.sim.run_for(seconds(3))
    job.start()
    cluster.sim.run_for(seconds(duration_s))

    tor = cluster.tor_of(target)
    truth = f"{tor}->{target}"
    suspects = _high_rtt_suspects(system)
    return CongestionCauseResult(
        scenario="incast",
        congested_links=[truth],
        localized_links=suspects,
        correct_tier=_cable_match(suspects, truth))


def run_hash_collision(*, seed: int = 14,
                       duration_s: int = 50) -> CongestionCauseResult:
    """Flows from one ToR colliding onto one uplink via ECMP.

    We pick source ports whose ECMP hash at the source ToR lands on the
    same aggregation uplink, so their combined demand exceeds it.
    """
    cluster = Cluster.clos(default_cluster_params(hosts_per_tor=4),
                           seed=seed)
    system = RPingmesh(cluster)
    system.start()

    src_tor = "pod0-tor0"
    srcs = cluster.rnics_under_tor(src_tor)[:3]
    dsts = cluster.rnics_under_tor("pod1-tor0")[:3]
    uplinks = sorted(n for n in cluster.topology.neighbors(src_tor)
                     if cluster.topology.node(n).tier == Tier.AGG)
    collide_on = uplinks[0]

    def colliding_port(src: str, dst: str) -> int:
        src_ip = cluster.rnic(src).ip
        dst_ip = cluster.rnic(dst).ip
        for port in range(20_000, 60_000):
            ft = roce_five_tuple(src_ip, dst_ip, port)
            if pick_next_hop(ft, src_tor, uplinks) == collide_on:
                return port
        raise RuntimeError("no colliding port found")

    traffic = TrafficEngine(cluster)
    job = DmlJob(cluster, srcs + dsts,
                 DmlConfig(compute_time_ns=300 * MILLISECOND,
                           data_gbits_per_cycle=4.0,
                           per_flow_demand_gbps=200.0),
                 traffic=traffic)
    pairs = list(zip(srcs, dsts))
    job._pairs = lambda: pairs
    cluster.sim.run_for(seconds(3))
    job.start()
    # Re-pin each connection's source port onto the colliding uplink.
    for conn in job.connections:
        job.reroute_connection(conn,
                               colliding_port(conn.src_rnic, conn.dst_rnic))
    cluster.sim.run_for(seconds(duration_s))

    truth = f"{src_tor}->{collide_on}"
    suspects = _high_rtt_suspects(system)
    return CongestionCauseResult(
        scenario="hash_collision",
        congested_links=[truth],
        localized_links=suspects,
        correct_tier=_cable_match(suspects, truth))
