"""Figure 6: localisation accuracy over a month of operation.

The paper reports 207 problems in one month: 85% accurate overall, all 157
switch-network problems accurate, but only 20 of 50 RNIC problems confirmed
— the other 30 being Agent-CPU-starvation false positives (Figure 6 right),
eliminated in later deployments by the multi-RNIC-simultaneity and
processing-delay filters.

A month of simulated time is unnecessary: what the statistic measures is
the analyzer's per-episode precision.  We run a schedule of independent
fault episodes (switch faults, real RNIC faults, and CPU-overload
false-positive bait) and score the analyzer's verdicts against ground
truth, once with the FP filter off (reproducing the 60%-ish RNIC precision)
and once with it on (reproducing the fix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.records import ProblemCategory
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.net.faults import (CpuOverload, Fault, LinkCorruption,
                              RnicCorruption, RnicFlapping,
                              SwitchPortFlapping)
from repro.sim.units import seconds


@dataclass
class EpisodeOutcome:
    """Ground truth vs verdict for one fault episode."""

    episode_kind: str          # switch | rnic | cpu_fp
    truth_locus: str
    detected: bool
    verdict_category: str
    verdict_locus: str
    correct: bool


@dataclass
class AccuracyResult:
    """Figure 6 (left) reproduction."""

    fp_filter_enabled: bool
    episodes: list[EpisodeOutcome] = field(default_factory=list)

    def _of_kind(self, kind: str) -> list[EpisodeOutcome]:
        return [e for e in self.episodes if e.episode_kind == kind]

    @property
    def total_reported(self) -> int:
        return sum(1 for e in self.episodes if e.detected)

    @property
    def overall_accuracy(self) -> float:
        reported = [e for e in self.episodes if e.detected]
        if not reported:
            return 0.0
        return sum(e.correct for e in reported) / len(reported)

    @property
    def switch_accuracy(self) -> float:
        reported = [e for e in self._of_kind("switch") if e.detected]
        if not reported:
            return 0.0
        return sum(e.correct for e in reported) / len(reported)

    @property
    def rnic_reports(self) -> int:
        """RNIC-problem verdicts, including ones baited by CPU overload."""
        return sum(1 for e in self.episodes if e.detected
                   and e.verdict_category == "rnic_problem")

    @property
    def rnic_confirmed(self) -> int:
        """RNIC verdicts where an RNIC fault actually existed."""
        return sum(1 for e in self.episodes if e.detected and e.correct
                   and e.verdict_category == "rnic_problem")


def _switch_fault_locations(cluster: Cluster) -> list[tuple[str, str]]:
    pairs = []
    for link in cluster.topology.switch_links():
        if (link.dst, link.src) not in pairs:
            pairs.append((link.src, link.dst))
    return pairs


def run(*, seed: int = 6, switch_episodes: int = 8, rnic_episodes: int = 4,
        cpu_fp_episodes: int = 4, fp_filter_enabled: bool = True,
        episode_s: int = 45, quiet_s: int = 70) -> AccuracyResult:
    """Run the episode schedule and score the analyzer."""
    params = default_cluster_params(rnics_per_host=2)
    cluster = Cluster.clos(params, seed=seed)
    config = RPingmeshConfig(cpu_fp_filter_enabled=fp_filter_enabled)
    system = RPingmesh(cluster, config)
    system.start()
    cluster.sim.run_for(seconds(30))
    rng = cluster.rngs.stream("fig06")

    switch_sites = _switch_fault_locations(cluster)
    rnics = cluster.rnic_names()
    hosts = sorted(cluster.hosts)

    schedule: list[tuple[str, Callable[[], Fault], str]] = []
    for i in range(switch_episodes):
        a, b = switch_sites[i % len(switch_sites)]
        maker = (lambda a=a, b=b, i=i: SwitchPortFlapping(cluster, a, b)
                 if i % 2 == 0 else
                 LinkCorruption(cluster, a, b, drop_prob=0.5))
        schedule.append(("switch", maker, f"{a}<->{b}"))
    for i in range(rnic_episodes):
        rnic = rnics[(i * 3 + 1) % len(rnics)]
        maker = (lambda rnic=rnic, i=i: RnicFlapping(cluster, rnic)
                 if i % 2 == 0 else
                 RnicCorruption(cluster, rnic, drop_prob=0.5))
        schedule.append(("rnic", maker, rnic))
    for i in range(cpu_fp_episodes):
        host = hosts[(i * 2) % len(hosts)]
        schedule.append((
            "cpu_fp",
            lambda host=host: CpuOverload(cluster, host, load=0.97),
            host))
    rng.shuffle(schedule)

    result = AccuracyResult(fp_filter_enabled=fp_filter_enabled)
    for kind, maker, truth_locus in schedule:
        fault = maker()
        problems_before = len(system.analyzer.problems)
        fault.inject()
        cluster.sim.run_for(seconds(episode_s))
        fault.clear()
        new = system.analyzer.problems[problems_before:]
        result.episodes.append(_score(kind, truth_locus, new))
        cluster.sim.run_for(seconds(quiet_s))  # drain quarantines, settle
    return result


def _score(kind: str, truth_locus: str, problems) -> EpisodeOutcome:
    """Score the analyzer's verdicts for one episode against ground truth.

    The verdict considered is the dominant located problem in the episode
    window (host-down/noise categories are not located problems).
    """
    located = [p for p in problems
               if p.category in (ProblemCategory.RNIC_PROBLEM,
                                 ProblemCategory.SWITCH_NETWORK_PROBLEM)]
    if not located:
        return EpisodeOutcome(kind, truth_locus, detected=False,
                              verdict_category="none", verdict_locus="",
                              correct=False)
    # Dominant verdict: most evidence across the episode's windows.
    best = max(located, key=lambda p: p.evidence_count)
    verdict_cat = best.category.value
    verdict_locus = best.locus

    if kind == "switch":
        correct = (verdict_cat == "switch_network_problem"
                   and _link_matches(verdict_locus, truth_locus))
    elif kind == "rnic":
        correct = (verdict_cat == "rnic_problem"
                   and verdict_locus == truth_locus)
    else:  # cpu_fp bait: ANY located verdict here is a false positive
        correct = False
    return EpisodeOutcome(kind, truth_locus, detected=True,
                          verdict_category=verdict_cat,
                          verdict_locus=verdict_locus, correct=correct)


def _link_matches(verdict_locus: str, truth_pair: str) -> bool:
    """A directed-link verdict matches either direction of the cable."""
    a, b = truth_pair.split("<->")
    return verdict_locus in (f"{a}->{b}", f"{b}->{a}", a, b)
