"""Figure 8: detecting intra-host bottlenecks.

(left)  CPU overload on some hosts shows up as high end-host processing
        delay on exactly those hosts, while the network RTT stays flat.
(right) A PCIe downgrade triggers a PFC storm toward the affected RNIC:
        the P99 network RTT spikes, and ToR-mesh probing pins the high RTT
        on the anomalous RNIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core.records import ProblemCategory
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.net.faults import CpuOverload, PcieDowngrade
from repro.sim.units import seconds


@dataclass
class CpuOverloadResult:
    """Figure 8 (left)."""

    overloaded_hosts: list[str]
    baseline_processing_p90_us: float
    rtt_p50_before_us: float = 0.0
    rtt_p50_during_us: float = 0.0
    detected_hosts: set[str] = field(default_factory=set)


@dataclass
class PfcStormResult:
    """Figure 8 (right)."""

    victim_rnic: str
    rtt_p99_before_us: float
    rtt_p99_during_us: float
    high_rtt_rnic_detected: bool


def run_cpu_overload(*, seed: int = 8, overload_hosts: int = 2,
                     baseline_s: int = 45, overload_s: int = 45
                     ) -> CpuOverloadResult:
    """Figure 8 (left): CPU overload -> high processing delay, flat RTT."""
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    system = RPingmesh(cluster)
    system.start()
    cluster.sim.run_for(seconds(baseline_s))
    report = system.analyzer.sla.latest()
    baseline_proc = report.cluster.processing_percentiles()["p90"] / 1000
    rtt_before = report.cluster.rtt_percentiles()["p50"] / 1000

    victims = sorted(cluster.hosts)[:overload_hosts]
    faults = [CpuOverload(cluster, h, load=0.85) for h in victims]
    for fault in faults:
        fault.inject()
    cluster.sim.run_for(seconds(overload_s))
    report = system.analyzer.sla.latest()
    rtt_during = report.cluster.rtt_percentiles()["p50"] / 1000

    result = CpuOverloadResult(
        overloaded_hosts=victims,
        baseline_processing_p90_us=baseline_proc,
        rtt_p50_before_us=rtt_before,
        rtt_p50_during_us=rtt_during)
    for window in system.analyzer.windows:
        for problem in window.problems:
            if problem.category == ProblemCategory.HIGH_PROCESSING_DELAY:
                result.detected_hosts.add(problem.locus)
    for fault in faults:
        fault.clear()
    return result


def run_pfc_storm(*, seed: int = 9, victim: str = "host1-rnic0",
                  baseline_s: int = 45, storm_s: int = 45) -> PfcStormResult:
    """Figure 8 (right): PCIe downgrade -> PFC storm -> P99 RTT spike."""
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    system = RPingmesh(cluster)
    system.start()
    cluster.sim.run_for(seconds(baseline_s))
    before = system.analyzer.sla.latest().cluster.rtt_percentiles()["p99"]

    fault = PcieDowngrade(cluster, victim)
    fault.inject()
    cluster.sim.run_for(seconds(storm_s))
    during = system.analyzer.sla.latest().cluster.rtt_percentiles()["p99"]

    detected = any(
        problem.category == ProblemCategory.HIGH_RTT
        and victim in problem.locus
        for window in system.analyzer.windows
        for problem in window.problems)
    fault.clear()
    return PfcStormResult(
        victim_rnic=victim,
        rtt_p99_before_us=before / 1000,
        rtt_p99_during_us=during / 1000,
        high_rtt_rnic_detected=detected)
