"""Figure 2: Pingmesh's software TCP RTT tracks host CPU load.

The paper shows P99 software RTT in a production cluster fluctuating with
the hosts' average load — the motivating defect of software timestamping.
We sweep host load up and down and report the P99 software RTT per epoch,
alongside R-Pingmesh's hardware-timestamped network RTT over the same
timeline for contrast (which must stay flat).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.pingmesh import TcpPingmesh
from repro.core.system import RPingmesh
from repro.cluster import Cluster
from repro.experiments.common import default_cluster_params
from repro.sim.units import seconds


@dataclass
class LoadEpoch:
    """One load level and the RTTs measured during it."""

    load: float
    pingmesh_p99_us: float
    rpingmesh_rtt_p99_us: float


@dataclass
class PingmeshLoadResult:
    """Figure 2 reproduction."""

    epochs: list[LoadEpoch] = field(default_factory=list)

    @property
    def pingmesh_swing(self) -> float:
        """max/min of the baseline's P99 across load levels."""
        values = [e.pingmesh_p99_us for e in self.epochs]
        return max(values) / min(values)

    @property
    def rpingmesh_swing(self) -> float:
        """max/min of R-Pingmesh's network RTT P99 — should stay ~1."""
        values = [e.rpingmesh_rtt_p99_us for e in self.epochs]
        return max(values) / min(values)


def run(*, seed: int = 2,
        loads: tuple[float, ...] = (0.1, 0.5, 0.9, 0.5, 0.1),
        epoch_s: int = 25) -> PingmeshLoadResult:
    """Sweep host CPU load and measure both systems' P99."""
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    system = RPingmesh(cluster)
    system.start()
    pingmesh = TcpPingmesh(cluster)
    pingmesh.start()

    result = PingmeshLoadResult()
    for load in loads:
        for host in cluster.hosts.values():
            host.cpu.set_load(load)
        mark = cluster.sim.now
        cluster.sim.run_for(seconds(epoch_s))
        report = system.analyzer.sla.latest()
        rtt_stats = report.cluster.rtt_percentiles()
        result.epochs.append(LoadEpoch(
            load=load,
            pingmesh_p99_us=pingmesh.rtt_percentile(99, since_ns=mark) / 1000,
            rpingmesh_rtt_p99_us=rtt_stats["p99"] / 1000))
    return result
