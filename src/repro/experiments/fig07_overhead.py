"""Figure 7: Agent CPU and memory overhead.

The paper's Figure 7 plots Agent CPU (fraction of one core) and memory over
half a month on 8-RNIC hosts: ~3% CPU and ~18.5 MB on average, with probe
traffic per RNIC under 300 Kb/s (§6).  We run the full system on 8-RNIC
hosts, sample the cost model over time, and measure actual per-RNIC probe
bandwidth from the RNIC byte counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams
from repro.sim.units import seconds


@dataclass
class OverheadResult:
    """Figure 7 reproduction."""

    cpu_samples: list[float] = field(default_factory=list)     # cores
    memory_samples_mb: list[float] = field(default_factory=list)
    per_rnic_probe_kbps: list[float] = field(default_factory=list)
    rnics_per_host: int = 8

    @property
    def mean_cpu_cores(self) -> float:
        return sum(self.cpu_samples) / len(self.cpu_samples)

    @property
    def mean_memory_mb(self) -> float:
        return sum(self.memory_samples_mb) / len(self.memory_samples_mb)

    @property
    def max_rnic_kbps(self) -> float:
        return max(self.per_rnic_probe_kbps)


def run(*, seed: int = 7, rnics_per_host: int = 8, duration_s: int = 120,
        sample_every_s: int = 10) -> OverheadResult:
    """Measure Agent overhead on hosts with ``rnics_per_host`` RNICs."""
    cluster = Cluster.clos(
        ClosParams(pods=1, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=2, rnics_per_host=rnics_per_host),
        seed=seed)
    system = RPingmesh(cluster)
    system.start()
    agent = system.agents["host0"]
    result = OverheadResult(rnics_per_host=rnics_per_host)

    elapsed = 0
    byte_marks = {r.name: 0 for r in cluster.hosts["host0"].rnics}
    while elapsed < duration_s:
        cluster.sim.run_for(seconds(sample_every_s))
        elapsed += sample_every_s
        estimate = agent.overhead_estimate()
        result.cpu_samples.append(estimate["cpu_cores"])
        result.memory_samples_mb.append(estimate["memory_mb"])
        for rnic in cluster.hosts["host0"].rnics:
            total = rnic.tx_bytes + rnic.rx_bytes
            delta = total - byte_marks[rnic.name]
            byte_marks[rnic.name] = total
            result.per_rnic_probe_kbps.append(
                delta * 8 / sample_every_s / 1000)
    return result
