"""Shared scaffolding for the figure/table reproduction drivers.

Every experiment returns a plain result dataclass with the series/rows the
paper's figure or table shows, so the benchmark harness can both assert the
*shape* of the result (who wins, what is detected) and print the rows next
to the paper's reported values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams


@dataclass
class Deployment:
    """A cluster with R-Pingmesh running on it."""

    cluster: Cluster
    system: RPingmesh


def default_cluster_params(**overrides) -> ClosParams:
    """The downscaled evaluation fabric: 2 pods, 1:1 oversubscription."""
    params = dict(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                  hosts_per_tor=3, rnics_per_host=1)
    params.update(overrides)
    return ClosParams(**params)


def deploy(*, seed: int = 0, params: Optional[ClosParams] = None,
           config: Optional[RPingmeshConfig] = None,
           warmup_ns: int = 0) -> Deployment:
    """Build a Clos cluster, start R-Pingmesh, optionally warm up."""
    cluster = Cluster.clos(params or default_cluster_params(), seed=seed)
    system = RPingmesh(cluster, config)
    system.start()
    if warmup_ns:
        cluster.sim.run_for(warmup_ns)
    return Deployment(cluster=cluster, system=system)


@dataclass
class SeriesPoint:
    """One (time, value) sample of a reported series."""

    time_s: float
    value: float


def sample_series(times_ns: list[int], values: list[float]
                  ) -> list[SeriesPoint]:
    """Convert raw TimeSeries storage into second-scaled points."""
    return [SeriesPoint(t / 1e9, v) for t, v in zip(times_ns, values)]


def fmt_us(ns: Optional[float]) -> str:
    """Nanoseconds -> 'x.y us' for printed tables."""
    if ns is None:
        return "-"
    return f"{ns / 1000:.1f}us"


def fmt_pct(fraction: float) -> str:
    """0.85 -> '85.0%'."""
    return f"{fraction * 100:.1f}%"
