"""Table 1: QP-type feature comparison.

=====================  ====  ====  ====
Feature                 RC    UC    UD
=====================  ====  ====  ====
Accurate RTT            ✗     ✓     ✓
Connection overhead    high  high  low
=====================  ====  ====  ====

*Accuracy*: the Figure 4 method needs timestamp ② (send CQE at wire
departure).  On RC the send CQE only fires when the remote hardware ACK
returns, so "②" already contains a full round trip and the derived RTT is
garbage (≈ 0 or negative).  On UC/UD the send CQE fires at the wire and
the derived RTT matches the true fabric latency.

*Connection overhead*: probing M peers needs M connected QPs (QPC cache
slots) on RC/UC but a single UD QP.

We measure both rows directly against the RNIC model, comparing each QP
type's derived RTT with the fabric's ground-truth latency for the same
path, under fully desynchronised clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster import Cluster
from repro.experiments.common import default_cluster_params
from repro.host.rnic import CommInfo, Cqe, CqeKind, QPType
from repro.net.addresses import roce_five_tuple
from repro.sim.units import seconds


@dataclass
class QpTypeRow:
    """One Table 1 row (one QP type)."""

    qp_type: str
    measured_rtt_ns: Optional[float]
    true_rtt_ns: float
    qps_needed_for_m_peers: int
    qpc_slots_consumed: int

    @property
    def rtt_accurate(self) -> bool:
        """Within 20% of fabric ground truth (and positive)."""
        if self.measured_rtt_ns is None or self.measured_rtt_ns <= 0:
            return False
        return abs(self.measured_rtt_ns - self.true_rtt_ns) \
            <= 0.2 * self.true_rtt_ns

    @property
    def connection_overhead(self) -> str:
        return "low" if self.qpc_slots_consumed <= 1 else "high"


@dataclass
class Table1Result:
    """All three rows."""

    rows: dict[str, QpTypeRow] = field(default_factory=dict)

    def row(self, qp_type: str) -> QpTypeRow:
        return self.rows[qp_type]


def _true_rtt(cluster: Cluster, src: str, dst: str, port: int) -> float:
    """Fabric ground truth: sum of per-hop latencies both ways."""
    src_rnic, dst_rnic = cluster.rnic(src), cluster.rnic(dst)
    total = 0.0
    for ft, start in ((roce_five_tuple(src_rnic.ip, dst_rnic.ip, port), src),
                      (roce_five_tuple(dst_rnic.ip, src_rnic.ip, port), dst)):
        path = cluster.fabric.path_of(ft, start)
        for a, b in zip(path, path[1:]):
            link = cluster.topology.links[(a, b)]
            total += link.traversal_delay_ns(cluster.sim.now, 108)
            if cluster.topology.nodes[b].is_switch:
                total += 450  # switch pipeline latency
    return total


def _measure_with_qp_type(cluster: Cluster, qp_type: QPType, *,
                          src: str, dst: str, port: int
                          ) -> Optional[float]:
    """Run the Figure 4 exchange once with the given QP type.

    Both endpoints use ``qp_type``; the responder echoes an ACK pair
    exactly as the Agent does.  Returns the derived network RTT
    (⑤-②)-(④-③), or None if the required CQEs never materialise.
    """
    src_rnic, dst_rnic = cluster.rnic(src), cluster.rnic(dst)
    src_host = cluster.host_of_rnic(src)
    dst_host = cluster.host_of_rnic(dst)

    timestamps: dict[str, int] = {}
    done: dict[str, bool] = {}

    def src_cqe(cqe: Cqe) -> None:
        if cqe.kind == CqeKind.SEND and "t2" not in timestamps:
            timestamps["t2"] = cqe.rnic_timestamp_ns
        elif cqe.kind == CqeKind.RECV:
            payload = cqe.payload
            if payload.get("t") == "ack1" and "t5" not in timestamps:
                timestamps["t5"] = cqe.rnic_timestamp_ns
            elif payload.get("t") == "ack2":
                timestamps["responder_delay"] = payload["delay"]
                done["done"] = True

    responder_state: dict[str, int] = {}

    def dst_cqe(cqe: Cqe) -> None:
        if cqe.kind == CqeKind.RECV and cqe.payload.get("t") == "probe":
            responder_state["t3"] = cqe.rnic_timestamp_ns
            responder_state["reply_qpn"] = cqe.src_qpn
            wr = dst_rnic.post_send(
                qp_dst, CommInfo(src_rnic.ip, src_rnic.gid.value,
                                 cqe.src_qpn),
                src_port=cqe.src_port, payload={"t": "ack1"},
                payload_bytes=50)
            responder_state["ack1_wr"] = wr
        elif cqe.kind == CqeKind.SEND \
                and cqe.wr_id == responder_state.get("ack1_wr"):
            delay = cqe.rnic_timestamp_ns - responder_state["t3"]
            dst_rnic.post_send(
                qp_dst, CommInfo(src_rnic.ip, src_rnic.gid.value,
                                 responder_state["reply_qpn"]),
                src_port=port, payload={"t": "ack2", "delay": delay},
                payload_bytes=50)

    qp_src = src_host.verbs.create_qp(src_rnic, qp_type, on_cqe=src_cqe)
    qp_dst = dst_host.verbs.create_qp(dst_rnic, qp_type, on_cqe=dst_cqe)
    if qp_type != QPType.UD:
        src_host.verbs.connect_qp(
            src_rnic, qp_src,
            CommInfo(dst_rnic.ip, dst_rnic.gid.value, qp_dst.qpn), port)
        dst_host.verbs.connect_qp(
            dst_rnic, qp_dst,
            CommInfo(src_rnic.ip, src_rnic.gid.value, qp_src.qpn), port)

    src_rnic.post_send(qp_src,
                       CommInfo(dst_rnic.ip, dst_rnic.gid.value, qp_dst.qpn),
                       src_port=port, payload={"t": "probe"},
                       payload_bytes=50)
    cluster.sim.run_for(seconds(2))

    if not done.get("done") or "t2" not in timestamps \
            or "t5" not in timestamps:
        return None
    return float((timestamps["t5"] - timestamps["t2"])
                 - timestamps["responder_delay"])


def _qpc_cost(cluster: Cluster, qp_type: QPType, peers: int) -> tuple[int, int]:
    """(QPs created, QPC slots) to be able to probe ``peers`` peers."""
    rnic = cluster.rnic("host2-rnic0")
    host = cluster.host_of_rnic(rnic.name)
    if qp_type == QPType.UD:
        host.verbs.create_qp(rnic, QPType.UD)
        return 1, rnic.qpc_in_use
    before = rnic.qpc_in_use
    for i in range(peers):
        qp = host.verbs.create_qp(rnic, qp_type)
        host.verbs.connect_qp(rnic, qp,
                              CommInfo(f"10.9.{i}.1", f"::ffff:10.9.{i}.1",
                                       100 + i),
                              20_000 + i)
    return peers, rnic.qpc_in_use - before


def run(*, seed: int = 15, peers: int = 100) -> Table1Result:
    """Measure both Table 1 columns for RC, UC, and UD."""
    result = Table1Result()
    for qp_type in (QPType.RC, QPType.UC, QPType.UD):
        cluster = Cluster.clos(default_cluster_params(), seed=seed)
        src, dst, port = "host0-rnic0", "host4-rnic0", 23_456
        true_rtt = _true_rtt(cluster, src, dst, port)
        measured = _measure_with_qp_type(cluster, qp_type,
                                         src=src, dst=dst, port=port)
        qps, slots = _qpc_cost(cluster, qp_type, peers)
        result.rows[qp_type.value] = QpTypeRow(
            qp_type=qp_type.value, measured_rtt_ns=measured,
            true_rtt_ns=true_rtt, qps_needed_for_m_peers=qps,
            qpc_slots_consumed=slots)
    return result
