"""Figure 9: proving the network innocent.

The service's training throughput keeps dropping; the service team blames
ECMP congestion.  R-Pingmesh shows the network RTT *also decreasing* (less
traffic -> emptier queues) and processing delay stable — no network or CPU
bottleneck.  The real culprit was a training-code bug degrading compute.

We inject a compute-speed decay into the DML job and check (1) the three
series' shapes and (2) that the Analyzer's verdict is "network innocent"
(no P0/P1 problems while the service degrades).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim.units import MILLISECOND, seconds


@dataclass
class InnocentResult:
    """Figure 9 reproduction."""

    throughput: list[tuple[float, float]] = field(default_factory=list)
    service_rtt_p90_us: list[tuple[float, float]] = field(
        default_factory=list)
    processing_p50_us: list[tuple[float, float]] = field(default_factory=list)
    service_degraded_at_end: bool = False
    network_innocent: bool = False

    def trend(self, series: list[tuple[float, float]]) -> float:
        """late-third mean / early-third mean (<1 means decreasing)."""
        n = len(series)
        if n < 6:
            raise ValueError("series too short for a trend")
        early = [v for _, v in series[: n // 3]]
        late = [v for _, v in series[-(n // 3):]]
        return (sum(late) / len(late)) / (sum(early) / len(early))


def run(*, seed: int = 10, duration_s: int = 150,
        decay_per_cycle: float = 0.04) -> InnocentResult:
    """Run a degrading-compute job and collect the Figure 9 series."""
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    system = RPingmesh(cluster)
    system.start()
    # Ring AllReduce: the service is communication-light, so the network
    # is never the bottleneck — the paper's scenario, where the real
    # culprit is a compute bug and the network must come out innocent.
    job = DmlJob(cluster, cluster.rnic_names()[:8],
                 DmlConfig(pattern=CommPattern.ALLREDUCE,
                           compute_time_ns=500 * MILLISECOND,
                           data_gbits_per_cycle=4.0))
    system.attach_service_monitor(job)
    cluster.sim.run_for(seconds(5))
    job.start()
    cluster.sim.run_for(seconds(20))
    job.set_compute_degradation(decay_per_cycle)
    cluster.sim.run_for(seconds(duration_s))

    result = InnocentResult()
    result.throughput = [(t / 1e9, v) for t, v in
                         zip(job.throughput.times, job.throughput.values)]
    for t_ns, v in system.analyzer.sla.series("service", "rtt_p90"):
        result.service_rtt_p90_us.append((t_ns / 1e9, v / 1000))
    for t_ns, v in system.analyzer.sla.series("service", "processing_p50"):
        result.processing_p50_us.append((t_ns / 1e9, v / 1000))
    result.service_degraded_at_end = job.degraded()
    result.network_innocent = system.analyzer.network_innocent()
    return result
