"""Figure 1: a single flapping switch port or RNIC collapses DML throughput.

The paper's figure shows cluster-average training throughput over time with
a flapping switch port (top) and a flapping RNIC (bottom); in both cases
throughput degrades severely, "even to zero".  We run the same timeline:
healthy -> fault injected -> fault cleared, and report mean throughput per
epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import Cluster
from repro.experiments.common import default_cluster_params
from repro.net.faults import Fault, RnicFlapping, SwitchPortFlapping
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim.units import MILLISECOND, seconds


@dataclass
class FlappingResult:
    """Throughput timeline around one flapping episode."""

    fault_kind: str
    healthy_mean_gbps: float
    faulty_mean_gbps: float
    recovered_mean_gbps: float
    min_faulty_gbps: float
    times_s: list[float]
    throughput_gbps: list[float]

    @property
    def degradation_factor(self) -> float:
        """healthy / faulty mean — the figure's headline collapse."""
        return self.healthy_mean_gbps / max(self.faulty_mean_gbps, 1e-9)


def run(fault_kind: str = "switch_port", *, seed: int = 1,
        healthy_s: int = 15, faulty_s: int = 40,
        recovery_s: int = 15) -> FlappingResult:
    """Run the Figure 1 timeline for 'switch_port' or 'rnic' flapping."""
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    participants = cluster.rnic_names()[:8]
    job = DmlJob(cluster, participants,
                 DmlConfig(pattern=CommPattern.ALL2ALL,
                           compute_time_ns=300 * MILLISECOND,
                           data_gbits_per_cycle=4.0))
    job.start()
    cluster.sim.run_for(seconds(healthy_s))
    t_fault = cluster.sim.now

    fault: Fault
    if fault_kind == "switch_port":
        fault = SwitchPortFlapping(cluster, "pod0-tor0", "pod0-agg0")
    elif fault_kind == "rnic":
        fault = RnicFlapping(cluster, participants[0])
    else:
        raise ValueError(f"unknown fault kind: {fault_kind}")
    fault.inject()
    cluster.sim.run_for(seconds(faulty_s))
    t_clear = cluster.sim.now
    fault.clear()
    cluster.sim.run_for(seconds(recovery_s))

    series = job.throughput

    def window_mean(start_ns, end_ns):
        window = series.window(start_ns, end_ns)
        return window.mean() if len(window) else 0.0

    faulty_window = series.window(t_fault, t_clear)
    return FlappingResult(
        fault_kind=fault_kind,
        healthy_mean_gbps=window_mean(0, t_fault),
        faulty_mean_gbps=window_mean(t_fault, t_clear),
        recovered_mean_gbps=window_mean(t_clear, cluster.sim.now + 1),
        min_faulty_gbps=faulty_window.min() if len(faulty_window) else 0.0,
        times_s=[t / 1e9 for t in series.times],
        throughput_gbps=list(series.values))
