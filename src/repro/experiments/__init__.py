"""One reproduction driver per figure/table of the paper's evaluation.

Modules are named after the paper artifact they regenerate; each exposes a
``run(...)`` returning a result dataclass whose fields mirror what the
figure/table reports.  The benchmark harness under ``benchmarks/`` calls
these and prints paper-vs-measured rows.
"""

from repro.experiments import (common, eq01_coverage, fig01_flapping,
                               fig02_pingmesh_load, fig05_sla,
                               fig06_accuracy, fig07_overhead,
                               fig08_bottlenecks, fig09_innocent,
                               fig10_service_capture,
                               fig11_congestion_modes, fig12_rail,
                               fig13_congestion_causes, tab01_qp_types,
                               tab02_catalog)

__all__ = [
    "common",
    "fig01_flapping",
    "fig02_pingmesh_load",
    "fig05_sla",
    "fig06_accuracy",
    "fig07_overhead",
    "fig08_bottlenecks",
    "fig09_innocent",
    "fig10_service_capture",
    "fig11_congestion_modes",
    "fig12_rail",
    "fig13_congestion_causes",
    "tab01_qp_types",
    "tab02_catalog",
    "eq01_coverage",
]
