"""Export experiment series as CSV, plus quick ASCII sparklines.

The experiment drivers return plain dataclasses of series; this module
turns them into files a plotting pipeline (or the paper-comparison
notebook of your choice) can consume, and renders terminal sparklines for
eyeballing shapes without leaving the shell.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def series_to_csv(header: Sequence[str],
                  rows: Iterable[Sequence]) -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(path: Path, header: Sequence[str],
              rows: Iterable[Sequence]) -> Path:
    """Write rows to ``path`` (parent directories created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(series_to_csv(header, rows))
    return path


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """A one-line unicode sparkline of a series.

    Values are min-max normalised; the series is resampled to ``width``
    buckets by bucket-mean so long series stay one line.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        resampled = []
        for i in range(width):
            lo = int(i * bucket)
            hi = max(lo + 1, int((i + 1) * bucket))
            chunk = values[lo:hi]
            resampled.append(sum(chunk) / len(chunk))
        values = resampled
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def export_fig01(result, out_dir: Path) -> Path:
    """Figure 1 throughput timeline -> CSV."""
    return write_csv(
        Path(out_dir) / f"fig01_{result.fault_kind}.csv",
        ("time_s", "throughput_gbps"),
        zip(result.times_s, result.throughput_gbps))


def export_fig02(result, out_dir: Path) -> Path:
    """Figure 2 load sweep -> CSV."""
    return write_csv(
        Path(out_dir) / "fig02_pingmesh_load.csv",
        ("load", "pingmesh_p99_us", "rpingmesh_rtt_p99_us"),
        ((e.load, e.pingmesh_p99_us, e.rpingmesh_rtt_p99_us)
         for e in result.epochs))


def export_fig05(timeline, out_dir: Path) -> list[Path]:
    """Figure 5 five-series timeline -> one CSV per series."""
    out = []
    series = {
        "throughput": ("time_s", "gbps", timeline.throughput),
        "service_rtt_p50": ("time_s", "us", timeline.service_rtt_p50_us),
        "processing_p50": ("time_s", "us", timeline.processing_p50_us),
        "service_drop_rate": ("time_s", "rate",
                              timeline.service_drop_rate),
        "cluster_drop_rate": ("time_s", "rate",
                              timeline.cluster_drop_rate),
    }
    for name, (t_label, v_label, points) in series.items():
        out.append(write_csv(Path(out_dir) / f"fig05_{name}.csv",
                             (t_label, v_label), points))
    return out


def export_fig10(result, out_dir: Path) -> Path:
    """Figure 10 per-probe RTT samples -> CSV."""
    return write_csv(
        Path(out_dir) / "fig10_service_rtt_samples.csv",
        ("time_s", "rtt_us"),
        result.rtt_samples)
