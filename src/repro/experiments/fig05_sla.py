"""Figure 5: joint SLA monitoring over a service's lifetime.

The paper's five stacked series over one period:

(a) training throughput — dips during periodic TCP checkpoints;
(b) service-network probed RTT — *decreases* during checkpoints (RoCE idle)
    and spikes during the two switch-drop anomalies;
(c) end-host processing delay — *increases* during checkpoints (TCP is
    CPU-intensive);
(d) service-network probe drop rate — non-zero during the two switch-drop
    episodes (P0/P1: inside the service network);
(e) cluster-network probe drop rate — additionally sees a dropping RNIC
    *outside* the service network (P2: service unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core.records import Priority, ProblemCategory
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.net.faults import LinkCorruption, RnicCorruption
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim.units import MILLISECOND, SECOND, seconds


@dataclass
class SlaTimeline:
    """The five Figure 5 series plus the analyzer's verdicts."""

    throughput: list[tuple[float, float]] = field(default_factory=list)
    service_rtt_p50_us: list[tuple[float, float]] = field(default_factory=list)
    processing_p50_us: list[tuple[float, float]] = field(default_factory=list)
    service_drop_rate: list[tuple[float, float]] = field(default_factory=list)
    cluster_drop_rate: list[tuple[float, float]] = field(default_factory=list)
    # verdict bookkeeping
    switch_episode_priorities: list[Priority] = field(default_factory=list)
    outside_rnic_priorities: list[Priority] = field(default_factory=list)
    checkpoint_windows_s: list[tuple[float, float]] = field(
        default_factory=list)
    drop_windows_s: list[tuple[float, float]] = field(default_factory=list)

    def series_mean(self, series: list[tuple[float, float]],
                    start_s: float, end_s: float) -> float:
        values = [v for t, v in series if start_s <= t < end_s]
        if not values:
            raise ValueError(f"no points in [{start_s}, {end_s})")
        return sum(values) / len(values)


def run(*, seed: int = 5) -> SlaTimeline:
    """Run the Figure 5 timeline on a downscaled cluster.

    Timeline (seconds):
      0-180   healthy training with checkpoints every 6 cycles
      60-90   switch drop episode #1 on a service-network fabric link
      120-150 switch drop episode #2
      100-160 an RNIC outside the service drops packets (P2)
    """
    cluster = Cluster.clos(default_cluster_params(hosts_per_tor=4),
                           seed=seed)
    system = RPingmesh(cluster)
    system.start()

    # The service uses 8 of the 16 RNICs (pod0 + half of pod1); the rest of
    # the cluster is outside the service network.
    participants = cluster.rnic_names()[:8]
    outside_rnic = cluster.rnic_names()[-1]
    # Checkpoints must outlast the 20 s analysis window so the SLA series
    # can resolve the RTT-dip / processing-rise signature.
    job = DmlJob(cluster, participants,
                 DmlConfig(pattern=CommPattern.ALL2ALL,
                           compute_time_ns=400 * MILLISECOND,
                           data_gbits_per_cycle=4.0,
                           checkpoint_every_cycles=8,
                           checkpoint_duration_ns=28 * SECOND))
    system.attach_service_monitor(job)
    cluster.sim.run_for(seconds(5))
    job.start()

    # Both switch-drop episodes sit on cables the service's ECMP paths
    # actually use (ToRs with service hosts beneath them), as in the
    # paper's figure where both degradations are service-affecting.
    episode1 = LinkCorruption(cluster, "pod0-tor0", "pod0-agg0",
                              drop_prob=0.4)
    episode2 = LinkCorruption(cluster, "pod1-tor0", "pod1-agg0",
                              drop_prob=0.4)
    outside = RnicCorruption(cluster, outside_rnic, drop_prob=0.6)

    cluster.sim.call_at(seconds(60), episode1.inject)
    cluster.sim.call_at(seconds(90), episode1.clear)
    cluster.sim.call_at(seconds(120), episode2.inject)
    cluster.sim.call_at(seconds(150), episode2.clear)
    cluster.sim.call_at(seconds(100), outside.inject)
    cluster.sim.call_at(seconds(160), outside.clear)
    cluster.sim.run_until(seconds(185))

    timeline = SlaTimeline(
        drop_windows_s=[(60.0, 90.0), (120.0, 150.0)])
    timeline.checkpoint_windows_s = [
        (a / 1e9, b / 1e9) for a, b in job.checkpoint_windows]
    timeline.throughput = [(t / 1e9, v) for t, v in
                           zip(job.throughput.times, job.throughput.values)]
    sla = system.analyzer.sla
    for scope, metric, dest in (
            ("service", "rtt_p50", timeline.service_rtt_p50_us),
            ("service", "processing_p50", timeline.processing_p50_us)):
        for t_ns, value in sla.series(scope, metric):
            dest.append((t_ns / 1e9, value / 1000))
    for scope, dest in (("service", timeline.service_drop_rate),
                        ("cluster", timeline.cluster_drop_rate)):
        for t_ns, value in sla.series(scope, "drop_rate"):
            dest.append((t_ns / 1e9, value))

    # Collect the analyzer's verdicts for the two fault classes.  Switch
    # verdicts are matched to the injected cables (vote ties may also name
    # secondary links; the figure's claim concerns the real episodes).
    episode_links = {"pod0-tor0->pod0-agg0", "pod0-agg0->pod0-tor0",
                     "pod1-tor0->pod1-agg0", "pod1-agg0->pod1-tor0"}
    for problem in system.analyzer.problems:
        if problem.category == ProblemCategory.SWITCH_NETWORK_PROBLEM \
                and problem.priority is not None \
                and problem.locus in episode_links:
            timeline.switch_episode_priorities.append(problem.priority)
        if problem.category == ProblemCategory.RNIC_PROBLEM \
                and problem.locus == outside_rnic \
                and problem.priority is not None:
            timeline.outside_rnic_priorities.append(problem.priority)
    return timeline
