"""Table 2: the 14 problem root causes found by R-Pingmesh.

For every row of the paper's Table 2 we inject the corresponding fault into
a cluster running both R-Pingmesh and a DML service, and record:

* whether the Analyzer detected a problem within a few analysis periods,
* the problem category it assigned (timeout-type vs latency-type —
  failures produce timeouts, bottlenecks produce high RTT / processing
  delay, exactly the paper's §7.1 phenomenology),
* whether the service failed, which must match the paper's (*) markers
  when the service's retransmission settings are left untuned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster import Cluster
from repro.core.records import ProblemCategory
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.net.faults import (CpuOverload, Fault, HostDown, LinkCorruption,
                              LinkOverload, PcieDowngrade, PfcDeadlock,
                              PfcHeadroomMisconfig, RnicAcsMisconfig,
                              RnicDown, RnicGidIndexMissing,
                              RnicRoutingMisconfig, SwitchAclError,
                              SwitchPortFlapping)
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.sim.units import MILLISECOND, seconds

# Categories that signal "failure" (timeout) vs "bottleneck" (latency).
TIMEOUT_CATEGORIES = {ProblemCategory.RNIC_PROBLEM,
                      ProblemCategory.SWITCH_NETWORK_PROBLEM,
                      ProblemCategory.HOST_DOWN}
LATENCY_CATEGORIES = {ProblemCategory.HIGH_RTT,
                      ProblemCategory.HIGH_PROCESSING_DELAY}


@dataclass
class CatalogRow:
    """One Table 2 row's outcome."""

    row: int
    root_cause: str
    expect_service_failure: bool
    expect_signal: str            # "timeout" or "latency"
    detected: bool = False
    categories: set = field(default_factory=set)
    service_failed: bool = False
    detection_latency_s: Optional[float] = None

    @property
    def signal_matches(self) -> bool:
        wanted = (TIMEOUT_CATEGORIES if self.expect_signal == "timeout"
                  else LATENCY_CATEGORIES)
        return bool(self.categories & wanted)

    @property
    def service_failure_matches(self) -> bool:
        return self.service_failed == self.expect_service_failure


def _catalog(cluster: Cluster, service_rnics: list[str]
             ) -> list[tuple[int, str, bool, str, Callable[[], Fault]]]:
    """(row, name, service_fails, signal, fault factory) for all 14."""
    svc = service_rnics
    svc_host = cluster.host_of_rnic(svc[1]).name
    return [
        (1, "RNIC or switch port flapping", False, "timeout",
         lambda: SwitchPortFlapping(cluster, "pod0-tor0", "pod0-agg0")),
        (2, "packet corruption drops", False, "timeout",
         lambda: LinkCorruption(cluster, "pod0-tor1", "pod0-agg0",
                                drop_prob=0.5)),
        (3, "accident RNIC down (*)", True, "timeout",
         lambda: RnicDown(cluster, svc[1])),
        (4, "accident host down (*)", True, "timeout",
         lambda: HostDown(cluster, svc_host)),
        (5, "PFC deadlock (*)", True, "timeout",
         lambda: PfcDeadlock(cluster, "pod0-tor0", "pod0-agg1")),
        (6, "missing RNIC routing config (*)", True, "timeout",
         lambda: RnicRoutingMisconfig(cluster, svc[2])),
        (7, "RNIC GID index missing (*)", True, "timeout",
         lambda: RnicGidIndexMissing(cluster, svc[3])),
        (8, "switch ACL misconfiguration (*)", True, "timeout",
         lambda: SwitchAclError(cluster, "pod0-agg0",
                                src_ip=cluster.rnic(svc[0]).ip)),
        (9, "PFC unconfigured / bad headroom", False, "timeout",
         lambda: _headroom_under_congestion(cluster)),
        (10, "uneven load balance congestion", False, "latency",
         lambda: LinkOverload(cluster, "pod0-tor0", "pod0-agg0",
                              extra_gbps=500.0, table2_row=10)),
        (11, "inter-service interference", False, "latency",
         lambda: LinkOverload(cluster, "pod0-agg0", "spine0",
                              extra_gbps=500.0, table2_row=11)),
        (12, "CPU overload", False, "latency",
         lambda: CpuOverload(cluster, svc_host, load=0.85)),
        (13, "PCIe downgrade -> PFC storm", False, "latency",
         lambda: PcieDowngrade(cluster, svc[1])),
        (14, "wrong ACS/ATS config -> PFC storm", False, "latency",
         lambda: RnicAcsMisconfig(cluster, svc[0])),
    ]


class _HeadroomScenario(Fault):
    """Row 9 needs congestion to manifest: combine the misconfig with an
    overload on the same cable."""

    table2_row = 9

    def __init__(self, cluster: Cluster):
        super().__init__(cluster, "pod0-tor0<->pod0-agg0")
        self.headroom = PfcHeadroomMisconfig(cluster, "pod0-tor0",
                                             "pod0-agg0")
        self.overload = LinkOverload(cluster, "pod0-tor0", "pod0-agg0",
                                     extra_gbps=700.0)

    def _inject(self) -> None:
        self.headroom.inject()
        self.overload.inject()

    def _clear(self) -> None:
        self.overload.clear()
        self.headroom.clear()


def _headroom_under_congestion(cluster: Cluster) -> Fault:
    return _HeadroomScenario(cluster)


def run_row(row: int, *, seed: int = 16, fault_s: int = 50,
            retransmission_tuned: bool = True) -> CatalogRow:
    """Inject one Table 2 row's fault and score the system's response."""
    cluster = Cluster.clos(default_cluster_params(hosts_per_tor=3),
                           seed=seed + row)
    system = RPingmesh(cluster)
    system.start()
    service_rnics = cluster.rnic_names()[:6]
    job = DmlJob(cluster, service_rnics,
                 DmlConfig(pattern=CommPattern.ALL2ALL,
                           compute_time_ns=300 * MILLISECOND,
                           data_gbits_per_cycle=3.0,
                           retransmission_tuned=retransmission_tuned))
    system.attach_service_monitor(job)
    cluster.sim.run_for(seconds(3))
    job.start()
    cluster.sim.run_for(seconds(30))

    entries = _catalog(cluster, service_rnics)
    row_num, name, fails, signal, maker = entries[row - 1]
    assert row_num == row
    outcome = CatalogRow(row=row, root_cause=name,
                         expect_service_failure=fails, expect_signal=signal)

    problems_before = len(system.analyzer.problems)
    fault = maker()
    injected_at = cluster.sim.now
    fault.inject()
    cluster.sim.run_for(seconds(fault_s))
    fault.clear()

    new_problems = system.analyzer.problems[problems_before:]
    if new_problems:
        outcome.detected = True
        outcome.categories = {p.category for p in new_problems}
        first = min(p.detected_at_ns for p in new_problems)
        outcome.detection_latency_s = (first - injected_at) / 1e9
    outcome.service_failed = job.task_failed
    return outcome


def run_all(*, seed: int = 16, fault_s: int = 50) -> list[CatalogRow]:
    """Run all 14 rows (independent clusters; ~10 min of simulated time)."""
    return [run_row(row, seed=seed, fault_s=fault_s)
            for row in range(1, 15)]
