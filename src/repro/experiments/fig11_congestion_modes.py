"""Figure 11: tail RTT reflects congestion modes and CC quality.

(left)  All2All congests far more than ring AllReduce: the service-network
        tail RTT separates the two communication modes.
(right) Against default DCQCN, the paper's self-developed CC cuts the tail
        RTT and improves training throughput on All2All.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import Cluster
from repro.core.system import RPingmesh
from repro.experiments.common import default_cluster_params
from repro.services.congestion import CUSTOM_CC, DCQCN, CcModel
from repro.services.dml import CommPattern, DmlConfig, DmlJob
from repro.services.traffic import TrafficEngine
from repro.sim.units import MILLISECOND, seconds


@dataclass
class ModeResult:
    """One (pattern, CC) run's service tail RTT and training throughput."""

    pattern: str
    cc: str
    rtt_p50_us: float
    rtt_p99_us: float
    mean_throughput_gbps: float


def run_mode(pattern: CommPattern, cc: CcModel, *, seed: int = 12,
             duration_s: int = 60) -> ModeResult:
    """Run one communication mode under one CC model."""
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    system = RPingmesh(cluster)
    system.start()
    traffic = TrafficEngine(cluster, cc=cc)
    job = DmlJob(cluster, cluster.rnic_names()[:8],
                 DmlConfig(pattern=pattern,
                           compute_time_ns=400 * MILLISECOND,
                           data_gbits_per_cycle=6.0),
                 traffic=traffic)
    cluster.sim.run_for(seconds(3))
    job.start()
    cluster.sim.run_for(seconds(duration_s))

    report = system.analyzer.sla.latest()
    stats = report.service.rtt_percentiles()
    return ModeResult(
        pattern=pattern.value, cc=cc.name,
        rtt_p50_us=stats["p50"] / 1000,
        rtt_p99_us=stats["p99"] / 1000,
        mean_throughput_gbps=job.throughput.mean())


@dataclass
class Figure11Result:
    """Both panels."""

    allreduce_dcqcn: ModeResult
    all2all_dcqcn: ModeResult
    all2all_custom: ModeResult

    @property
    def mode_contrast(self) -> float:
        """(left) All2All tail over AllReduce tail, both on DCQCN."""
        return self.all2all_dcqcn.rtt_p99_us \
            / max(self.allreduce_dcqcn.rtt_p99_us, 1e-9)

    @property
    def cc_tail_improvement(self) -> float:
        """(right) DCQCN tail over custom-CC tail on All2All (>1 = win)."""
        return self.all2all_dcqcn.rtt_p99_us \
            / max(self.all2all_custom.rtt_p99_us, 1e-9)

    @property
    def cc_throughput_improvement(self) -> float:
        """(right) custom-CC throughput over DCQCN throughput (>1 = win)."""
        return self.all2all_custom.mean_throughput_gbps \
            / max(self.all2all_dcqcn.mean_throughput_gbps, 1e-9)


def run(*, seed: int = 12, duration_s: int = 60) -> Figure11Result:
    """Run all three cells of Figure 11."""
    return Figure11Result(
        allreduce_dcqcn=run_mode(CommPattern.ALLREDUCE, DCQCN, seed=seed,
                                 duration_s=duration_s),
        all2all_dcqcn=run_mode(CommPattern.ALL2ALL, DCQCN, seed=seed,
                               duration_s=duration_s),
        all2all_custom=run_mode(CommPattern.ALL2ALL, CUSTOM_CC, seed=seed,
                                duration_s=duration_s))
