"""Equation 1: 5-tuple counts for ECMP coverage, validated two ways.

1. Analytically: k = required_tuples(N, P) per Equation 1.
2. Empirically: throw k random 5-tuples at the simulated Clos fabric and
   check the fraction of trials covering every parallel path matches P.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core.coverage import miss_probability, required_tuples
from repro.experiments.common import default_cluster_params
from repro.net.addresses import roce_five_tuple
from repro.sim.rng import RngStream


@dataclass
class CoverageRow:
    """One N's analytic k and its empirical validation."""

    n_paths: int
    k_required: int
    analytic_coverage: float
    empirical_coverage: float


@dataclass
class CoverageResult:
    """Equation 1 table over a sweep of path counts."""

    probability: float
    rows: list[CoverageRow] = field(default_factory=list)
    fabric_paths_observed: int = 0
    fabric_k: int = 0
    fabric_coverage: float = 0.0


def run(*, probability: float = 0.99,
        path_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
        trials: int = 400, seed: int = 17) -> CoverageResult:
    """Sweep N, and validate k against both a uniform model and the
    actual ECMP-hashing Clos fabric."""
    rng = RngStream(seed, "eq01")
    result = CoverageResult(probability=probability)

    for n in path_counts:
        k = required_tuples(n, probability)
        covered = 0
        for _ in range(trials):
            hit = {rng.randint(0, n - 1) for _ in range(k)}
            if len(hit) == n:
                covered += 1
        result.rows.append(CoverageRow(
            n_paths=n, k_required=k,
            analytic_coverage=1.0 - miss_probability(n, k),
            empirical_coverage=covered / trials))

    # Fabric validation: do k tuples cover all distinct cross-pod paths?
    cluster = Cluster.clos(default_cluster_params(), seed=seed)
    src, dst = "host0-rnic0", "host6-rnic0"  # cross-pod pair
    src_ip = cluster.rnic(src).ip
    dst_ip = cluster.rnic(dst).ip
    all_paths = {tuple(cluster.fabric.path_of(
        roce_five_tuple(src_ip, dst_ip, port), src))
        for port in range(10_000, 14_000)}
    n_fabric = len(all_paths)
    k_fabric = required_tuples(n_fabric, probability)
    covered = 0
    for trial in range(trials):
        hit = set()
        for _ in range(k_fabric):
            port = rng.randint(1024, 65535)
            hit.add(tuple(cluster.fabric.path_of(
                roce_five_tuple(src_ip, dst_ip, port), src)))
        if hit >= all_paths:
            covered += 1
    result.fabric_paths_observed = n_fabric
    result.fabric_k = k_fabric
    result.fabric_coverage = covered / trials
    return result
