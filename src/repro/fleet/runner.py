"""The fleet runner: a worker pool executing sweep jobs with retries.

:class:`FleetRunner` fans a :class:`~repro.fleet.spec.SweepSpec`'s jobs
across a :class:`concurrent.futures.ProcessPoolExecutor`, enforcing a
per-scenario wall-clock timeout, retrying crashed or hung attempts a
bounded number of times, and reporting progress through a callback.
``workers=1`` runs everything inline in the calling process — the
debuggable path, and the serial baseline the speedup benchmark and the
determinism acceptance check compare against (results are identical by
construction because :func:`~repro.fleet.worker.run_scenario` is a pure
function of ``(spec, seed)``).

Wall-clock reads in this module are unavoidable and deliberate: the
runner's job *is* to watch real time (timeouts, elapsed, speedup).  None
of it feeds the simulations — workers build their worlds purely from
``(spec, seed)`` — so fleet scorecards stay bit-identical across worker
counts.  ``detlint-allow.txt`` carries the DET001 exemptions.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fleet.spec import ScenarioSpec, SweepSpec
from repro.fleet.worker import ScenarioResult, run_scenario

# How often the dispatch loop wakes to check timeouts (seconds).
_POLL_S = 0.05


@dataclass(frozen=True, slots=True)
class FleetProgress:
    """One progress callback payload."""

    kind: str                   # "submit" | "result" | "retry" | "failed"
    scenario: str
    seed: int
    completed: int              # jobs finished (ok or permanently failed)
    total: int
    attempt: int                # 1-based attempt number for this job
    error: str = ""


@dataclass(frozen=True, slots=True)
class JobFailure:
    """A job that exhausted its attempts."""

    scenario: str
    seed: int
    attempts: int
    error: str


@dataclass
class FleetRunOutcome:
    """What one sweep execution produced."""

    results: list[ScenarioResult] = field(default_factory=list)
    failures: list[JobFailure] = field(default_factory=list)
    workers: int = 1
    jobs_total: int = 0
    retries: int = 0
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff every job produced a result."""
        return not self.failures and len(self.results) == self.jobs_total


ProgressCallback = Callable[[FleetProgress], None]
Task = Callable[[ScenarioSpec, int], ScenarioResult]


class FleetRunner:
    """Runs sweep jobs across a bounded pool of worker processes.

    ``max_retries`` bounds *re*-attempts per job: a job is tried at most
    ``1 + max_retries`` times before landing in ``failures``.  A hung
    worker (scenario exceeding its ``timeout_s``) forces a pool rebuild —
    ProcessPoolExecutor cannot kill a single worker — so sibling in-flight
    jobs are resubmitted without being charged an attempt.

    ``task`` is injectable for tests; it must be picklable by reference
    (a module-level function) when ``workers > 1``.
    """

    def __init__(self, *, workers: int = 1,
                 max_retries: int = 1,
                 default_timeout_s: Optional[float] = None,
                 progress: Optional[ProgressCallback] = None,
                 task: Task = run_scenario):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.workers = workers
        self.max_retries = max_retries
        self.default_timeout_s = default_timeout_s
        self.progress = progress
        self.task = task

    # -- public ---------------------------------------------------------------

    def run(self, sweep: SweepSpec) -> FleetRunOutcome:
        """Execute every job of the sweep; never raises for job failures."""
        jobs = sweep.jobs()
        outcome = FleetRunOutcome(workers=self.workers,
                                  jobs_total=len(jobs))
        start = time.monotonic()  # detlint: disable=DET001 runner wall-clock accounting
        if self.workers == 1:
            self._run_inline(jobs, outcome)
        else:
            self._run_pool(jobs, outcome)
        outcome.wall_s = time.monotonic() - start  # detlint: disable=DET001 runner wall-clock accounting
        return outcome

    # -- helpers ---------------------------------------------------------------

    def _emit(self, kind: str, spec: ScenarioSpec, seed: int, *,
              completed: int, total: int, attempt: int,
              error: str = "") -> None:
        if self.progress is not None:
            self.progress(FleetProgress(
                kind=kind, scenario=spec.name, seed=seed,
                completed=completed, total=total, attempt=attempt,
                error=error))

    def _timeout_for(self, spec: ScenarioSpec) -> Optional[float]:
        return (spec.timeout_s if spec.timeout_s is not None
                else self.default_timeout_s)

    # -- inline (workers=1) ----------------------------------------------------

    def _run_inline(self, jobs: list[tuple[ScenarioSpec, int]],
                    outcome: FleetRunOutcome) -> None:
        total = len(jobs)
        completed = 0
        for spec, seed in jobs:
            attempts = 0
            while True:
                attempts += 1
                self._emit("submit", spec, seed, completed=completed,
                           total=total, attempt=attempts)
                try:
                    result = self.task(spec, seed)
                except Exception as exc:  # noqa: BLE001 — jobs may fail arbitrarily
                    if attempts <= self.max_retries:
                        outcome.retries += 1
                        self._emit("retry", spec, seed, completed=completed,
                                   total=total, attempt=attempts,
                                   error=repr(exc))
                        continue
                    completed += 1
                    outcome.failures.append(JobFailure(
                        scenario=spec.name, seed=seed, attempts=attempts,
                        error=repr(exc)))
                    self._emit("failed", spec, seed, completed=completed,
                               total=total, attempt=attempts,
                               error=repr(exc))
                    break
                completed += 1
                outcome.results.append(result)
                self._emit("result", spec, seed, completed=completed,
                           total=total, attempt=attempts)
                break

    # -- pooled (workers>1) ----------------------------------------------------

    def _run_pool(self, jobs: list[tuple[ScenarioSpec, int]],
                  outcome: FleetRunOutcome) -> None:
        total = len(jobs)
        completed = 0
        attempts = [0] * len(jobs)
        queue = deque(range(len(jobs)))
        executor = ProcessPoolExecutor(max_workers=self.workers)
        inflight: dict[Future, tuple[int, float]] = {}  # -> (job, started)

        def fail(index: int, error: str) -> None:
            nonlocal completed
            spec, seed = jobs[index]
            completed += 1
            outcome.failures.append(JobFailure(
                scenario=spec.name, seed=seed,
                attempts=attempts[index], error=error))
            self._emit("failed", spec, seed, completed=completed,
                       total=total, attempt=attempts[index], error=error)

        def retry_or_fail(index: int, error: str) -> None:
            # attempts[index] was charged at submit time.
            if attempts[index] <= self.max_retries:
                spec, seed = jobs[index]
                outcome.retries += 1
                self._emit("retry", spec, seed, completed=completed,
                           total=total, attempt=attempts[index],
                           error=error)
                queue.append(index)
            else:
                fail(index, error)

        def rebuild_pool() -> None:
            nonlocal executor
            executor.shutdown(wait=False, cancel_futures=True)
            # Innocent in-flight jobs go back to the queue uncharged.
            for future, (index, _) in list(inflight.items()):
                attempts[index] -= 1
                queue.append(index)
            inflight.clear()
            executor = ProcessPoolExecutor(max_workers=self.workers)

        try:
            while queue or inflight:
                while queue and len(inflight) < self.workers:
                    index = queue.popleft()
                    spec, seed = jobs[index]
                    attempts[index] += 1
                    self._emit("submit", spec, seed, completed=completed,
                               total=total, attempt=attempts[index])
                    future = executor.submit(self.task, spec, seed)
                    inflight[future] = (index, time.monotonic())  # detlint: disable=DET001 timeout accounting

                done, _ = wait(list(inflight), timeout=_POLL_S,
                               return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    index, _ = inflight.pop(future)
                    spec, seed = jobs[index]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # A worker died hard; every sibling future is
                        # poisoned too.  Charge this job, rebuild, move on.
                        pool_broken = True
                        retry_or_fail(index, "worker process crashed "
                                             "(BrokenProcessPool)")
                        break
                    except Exception as exc:  # noqa: BLE001 — worker raised
                        retry_or_fail(index, repr(exc))
                        continue
                    completed += 1
                    outcome.results.append(result)
                    self._emit("result", spec, seed, completed=completed,
                               total=total, attempt=attempts[index])
                if pool_broken:
                    rebuild_pool()
                    continue

                # Hung-worker sweep: any in-flight job over its budget?
                now = time.monotonic()  # detlint: disable=DET001 timeout accounting
                hung = [(future, index) for future, (index, started)
                        in inflight.items()
                        if (budget := self._timeout_for(jobs[index][0]))
                        is not None and now - started > budget]
                if hung:
                    for future, index in hung:
                        del inflight[future]
                        retry_or_fail(
                            index,
                            f"scenario exceeded its "
                            f"{self._timeout_for(jobs[index][0])}s timeout")
                    rebuild_pool()
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
