"""Built-in sweeps: the CLI's named entry points into the fleet.

Presets are ordinary :class:`~repro.fleet.spec.SweepSpec` builders — a
user wanting a custom parameter study writes the same dataclasses by
hand (see ``examples/seed_sweep.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.fleet.spec import FaultEvent, ScenarioSpec, SweepSpec
from repro.net.clos import ClosParams

TINY = ClosParams(pods=1, tors_per_pod=2, aggs_per_pod=2, spines=1,
                  hosts_per_tor=2)
SMALL = ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=3)


def smoke_sweep(seeds: Sequence[int] = (0, 1), *,
                replicates: int = 1) -> SweepSpec:
    """CI-sized: two tiny scenarios, ~40 simulated seconds each.

    One fault campaign per scenario — an RNIC going down and a corrupting
    cable — so detection recall, localisation, and time-to-detect are all
    exercised without the sweep taking more than a few wall seconds per
    job.
    """
    rnic_down = ScenarioSpec(
        name="smoke-rnic-down",
        topology=TINY,
        duration_s=40,
        campaign=(
            FaultEvent.make("rnic_down", "host0-rnic0",
                            start_s=8.0, end_s=30.0),
        ))
    corrupt = ScenarioSpec(
        name="smoke-link-corruption",
        topology=TINY,
        duration_s=40,
        campaign=(
            FaultEvent.make("link_corruption", "pod0-tor0", "pod0-agg0",
                            start_s=8.0, end_s=30.0, drop_prob=0.5),
        ))
    return SweepSpec(scenarios=(rnic_down, corrupt), seeds=tuple(seeds),
                     replicates=replicates)


def accuracy_sweep(seeds: Sequence[int] = (0, 1, 2), *,
                   episode_s: float = 45.0,
                   replicates: int = 1) -> SweepSpec:
    """Figure 6-flavoured: mixed fault episodes scored across seeds.

    One scenario whose campaign runs a switch episode, an RNIC episode,
    and a CPU-overload false-positive bait back to back on the downscaled
    evaluation fabric; sweeping it over seeds yields the cross-seed
    accuracy bands ``examples/seed_sweep.py`` plots.
    """
    gap = 25.0
    t0 = 30.0
    t1 = t0 + episode_s + gap
    t2 = t1 + episode_s + gap
    scenario = ScenarioSpec(
        name="fig06-episodes",
        topology=SMALL,
        duration_s=int(t2 + episode_s + gap),
        campaign=(
            FaultEvent.make("link_corruption", "pod0-tor0", "pod0-agg0",
                            start_s=t0, end_s=t0 + episode_s,
                            drop_prob=0.5),
            FaultEvent.make("rnic_flapping", "host1-rnic0",
                            start_s=t1, end_s=t1 + episode_s),
            FaultEvent.make("cpu_overload", "host4",
                            start_s=t2, end_s=t2 + episode_s, load=0.97),
        ))
    return SweepSpec(scenarios=(scenario,), seeds=tuple(seeds),
                     replicates=replicates)


def sharded_sweep(seeds: Sequence[int] = (0, 1), *,
                  replicates: int = 1) -> SweepSpec:
    """Scale-out path (DESIGN.md §11): per-pod shards + SLA sketches.

    The same link-corruption campaign runs unsharded/exact and with one
    Analyzer/Controller shard pair per pod over sketch-backed SLAs, so a
    merged scorecard puts the two deployments' detection and SLA numbers
    side by side.
    """
    topology = ClosParams(pods=4, tors_per_pod=2, aggs_per_pod=2,
                          spines=2, hosts_per_tor=2)
    campaign = (
        FaultEvent.make("link_corruption", "pod1-tor0", "pod1-agg0",
                        start_s=10.0, end_s=45.0, drop_prob=0.5),
    )
    unsharded = ScenarioSpec(
        name="podfault-unsharded",
        topology=topology, duration_s=60, campaign=campaign)
    sharded = ScenarioSpec(
        name="podfault-sharded",
        topology=topology, duration_s=60, campaign=campaign,
        shards=4, sla_sketch=True)
    return SweepSpec(scenarios=(unsharded, sharded), seeds=tuple(seeds),
                     replicates=replicates)


PRESETS = {
    "smoke": smoke_sweep,
    "accuracy": accuracy_sweep,
    "sharded": sharded_sweep,
}
