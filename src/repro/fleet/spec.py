"""Declarative scenario and sweep specifications.

A :class:`ScenarioSpec` is everything a fleet worker needs to reproduce
one simulation end to end — topology shape, fault campaign, control-plane
degradation, observability toggles, duration — as *plain frozen data*:
no callables, no cluster references, nothing that cannot cross a process
boundary or land in a JSON artifact.  The seed is deliberately **not**
part of the spec; a :class:`SweepSpec` pairs one or more specs with a
seed list, and every fleet job is a ``(spec, seed)`` pair.  That split is
what makes ``spec_digest`` the right merge key: results from different
seeds of the same spec aggregate into one scorecard row, and two runs of
the same ``(spec_digest, seed)`` pair must be bit-identical no matter
which worker executed them (the determinism contract, DESIGN.md §9).

Fault campaigns are tuples of :class:`FaultEvent` — a registry-keyed,
declarative form of :mod:`repro.net.faults` fault constructors plus an
activation window.  Events naming the same ``(kind, loci, params)``
identity are realised as **one** fault instance whose windows are
refcounted by :class:`~repro.net.faults.FaultManager`, so overlapping
windows on the same locus stay idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Optional, Union

from repro.net.clos import ClosParams
from repro.net.faults import (CpuOverload, Fault, HostDown, LinkCorruption,
                              LinkFailure, LinkOverload, PcieDowngrade,
                              PfcDeadlock, PfcHeadroomMisconfig,
                              RnicAcsMisconfig, RnicCorruption, RnicDown,
                              RnicFlapping, RnicGidIndexMissing,
                              RnicRoutingMisconfig, SwitchAclError,
                              SwitchPortFlapping)

if TYPE_CHECKING:
    from repro.cluster import Cluster

ParamValue = Union[int, float, str, bool]

# The declarative fault vocabulary: registry key -> constructor.  Every
# constructor takes (cluster, *loci, **params); loci are positional
# device/link-endpoint names, params are keyword knobs.
FAULT_KINDS: dict[str, type[Fault]] = {
    "switch_port_flapping": SwitchPortFlapping,
    "rnic_flapping": RnicFlapping,
    "link_corruption": LinkCorruption,
    "rnic_corruption": RnicCorruption,
    "rnic_down": RnicDown,
    "host_down": HostDown,
    "pfc_deadlock": PfcDeadlock,
    "rnic_routing_misconfig": RnicRoutingMisconfig,
    "rnic_gid_index_missing": RnicGidIndexMissing,
    "switch_acl_error": SwitchAclError,
    "pfc_headroom_misconfig": PfcHeadroomMisconfig,
    "link_overload": LinkOverload,
    "cpu_overload": CpuOverload,
    "pcie_downgrade": PcieDowngrade,
    "rnic_acs_misconfig": RnicAcsMisconfig,
    "link_failure": LinkFailure,
}


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One fault activation window in a campaign, as plain data.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so
    the event hashes, pickles, and digests stably; use :meth:`make` to
    build one from keyword arguments.
    """

    kind: str                           # FAULT_KINDS key
    loci: tuple[str, ...]               # positional constructor names
    start_s: float                      # window start, simulated seconds
    end_s: Optional[float] = None       # None = never cleared
    params: tuple[tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from: "
                f"{', '.join(sorted(FAULT_KINDS))}")
        if not self.loci:
            raise ValueError(f"fault event {self.kind!r} needs >= 1 locus")
        if self.start_s < 0:
            raise ValueError("start_s must be >= 0")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ValueError("end_s must follow start_s")
        if tuple(sorted(self.params)) != self.params:
            raise ValueError("params must be sorted (name, value) pairs; "
                             "build events with FaultEvent.make()")

    @classmethod
    def make(cls, kind: str, *loci: str, start_s: float,
             end_s: Optional[float] = None,
             **params: ParamValue) -> "FaultEvent":
        """Ergonomic constructor: keyword params, canonicalised order."""
        return cls(kind=kind, loci=tuple(loci), start_s=start_s,
                   end_s=end_s, params=tuple(sorted(params.items())))

    @property
    def identity(self) -> tuple[str, tuple[str, ...],
                                tuple[tuple[str, ParamValue], ...]]:
        """What makes two events the *same fault* (windows aside)."""
        return (self.kind, self.loci, self.params)

    def params_dict(self) -> dict[str, ParamValue]:
        """Params as keyword arguments for the fault constructor."""
        return dict(self.params)

    def build(self, cluster: "Cluster") -> Fault:
        """Realise the declarative event against a live cluster."""
        return FAULT_KINDS[self.kind](cluster, *self.loci,
                                      **self.params_dict())


def schedule_campaign(manager, cluster: "Cluster",
                      campaign) -> list[tuple[Fault,
                                              tuple[int, Optional[int]]]]:
    """Realise a declarative campaign onto the simulator.

    Shared by the fleet worker and the serve-mode fault injector.  Events
    sharing one identity (kind, loci, params) become one fault instance
    with several refcounted windows; the returned scoring window of that
    fault spans from its earliest start to its latest end (or ``None`` if
    any window is open-ended).  ``manager`` is a
    :class:`~repro.net.faults.FaultManager`; ``campaign`` an iterable of
    :class:`FaultEvent`.
    """
    from repro.sim.units import seconds
    built: dict[tuple, Fault] = {}
    windows: dict[tuple, list[tuple[int, Optional[int]]]] = {}
    for event in campaign:
        fault = built.get(event.identity)
        if fault is None:
            fault = event.build(cluster)
            built[event.identity] = fault
            windows[event.identity] = []
        start_ns = round(event.start_s * seconds(1))
        end_ns = (None if event.end_s is None
                  else round(event.end_s * seconds(1)))
        manager.schedule(fault, start_ns=start_ns, end_ns=end_ns)
        windows[event.identity].append((start_ns, end_ns))
    out = []
    for identity, fault in built.items():
        spans = windows[identity]
        start = min(s for s, _ in spans)
        ends = [e for _, e in spans]
        end = None if any(e is None for e in ends) else max(ends)
        out.append((fault, (start, end)))
    return out


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One simulation scenario, fully declarative and digest-stable.

    The control-plane knobs mirror
    :class:`~repro.core.config.RPingmeshConfig`; observability toggles
    mirror :class:`~repro.obs.Observability` (tracing defaults off — a
    fleet run does not need per-probe spans, and their volume would
    dominate result pickles).
    """

    name: str
    topology: ClosParams = field(default_factory=ClosParams)
    duration_s: int = 60
    campaign: tuple[FaultEvent, ...] = ()
    metrics: bool = True
    tracing: bool = False
    control_latency_us: int = 0
    control_jitter_us: int = 0
    control_loss_prob: float = 0.0
    # Control-plane scale-out (DESIGN.md §11): per-pod Analyzer/Controller
    # shard pairs, and the fixed-memory quantile sketch for SLA windows.
    shards: int = 1
    sla_sketch: bool = False
    # Run under the PoolSan pool-lifetime sanitizer (DESIGN.md §12).
    # The worker fails the job on any sanitizer finding.
    sanitize: bool = False
    # Diagnosis backends to deploy (repro.diagnosis, DESIGN.md §14).
    # Empty = the config default ("probe",), producing results identical
    # to a spec written before this field existed; name backends
    # explicitly ("probe", "int") to race them in a bake-off.
    backends: tuple[str, ...] = ()
    # Wall-clock budget one worker may spend on this scenario before the
    # FleetRunner counts the attempt as hung (None = no limit).
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.control_loss_prob < 1.0:
            raise ValueError("control_loss_prob must be in [0, 1)")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if len(set(self.backends)) != len(self.backends):
            raise ValueError(f"duplicate backends: {self.backends}")
        for event in self.campaign:
            if event.start_s >= self.duration_s:
                raise ValueError(
                    f"campaign event {event.kind!r} starts at "
                    f"{event.start_s}s, beyond the {self.duration_s}s run")

    @property
    def spec_digest(self) -> str:
        """Stable hex digest of the full spec (the merge key).

        ``timeout_s`` is excluded: it budgets *wall clock*, which must
        never influence what a scenario computes — two specs differing
        only in timeout produce identical simulations, so they must
        produce the same digest.  ``sanitize`` is excluded for the same
        reason: PoolSan only observes, and the sanitized run's replay
        digest is pinned byte-identical to the plain run's
        (tests/analysis/test_sanitize.py), so both runs are mergeable
        under one key.
        """
        from repro.analysis.runtime import structural_digest
        return structural_digest(replace(self, timeout_s=None,
                                         sanitize=False))

    @property
    def label(self) -> str:
        """Short human-readable identity: ``name@digest12``."""
        return f"{self.name}@{self.spec_digest[:12]}"


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """A sweep: scenarios x seeds (x replicates), the unit a fleet runs.

    ``replicates > 1`` schedules every ``(spec, seed)`` job that many
    times — redundant work whose only purpose is the determinism check:
    :func:`repro.fleet.merge.merge` verifies that duplicate jobs produced
    identical replay digests regardless of which worker ran them.
    """

    scenarios: tuple[ScenarioSpec, ...]
    seeds: tuple[int, ...]
    replicates: int = 1

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a sweep needs >= 1 scenario")
        if not self.seeds:
            raise ValueError("a sweep needs >= 1 seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("seeds must be unique (use replicates= for "
                             "the determinism cross-check)")
        if len({s.name for s in self.scenarios}) != len(self.scenarios):
            raise ValueError("scenario names must be unique within a sweep")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")

    def jobs(self) -> list[tuple[ScenarioSpec, int]]:
        """The work list, in deterministic submission order."""
        return [(spec, seed)
                for _ in range(self.replicates)
                for spec in self.scenarios
                for seed in self.seeds]

    @property
    def sweep_digest(self) -> str:
        """Stable digest over all scenario digests and seeds."""
        from repro.analysis.runtime import structural_digest
        return structural_digest({
            "scenarios": [s.spec_digest for s in self.scenarios],
            "seeds": list(self.seeds),
            "replicates": self.replicates,
        })


def spec_summary(spec: ScenarioSpec) -> dict[str, ParamValue]:
    """Compact scorecard-embeddable description of one scenario."""
    return {
        "name": spec.name,
        "rnics": spec.topology.total_rnics,
        "duration_s": spec.duration_s,
        "campaign_events": len(spec.campaign),
        "metrics": spec.metrics,
        "tracing": spec.tracing,
    }


def validate_campaign_loci(spec: ScenarioSpec,
                           cluster: "Cluster") -> None:
    """Fail fast if a campaign names devices the topology lacks.

    Workers call this before scheduling so a typo'd locus surfaces as a
    clear per-scenario failure instead of a mid-run KeyError.
    """
    known = set(cluster.topology.nodes) | set(cluster.hosts)
    for event in spec.campaign:
        if event.kind in ("cpu_overload", "host_down"):
            unknown = [n for n in event.loci if n not in cluster.hosts]
        else:
            unknown = [n for n in event.loci if n not in known]
        if unknown:
            raise ValueError(
                f"campaign event {event.kind!r} names unknown "
                f"loci {unknown} (topology has {len(known)} devices)")
