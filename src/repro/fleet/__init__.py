"""``repro.fleet`` — parallel scenario sweeps with deterministic merging.

The paper's results are fleet-scale (tens of thousands of RNICs, month
ledgers, cross-cluster SLAs); this reproduction gets its scale from
running *many* simulated clusters at once.  The fleet subsystem is that
substrate (DESIGN.md §9):

* :mod:`repro.fleet.spec` — declarative, picklable
  :class:`ScenarioSpec` / :class:`SweepSpec` with stable digests;
* :mod:`repro.fleet.worker` — :func:`run_scenario`, the pure
  ``(spec, seed) -> ScenarioResult`` unit of work;
* :mod:`repro.fleet.runner` — :class:`FleetRunner`, a process pool with
  per-scenario timeouts, bounded retries, and progress callbacks;
* :mod:`repro.fleet.merge` — :func:`merge`, the order-independent fold
  into a byte-stable :class:`FleetScorecard`;
* :mod:`repro.fleet.presets` — named sweeps for the ``fleet`` CLI.

Determinism contract: a sweep merged from any completion order, worker
count, or replication factor yields byte-identical scorecard JSON, and
duplicate ``(spec, seed)`` jobs must replay to identical digests — the
merge checks and reports both.
"""

from repro.fleet.merge import (DigestMismatch, FleetScorecard,
                               ScenarioScore, merge)
from repro.fleet.runner import (FleetProgress, FleetRunOutcome, FleetRunner,
                                JobFailure)
from repro.fleet.spec import (FAULT_KINDS, FaultEvent, ScenarioSpec,
                              SweepSpec, spec_summary)
from repro.fleet.worker import DetectionOutcome, ScenarioResult, run_scenario

__all__ = [
    "FAULT_KINDS", "FaultEvent", "ScenarioSpec", "SweepSpec",
    "spec_summary", "DetectionOutcome", "ScenarioResult", "run_scenario",
    "FleetRunner", "FleetRunOutcome", "FleetProgress", "JobFailure",
    "merge", "FleetScorecard", "ScenarioScore", "DigestMismatch",
]
