"""The fleet worker: one ``(spec, seed)`` job, end to end, in one process.

:func:`run_scenario` is the unit of fleet work.  It is a pure function of
its ``(ScenarioSpec, seed)`` arguments: it builds a fresh cluster and
deployment from the seed, schedules the declarative fault campaign
through the refcounting :class:`~repro.net.faults.FaultManager`, runs the
simulation, and condenses the outcome into a picklable
:class:`ScenarioResult` — replay digest, detection scoring against the
campaign's ground truth, SLA percentiles, and (optionally) the metrics
snapshot.  Everything in the result except ``wall_s`` is a deterministic
function of the inputs; ``wall_s`` is explicitly wall-clock bookkeeping
for the runner's progress/speedup accounting and is excluded from merge
scorecards and digests.

The module is import-light at worker start (ProcessPoolExecutor pickles
``run_scenario`` by reference), and the result deliberately contains no
live simulation objects: process boundaries and JSON artifacts both want
plain data.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.runtime import structural_digest, system_state
from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.records import Problem, ProblemCategory
from repro.core.system import RPingmesh
from repro.fleet.spec import (ScenarioSpec, schedule_campaign,
                              validate_campaign_loci)
from repro.net.faults import Fault, FaultManager, GroundTruth, LocusKind
from repro.obs import Observability
from repro.sim.units import MICROSECOND, seconds

# Verdicts may land one analysis window after a fault clears (uploads
# batch on 5 s boundaries, analysis on 20 s boundaries); detections
# inside this grace window still count toward the fault.
DETECTION_GRACE_NS = 25 * seconds(1)

# Analyzer categories that localise a *network* problem; everything else
# (host-down, noise classes, latency signals) is scored separately.
LOCATED_CATEGORIES = (ProblemCategory.RNIC_PROBLEM,
                      ProblemCategory.SWITCH_NETWORK_PROBLEM)
LATENCY_CATEGORIES = (ProblemCategory.HIGH_RTT,
                      ProblemCategory.HIGH_PROCESSING_DELAY)


@dataclass(frozen=True, slots=True)
class DetectionOutcome:
    """Ground truth vs Analyzer verdict for one campaign fault."""

    fault_id: str
    table2_row: int
    category: str               # ground-truth ProblemCategory value
    locus_kind: str             # rnic | switch | link | host
    locus: str
    start_ns: int
    end_ns: Optional[int]
    detected: bool
    localized: bool             # detected AND locus matches
    detected_at_ns: Optional[int]
    time_to_detect_ns: Optional[int]
    verdict_category: str       # first matching verdict ("" if none)
    verdict_locus: str


@dataclass(frozen=True, slots=True)
class BackendReport:
    """One diagnosis backend's scorecard for one scenario run.

    ``true_positives``/``false_positives`` score the backend's *own*
    verdicts against ground truth (window + expected category + locus);
    the cost fields come from :meth:`~repro.diagnosis.backend.
    DiagnosisBackend.cost` and feed the bake-off's overhead axis.
    """

    backend: str
    verdicts_total: int
    true_positives: int
    false_positives: int
    detections: tuple[DetectionOutcome, ...]
    probe_packets: int
    probe_bytes: int
    telemetry_bytes: int
    events_observed: int

    @property
    def faults_detected(self) -> int:
        return sum(1 for d in self.detections if d.detected)


@dataclass(frozen=True, slots=True)
class ScenarioResult:
    """Everything one fleet job reports back, as plain picklable data."""

    scenario: str
    spec_digest: str
    seed: int
    replay_digest: str
    sim_now_ns: int
    events_processed: int
    probes_total: int
    probes_ok: int
    detections: tuple[DetectionOutcome, ...]
    true_positives: int         # located problems matching an active fault
    false_positives: int        # located problems matching nothing injected
    problem_counts: dict[str, int] = field(default_factory=dict)
    sla: dict[str, float] = field(default_factory=dict)
    metrics: Optional[dict[str, float]] = None
    # Per-deployed-backend scorecards (repro.diagnosis); one entry per
    # name in the spec's effective backend set, in deployment order.
    backend_reports: tuple[BackendReport, ...] = ()
    wall_s: float = 0.0         # wall-clock spent; NOT part of any digest

    @property
    def faults_total(self) -> int:
        return len(self.detections)

    @property
    def faults_detected(self) -> int:
        return sum(1 for d in self.detections if d.detected)


def run_scenario(spec: ScenarioSpec, seed: int) -> ScenarioResult:
    """Execute one ``(spec, seed)`` job and condense it for merging."""
    start_wall = time.perf_counter()  # detlint: disable=DET001 wall_s bookkeeping

    cluster = Cluster.clos(spec.topology, seed=seed,
                           sanitize=spec.sanitize)
    validate_campaign_loci(spec, cluster)
    config = RPingmeshConfig(
        control_latency_ns=spec.control_latency_us * MICROSECOND,
        control_jitter_ns=spec.control_jitter_us * MICROSECOND,
        control_loss_prob=spec.control_loss_prob,
        shards=spec.shards,
        sla_sketch=spec.sla_sketch)
    if spec.backends:
        config.backends = spec.backends
    obs = Observability(metrics=spec.metrics, tracing=spec.tracing)
    system = RPingmesh(cluster, config, obs=obs)

    manager = FaultManager(cluster)
    faults = schedule_campaign(manager, cluster, spec.campaign)
    system.run(seconds(spec.duration_s))

    if cluster.sanitizer is not None:
        poolsan = cluster.sanitizer.report()
        if poolsan:
            raise RuntimeError(
                f"poolsan: {len(poolsan)} finding(s) in "
                f"{spec.label} seed={seed}:\n"
                + "\n".join(f.render() for f in poolsan))

    detections = tuple(
        _score_fault(fault, window, system.analyzer.problems)
        for fault, window in faults)
    true_pos, false_pos = _score_precision(faults, system.analyzer.problems)
    metrics = dict(system.metrics_snapshot()) if spec.metrics else None
    backend_reports = tuple(
        _score_backend(name, system.backends[name], faults)
        for name in system.config.backends)

    return ScenarioResult(
        scenario=spec.name,
        spec_digest=spec.spec_digest,
        seed=seed,
        replay_digest=structural_digest(system_state(system)),
        sim_now_ns=cluster.sim.now,
        events_processed=cluster.sim.events_processed,
        probes_total=sum(r.cluster.probes_total
                         for r in system.analyzer.sla.reports),
        probes_ok=sum(r.cluster.probes_ok
                      for r in system.analyzer.sla.reports),
        detections=detections,
        true_positives=true_pos,
        false_positives=false_pos,
        problem_counts={
            category.value: count for category, count in
            sorted(system.analyzer.category_counts.items(),
                   key=lambda kv: kv[0].value)},
        sla=_sla_summary(system),
        metrics=metrics,
        backend_reports=backend_reports,
        wall_s=time.perf_counter() - start_wall,  # detlint: disable=DET001 wall_s bookkeeping
    )


# -- scoring -------------------------------------------------------------------

def _expected_categories(truth: GroundTruth) -> tuple[ProblemCategory, ...]:
    """Which Analyzer verdicts count as detecting this fault.

    Follows the Table 2 phenomenology (§7.1): failures (rows 1-9) produce
    timeouts attributed to an RNIC, a switch, or a dead host; bottlenecks
    (rows 10-14) produce latency signals.  Host-down faults are detected
    by upload silence, not timeout attribution.
    """
    if truth.locus_kind == LocusKind.HOST and truth.table2_row == 4:
        return (ProblemCategory.HOST_DOWN,)
    if truth.table2_row >= 10:
        return LATENCY_CATEGORIES
    return LOCATED_CATEGORIES + (ProblemCategory.HOST_DOWN,)


def _locus_matches(truth: GroundTruth, problem_locus: str) -> bool:
    """Does a verdict locus name the injected component (either way for
    cables, adjacent-link tolerant for switches)?"""
    locus = truth.locus
    if truth.locus_kind in (LocusKind.RNIC, LocusKind.HOST):
        return problem_locus == locus
    if truth.locus_kind == LocusKind.LINK:
        for sep in ("<->", "->"):
            if sep in locus:
                a, b = locus.split(sep, 1)
                return problem_locus in (f"{a}->{b}", f"{b}->{a}", a, b)
        return problem_locus == locus
    # Switch: the verdict may name the switch or one of its links.
    if problem_locus == locus:
        return True
    return locus in problem_locus.split("->")


def _score_fault(fault: Fault, window: tuple[int, Optional[int]],
                 problems: list[Problem]) -> DetectionOutcome:
    truth = fault.ground_truth
    start_ns, end_ns = window
    horizon = (None if end_ns is None else end_ns + DETECTION_GRACE_NS)
    expected = _expected_categories(truth)
    hits = [p for p in problems
            if p.category in expected
            and p.detected_at_ns >= start_ns
            and (horizon is None or p.detected_at_ns <= horizon)
            and (p.category == ProblemCategory.HOST_DOWN
                 or p.category in LATENCY_CATEGORIES
                 or _locus_matches(truth, p.locus))]
    localized = [p for p in hits if _locus_matches(truth, p.locus)]
    first = min(hits, key=lambda p: p.detected_at_ns) if hits else None
    return DetectionOutcome(
        fault_id=truth.fault_id,
        table2_row=truth.table2_row,
        category=truth.category.value,
        locus_kind=truth.locus_kind.value,
        locus=truth.locus,
        start_ns=start_ns,
        end_ns=end_ns,
        detected=bool(hits),
        localized=bool(localized),
        detected_at_ns=first.detected_at_ns if first else None,
        time_to_detect_ns=(first.detected_at_ns - start_ns
                           if first else None),
        verdict_category=first.category.value if first else "",
        verdict_locus=first.locus if first else "")


def _score_precision(faults: list[tuple[Fault, tuple[int, Optional[int]]]],
                     problems: list[Problem]) -> tuple[int, int]:
    """Located verdicts explained by an injected fault vs spurious ones."""
    true_pos = 0
    false_pos = 0
    for problem in problems:
        if problem.category not in LOCATED_CATEGORIES:
            continue
        explained = False
        for fault, (start_ns, end_ns) in faults:
            horizon = (None if end_ns is None
                       else end_ns + DETECTION_GRACE_NS)
            if problem.detected_at_ns < start_ns:
                continue
            if horizon is not None and problem.detected_at_ns > horizon:
                continue
            if _locus_matches(fault.ground_truth, problem.locus):
                explained = True
                break
        if explained:
            true_pos += 1
        else:
            false_pos += 1
    return true_pos, false_pos


def _score_backend(name: str, backend,
                   faults: list[tuple[Fault, tuple[int, Optional[int]]]]
                   ) -> BackendReport:
    """Score one backend's own verdict stream against ground truth.

    Reuses the Analyzer scoring machinery by converting each
    :class:`~repro.diagnosis.backend.BackendVerdict` to a Problem record.
    Unlike the system-level precision (located categories only), a
    backend verdict counts as a true positive only when an injected fault
    explains its *full* claim — window, expected category, and locus —
    so a backend that merely says "something, somewhere" scores lower
    than one naming the exact directed link.
    """
    problems = [v.as_problem() for v in backend.verdicts()]
    detections = tuple(_score_fault(fault, window, problems)
                       for fault, window in faults)
    cost = backend.cost()
    true_pos = 0
    false_pos = 0
    for problem in problems:
        explained = False
        for fault, (start_ns, end_ns) in faults:
            horizon = (None if end_ns is None
                       else end_ns + DETECTION_GRACE_NS)
            if problem.detected_at_ns < start_ns:
                continue
            if horizon is not None and problem.detected_at_ns > horizon:
                continue
            if (problem.category in _expected_categories(fault.ground_truth)
                    and _locus_matches(fault.ground_truth, problem.locus)):
                explained = True
                break
        if explained:
            true_pos += 1
        else:
            false_pos += 1
    return BackendReport(
        backend=name,
        verdicts_total=len(problems),
        true_positives=true_pos,
        false_positives=false_pos,
        detections=detections,
        probe_packets=cost.probe_packets,
        probe_bytes=cost.probe_bytes,
        telemetry_bytes=cost.telemetry_bytes,
        events_observed=cost.events_observed)


def _sla_summary(system: RPingmesh) -> dict[str, float]:
    """Per-run SLA representatives: median across analysis windows."""
    out: dict[str, float] = {}
    history = system.analyzer.sla
    for metric in ("rtt_p50", "rtt_p99", "processing_p50",
                   "processing_p99", "drop_rate"):
        values = [v for _, v in history.series("cluster", metric)]
        if values:
            out[f"{metric}_ns" if "rate" not in metric else metric] = \
                statistics.median(sorted(values))
    return out
