"""Deterministic, order-independent aggregation of fleet results.

:func:`merge` folds any iterable of
:class:`~repro.fleet.worker.ScenarioResult` into a
:class:`FleetScorecard`, keyed by ``(spec_digest, seed)``.  The contract
(DESIGN.md §9):

* **Order independence** — results are canonically sorted before any
  arithmetic, so worker completion order (and therefore worker count,
  scheduling jitter, retries) cannot change a single byte of the merged
  scorecard.  ``merge(shuffled(results)).to_json() ==
  merge(results).to_json()``.
* **Determinism check** — when the same ``(spec_digest, seed)`` job ran
  more than once (sweep ``replicates``, or a retried attempt landing
  twice), all copies must carry the same replay digest; mismatches are
  reported per pair and flip ``determinism.consistent`` to false.
* **No wall clock** — ``wall_s`` and anything else measured on the host
  clock is excluded; the scorecard is a pure function of the simulation
  outcomes it merges.

Duplicates beyond the first (in canonical order) contribute to the
determinism check only, never to the aggregates, so replicated sweeps
score identically to unreplicated ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.fleet.worker import ScenarioResult
from repro.obs.metrics import merge_snapshots

# Metric families worth totalling fleet-wide in the scorecard; everything
# else stays in the per-run snapshots.
_METRIC_TOTAL_PREFIXES = (
    "repro_sim_events_processed_total",
    "repro_fabric_packets_injected_total",
    "repro_fabric_packets_delivered_total",
    "repro_fabric_drops_total",
    "repro_controlplane_messages_sent_total",
    "repro_controlplane_messages_dropped_total",
    "repro_analyzer_ingest_accepted_total",
    "repro_analyzer_ingest_dropped_total",
)


@dataclass(frozen=True, slots=True)
class DigestMismatch:
    """Two runs of one job disagreed — the fleet's determinism alarm."""

    spec_digest: str
    scenario: str
    seed: int
    digests: tuple[str, ...]


@dataclass
class ScenarioScore:
    """Cross-seed aggregate for one spec_digest."""

    scenario: str
    spec_digest: str
    seeds: tuple[int, ...]
    faults_total: int
    faults_detected: int
    faults_localized: int
    true_positives: int
    false_positives: int
    probes_total: int
    probes_ok: int
    events_processed: int
    time_to_detect_ms: Optional[dict[str, float]]  # min/mean/max (None: n/a)
    sla_bands: dict[str, dict[str, float]]         # metric -> min/mean/max
    problem_counts: dict[str, int]
    replay_digests: dict[str, str]                 # str(seed) -> digest
    # Per-diagnosis-backend scorecards summed across seeds (empty when the
    # spec deployed only the implicit default set).
    backends: dict[str, dict] = field(default_factory=dict)

    @property
    def recall(self) -> float:
        return (self.faults_detected / self.faults_total
                if self.faults_total else 1.0)

    @property
    def precision(self) -> float:
        located = self.true_positives + self.false_positives
        return self.true_positives / located if located else 1.0

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "spec_digest": self.spec_digest,
            "seeds": list(self.seeds),
            "detection": {
                "faults_total": self.faults_total,
                "faults_detected": self.faults_detected,
                "faults_localized": self.faults_localized,
                "recall": round(self.recall, 6),
                "true_positives": self.true_positives,
                "false_positives": self.false_positives,
                "precision": round(self.precision, 6),
                "time_to_detect_ms": self.time_to_detect_ms,
            },
            "probes": {"total": self.probes_total, "ok": self.probes_ok},
            "events_processed": self.events_processed,
            "sla_bands": self.sla_bands,
            "problem_counts": self.problem_counts,
            "replay_digests": self.replay_digests,
            "backends": self.backends,
        }


@dataclass
class FleetScorecard:
    """The merged verdict of one sweep."""

    runs_merged: int
    unique_jobs: int
    scenarios: dict[str, ScenarioScore] = field(default_factory=dict)
    determinism: dict = field(default_factory=dict)
    metrics_totals: dict[str, float] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """True iff every duplicated job replayed bit-identically."""
        return bool(self.determinism.get("consistent", True))

    def as_dict(self) -> dict:
        return {
            "sweep": {
                "runs_merged": self.runs_merged,
                "unique_jobs": self.unique_jobs,
                "scenarios": len(self.scenarios),
            },
            "determinism": self.determinism,
            "scenarios": {label: score.as_dict()
                          for label, score in sorted(self.scenarios.items())},
            "metrics_totals": self.metrics_totals,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed layout, byte-stable."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)


def _band(values: list[float], *, digits: int = 3) -> dict[str, float]:
    """min/mean/max of a non-empty list, computed in sorted order."""
    ordered = sorted(values)
    return {
        "min": round(ordered[0], digits),
        "mean": round(sum(ordered) / len(ordered), digits),
        "max": round(ordered[-1], digits),
    }


def _merge_backend_reports(runs: list[ScenarioResult]) -> dict[str, dict]:
    """Cross-seed sums per diagnosis backend (repro.diagnosis bake-off).

    Pure sums plus a sorted time-to-detect band, so the result is
    independent of run order like every other scorecard field.
    """
    sums: dict[str, dict] = {}
    ttds: dict[str, list[float]] = {}
    for run in runs:
        for report in run.backend_reports:
            agg = sums.setdefault(report.backend, {
                "verdicts_total": 0, "true_positives": 0,
                "false_positives": 0, "faults_total": 0,
                "faults_detected": 0, "probe_packets": 0,
                "probe_bytes": 0, "telemetry_bytes": 0,
                "events_observed": 0})
            agg["verdicts_total"] += report.verdicts_total
            agg["true_positives"] += report.true_positives
            agg["false_positives"] += report.false_positives
            agg["faults_total"] += len(report.detections)
            agg["faults_detected"] += report.faults_detected
            agg["probe_packets"] += report.probe_packets
            agg["probe_bytes"] += report.probe_bytes
            agg["telemetry_bytes"] += report.telemetry_bytes
            agg["events_observed"] += report.events_observed
            ttds.setdefault(report.backend, []).extend(
                d.time_to_detect_ns / 1e6 for d in report.detections
                if d.time_to_detect_ns is not None)
    merged = {}
    for name in sorted(sums):
        agg = sums[name]
        agg["time_to_detect_ms"] = _band(ttds[name]) if ttds[name] else None
        merged[name] = agg
    return merged


def merge(results: Iterable[ScenarioResult]) -> FleetScorecard:
    """Fold results into a scorecard, independent of input order."""
    ordered = sorted(results, key=lambda r: (r.spec_digest, r.scenario,
                                             r.seed, r.replay_digest))
    # -- determinism check over every (spec_digest, seed) group ---------------
    groups: dict[tuple[str, int], list[ScenarioResult]] = {}
    for result in ordered:
        groups.setdefault((result.spec_digest, result.seed),
                          []).append(result)
    mismatches: list[DigestMismatch] = []
    duplicated = 0
    for (digest, seed), runs in sorted(groups.items()):
        if len(runs) > 1:
            duplicated += 1
            digests = tuple(sorted({r.replay_digest for r in runs}))
            if len(digests) > 1:
                mismatches.append(DigestMismatch(
                    spec_digest=digest, scenario=runs[0].scenario,
                    seed=seed, digests=digests))
    determinism = {
        "checked_jobs": len(groups),
        "duplicated_jobs": duplicated,
        "consistent": not mismatches,
        "mismatches": [
            {"scenario": m.scenario, "seed": m.seed,
             "spec_digest": m.spec_digest, "digests": list(m.digests)}
            for m in mismatches],
    }

    # -- aggregate one representative per job ---------------------------------
    unique = [runs[0] for _, runs in sorted(groups.items())]
    by_spec: dict[str, list[ScenarioResult]] = {}
    for result in unique:
        by_spec.setdefault(result.spec_digest, []).append(result)

    scorecard = FleetScorecard(runs_merged=len(ordered),
                               unique_jobs=len(unique),
                               determinism=determinism)
    snapshots = []
    for digest, runs in sorted(by_spec.items()):
        runs = sorted(runs, key=lambda r: r.seed)
        label = f"{runs[0].scenario}@{digest[:12]}"
        ttd = [d.time_to_detect_ns / 1e6
               for r in runs for d in r.detections
               if d.time_to_detect_ns is not None]
        sla_bands = {}
        for metric in sorted({k for r in runs for k in r.sla}):
            values = [r.sla[metric] for r in runs if metric in r.sla]
            sla_bands[metric] = _band(values)
        problem_counts: dict[str, int] = {}
        for run in runs:
            for category, count in sorted(run.problem_counts.items()):
                problem_counts[category] = \
                    problem_counts.get(category, 0) + count
        backends = _merge_backend_reports(runs)
        scorecard.scenarios[label] = ScenarioScore(
            scenario=runs[0].scenario,
            spec_digest=digest,
            seeds=tuple(r.seed for r in runs),
            faults_total=sum(r.faults_total for r in runs),
            faults_detected=sum(r.faults_detected for r in runs),
            faults_localized=sum(
                sum(1 for d in r.detections if d.localized) for r in runs),
            true_positives=sum(r.true_positives for r in runs),
            false_positives=sum(r.false_positives for r in runs),
            probes_total=sum(r.probes_total for r in runs),
            probes_ok=sum(r.probes_ok for r in runs),
            events_processed=sum(r.events_processed for r in runs),
            time_to_detect_ms=_band(ttd) if ttd else None,
            sla_bands=sla_bands,
            problem_counts=problem_counts,
            replay_digests={str(r.seed): r.replay_digest for r in runs},
            backends=backends,
        )
        snapshots.extend(r.metrics for r in runs if r.metrics is not None)

    if snapshots:
        totals = merge_snapshots(snapshots)
        scorecard.metrics_totals = {
            series: value for series, value in sorted(totals.items())
            if series.split("{")[0] in _METRIC_TOTAL_PREFIXES}
    return scorecard


def scorecard_from_dict(data: Mapping) -> dict:
    """Validate + normalise a scorecard artifact loaded from JSON.

    The CLI's ``fleet report`` renders from JSON; this keeps the reader
    honest about the artifact shape without needing the dataclasses.
    """
    for key in ("sweep", "determinism", "scenarios"):
        if key not in data:
            raise ValueError(f"not a fleet scorecard: missing {key!r}")
    return dict(data)
