"""Cluster assembly: one object wiring simulator, fabric, and hosts.

A :class:`Cluster` is the unit every scenario starts from — the simulated
analogue of "a RoCE cluster serving one service team" (§3.2).  It owns the
simulator, the topology plan (Clos or rail-optimized), the fabric, and the
hosts with their RNICs, and provides the lookups the R-Pingmesh modules and
the workloads need.
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

from repro.host.host import Host, build_host_with_rnics
from repro.host.rnic import Rnic
from repro.net.addresses import IPAllocator
from repro.net.clos import ClosFabricPlan, ClosParams, build_clos
from repro.net.fabric import Fabric
from repro.net.rail import RailFabricPlan, RailParams, build_rail
from repro.net.topology import Topology
from repro.net.traceroute import TracerouteService
from repro.obs import Observability
from repro.sim.engine import EVENT_POOL_DEFAULT, Simulator
from repro.sim.rng import RngRegistry

Plan = Union[ClosFabricPlan, RailFabricPlan]


class Cluster:
    """A fully wired simulated RoCE cluster."""

    def __init__(self, sim: Simulator, rngs: RngRegistry, plan: Plan,
                 *, pooling: bool = True, sanitize: bool = False):
        self.sim = sim
        self.rngs = rngs
        self.plan = plan
        self.topology: Topology = plan.topology
        # Opt-in pool lifetime sanitizer (PoolSan, DESIGN.md §12): one
        # instance shared by the event, packet, transit, and CQE pools.
        # Imported lazily — repro.analysis.runtime imports this module.
        self.sanitizer = None
        if sanitize:
            from repro.analysis.sanitize import PoolSanitizer
            self.sanitizer = PoolSanitizer()
            sim.set_sanitizer(self.sanitizer)
        self.fabric = Fabric(sim, self.topology, rngs.stream("fabric"),
                             pooling=pooling, sanitizer=self.sanitizer)
        self.traceroute = TracerouteService(self.fabric)
        self.hosts: dict[str, Host] = {}
        self._rnics: dict[str, Rnic] = {}
        self._rnic_host: dict[str, str] = {}
        # The simulated TCP management network, set by RPingmesh when it
        # deploys (None until then).  Fault drills reach it through here.
        self.management = None
        # Observability switchboard (repro.obs).  Default: everything off
        # and nothing wired — RPingmesh's obs= knob replaces this via
        # Observability.install().
        self.obs = Observability()
        # Cluster-wide probe sequence numbers.  One counter per cluster
        # (not per agent class) so seqs are unique across agents — the
        # analyzer keys per-seq state on them — yet replaying the same
        # scenario in the same process starts from 1 again.
        self.probe_seqs = itertools.count(1)

        ips = IPAllocator()
        for host_name, rnic_names in sorted(plan.host_rnics.items()):
            ip_of = {rnic_name: ips.allocate() for rnic_name in rnic_names}
            host = build_host_with_rnics(
                host_name, sim, rngs, self.fabric, rnic_names, ip_of)
            self.hosts[host_name] = host
            for rnic in host.rnics:
                self._rnics[rnic.name] = rnic
                self._rnic_host[rnic.name] = host_name

    # -- construction ---------------------------------------------------------

    @classmethod
    def clos(cls, params: Optional[ClosParams] = None, *,
             seed: int = 0, check_invariants: bool = False,
             pooling: bool = True, sanitize: bool = False) -> "Cluster":
        """Build a 3-tier Clos cluster.

        ``pooling=False`` disables every free-list fast path (events,
        packets, CQEs) — behaviour must be byte-identical either way,
        which the pooling-equivalence tests assert via replay digests.
        ``sanitize=True`` wraps every pool in the PoolSan lifetime
        sanitizer (same byte-identical contract, same tests).
        """
        sim = Simulator(seed=seed, check_invariants=check_invariants,
                        event_pool_size=EVENT_POOL_DEFAULT if pooling else 0)
        rngs = RngRegistry(seed)
        return cls(sim, rngs, build_clos(params or ClosParams()),
                   pooling=pooling, sanitize=sanitize)

    @classmethod
    def rail(cls, params: Optional[RailParams] = None, *,
             seed: int = 0, check_invariants: bool = False,
             pooling: bool = True, sanitize: bool = False) -> "Cluster":
        """Build a two-tier rail-optimized cluster (§7.4)."""
        sim = Simulator(seed=seed, check_invariants=check_invariants,
                        event_pool_size=EVENT_POOL_DEFAULT if pooling else 0)
        rngs = RngRegistry(seed)
        return cls(sim, rngs, build_rail(params or RailParams()),
                   pooling=pooling, sanitize=sanitize)

    # -- lookups ----------------------------------------------------------------

    def rnic(self, name: str) -> Rnic:
        """RNIC by topology host-port name."""
        try:
            return self._rnics[name]
        except KeyError:
            raise KeyError(f"unknown RNIC: {name}") from None

    def all_rnics(self) -> list[Rnic]:
        """All RNICs, in stable name order."""
        return [self._rnics[n] for n in sorted(self._rnics)]

    def host_of_rnic(self, rnic_name: str) -> Host:
        """The host owning an RNIC."""
        return self.hosts[self._rnic_host[rnic_name]]

    def rnic_names(self) -> list[str]:
        """All RNIC names, sorted."""
        return sorted(self._rnics)

    def tor_of(self, rnic_name: str) -> str:
        """The ToR/rail switch the RNIC hangs off."""
        return self.topology.tor_of(rnic_name)

    def rnics_under_tor(self, tor: str) -> list[str]:
        """RNIC names under one ToR/rail switch."""
        return sorted(n for n in self._rnics
                      if self.topology.tor_of(n) == tor)

    def tors(self) -> list[str]:
        """All ToR-tier switch names."""
        from repro.net.topology import Tier
        return self.topology.switches(Tier.TOR)

    @property
    def size(self) -> int:
        """Number of RNICs in the cluster."""
        return len(self._rnics)
