"""The serve loop: wall-clock pacing around a deterministic session.

This is the only serve module that touches the host clock, and the
pacing never feeds back into sim state: a tick always advances the sim
by exactly ``spec.tick_ns`` regardless of how long the wall waited, so
a paced run, an unpaced run, and a checkpoint-restored run all replay
byte-identically (tests/serve/test_checkpoint.py pins this).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.serve.http import ServeHTTPServer
from repro.serve.session import ServeSession


def run_serve(session: ServeSession, server: Optional[ServeHTTPServer],
              *, pace_s: float = 1.0, max_ticks: Optional[int] = None,
              render: Optional[Callable[[ServeSession], None]] = None
              ) -> int:
    """Drive ticks until ``max_ticks`` or a ``/shutdown`` request.

    Returns the number of ticks executed in this loop (not counting any
    ticks a restored session brought along).  ``render``, when given, is
    called after every tick with the session (the TUI frame hook).
    """
    executed = 0
    lock = server.lock if server is not None else None
    while max_ticks is None or executed < max_ticks:
        if server is not None and server.shutdown_requested.is_set():
            break
        if lock is not None:
            with lock:
                session.tick()
        else:
            session.tick()
        executed += 1
        if render is not None:
            render(session)
        if pace_s > 0:
            # Wall-clock pacing only; sim time is already fixed per tick.
            deadline = time.monotonic() + pace_s  # detlint: disable=DET001 pacing is wall-clock output, never sim input
            while time.monotonic() < deadline:  # detlint: disable=DET001 pacing is wall-clock output, never sim input
                if (server is not None
                        and server.shutdown_requested.is_set()):
                    return executed
                time.sleep(min(0.05, pace_s))
    return executed
