"""Declarative threshold alerting over metric snapshots.

An :class:`AlertRule` watches one series of the flat
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` mapping and compares
it against a threshold each tick.  Transitions carry hysteresis in both
directions: a rule must breach for ``for_ticks`` consecutive ticks to
fire and clear for ``keep_ticks`` consecutive ticks to resolve, so a
value oscillating across the threshold inside the hysteresis window
produces exactly one firing/resolved pair (pinned by
``tests/serve/test_alerts.py``).

The engine is deterministic — state is a pure function of the snapshot
sequence — and exports itself back into the registry as
``repro_alerts_firing{alert=...}`` gauges and
``repro_alerts_transitions_total{alert=...,state=...}`` counters, plus an
append-only JSONL event log for operators.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry

Number = Union[int, float]

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True, slots=True)
class AlertRule:
    """One threshold rule: ``series OP threshold`` with hysteresis.

    ``for_ticks`` is how many consecutive breaching ticks arm the firing
    transition; ``keep_ticks`` how many consecutive clear ticks release
    it.  A series absent from the snapshot counts as clear.
    """

    name: str
    series: str
    op: str
    threshold: float
    for_ticks: int = 1
    keep_ticks: int = 1

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(f"alert name must be non-empty and "
                             f"whitespace-free: {self.name!r}")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}; choose "
                             f"from: {', '.join(_OPS)}")
        if self.for_ticks < 1 or self.keep_ticks < 1:
            raise ValueError("for_ticks and keep_ticks must be >= 1")

    @classmethod
    def parse(cls, text: str) -> "AlertRule":
        """Parse the rule grammar (DESIGN.md §13):

        ``NAME: SERIES OP THRESHOLD [for N] [keep M]``

        e.g. ``slow_rtt: repro_analyzer_problems_total > 5 for 2 keep 3``.
        The series token may include a ``{label="v"}`` selector as long
        as it contains no whitespace.
        """
        head, _, rest = text.partition(":")
        name = head.strip()
        tokens = rest.split()
        if len(tokens) < 3:
            raise ValueError(f"malformed alert rule: {text!r} "
                             f"(want 'NAME: SERIES OP THRESHOLD "
                             f"[for N] [keep M]')")
        series, op, threshold = tokens[0], tokens[1], float(tokens[2])
        kwargs = {}
        extra = tokens[3:]
        while extra:
            word = extra.pop(0)
            if word == "for":
                kwargs["for_ticks"] = int(extra.pop(0))
            elif word == "keep":
                kwargs["keep_ticks"] = int(extra.pop(0))
            else:
                raise ValueError(f"unexpected token {word!r} in alert "
                                 f"rule {text!r}")
        return cls(name=name, series=series, op=op, threshold=threshold,
                   **kwargs)

    def describe(self) -> str:
        """The canonical grammar string for this rule."""
        return (f"{self.name}: {self.series} {self.op} "
                f"{self.threshold:g} for {self.for_ticks} "
                f"keep {self.keep_ticks}")


@dataclass(slots=True)
class _RuleState:
    firing: bool = False
    breach_streak: int = 0
    clear_streak: int = 0
    fired_count: int = 0
    last_value: Optional[Number] = None


@dataclass(slots=True)
class AlertEvent:
    """One firing/resolved transition, as plain data."""

    tick: int
    sim_now_ns: int
    alert: str
    state: str                       # "firing" | "resolved"
    value: Optional[Number]
    threshold: float
    rule: str = field(default="")    # canonical grammar string

    def as_dict(self) -> dict:
        return {"tick": self.tick, "sim_now_ns": self.sim_now_ns,
                "alert": self.alert, "state": self.state,
                "value": self.value, "threshold": self.threshold,
                "rule": self.rule}


class AlertEngine:
    """Evaluates a rule set against successive metric snapshots."""

    def __init__(self, rules: Sequence[AlertRule], *,
                 registry: Optional[MetricsRegistry] = None,
                 log_path: Optional[str] = None):
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert names: {sorted(names)}")
        self.rules = tuple(rules)
        self.registry = registry
        self.log_path = log_path
        self._states = {rule.name: _RuleState() for rule in self.rules}
        self.events: list[AlertEvent] = []
        self._export()  # gauges render 0 before any transition

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, snapshot: Mapping[str, Number], *, tick: int,
                 sim_now_ns: int) -> list[AlertEvent]:
        """Feed one tick's snapshot; returns transitions it caused."""
        transitions: list[AlertEvent] = []
        for rule in self.rules:
            state = self._states[rule.name]
            value = snapshot.get(rule.series)
            state.last_value = value
            breached = (value is not None
                        and _OPS[rule.op](value, rule.threshold))
            if breached:
                state.breach_streak += 1
                state.clear_streak = 0
            else:
                state.clear_streak += 1
                state.breach_streak = 0
            if (not state.firing
                    and state.breach_streak >= rule.for_ticks):
                state.firing = True
                state.fired_count += 1
                transitions.append(self._transition(
                    rule, "firing", value, tick, sim_now_ns))
            elif (state.firing
                    and state.clear_streak >= rule.keep_ticks):
                state.firing = False
                transitions.append(self._transition(
                    rule, "resolved", value, tick, sim_now_ns))
        self._export()
        return transitions

    def _transition(self, rule: AlertRule, new_state: str,
                    value: Optional[Number], tick: int,
                    sim_now_ns: int) -> AlertEvent:
        event = AlertEvent(tick=tick, sim_now_ns=sim_now_ns,
                           alert=rule.name, state=new_state, value=value,
                           threshold=rule.threshold,
                           rule=rule.describe())
        self.events.append(event)
        if self.log_path is not None:
            with open(self.log_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(event.as_dict(), sort_keys=True))
                fh.write("\n")
        if self.registry is not None:
            self.registry.counter(
                "repro_alerts_transitions_total",
                help="alert state transitions, by alert and new state",
                alert=rule.name, state=new_state).inc()
        return event

    def _export(self) -> None:
        if self.registry is None:
            return
        for rule in self.rules:
            self.registry.gauge(
                "repro_alerts_firing",
                help="1 while the alert is firing, else 0",
                alert=rule.name).set(
                    1 if self._states[rule.name].firing else 0)

    # -- read surface -------------------------------------------------------

    def firing(self) -> list[str]:
        """Names of currently firing alerts, sorted."""
        return sorted(name for name, state in self._states.items()
                      if state.firing)

    def state_of(self, name: str) -> dict:
        """One rule's full state (for ``/alerts`` and the TUI)."""
        state = self._states[name]
        return {"alert": name, "firing": state.firing,
                "breach_streak": state.breach_streak,
                "clear_streak": state.clear_streak,
                "fired_count": state.fired_count,
                "last_value": state.last_value}

    def as_dict(self) -> dict:
        """JSON shape of the whole engine (the ``/alerts`` endpoint)."""
        return {
            "rules": [rule.describe() for rule in self.rules],
            "firing": self.firing(),
            "states": [self.state_of(rule.name) for rule in self.rules],
            "events": [event.as_dict() for event in self.events],
        }
