"""Service mode: a long-running, checkpointable monitor (DESIGN.md §13).

``repro serve`` drives the simulator in wall-clock-paced *ticks* and
exposes the observability substrate over HTTP — Prometheus ``/metrics``,
``/health`` + ``/ready`` probes, on-demand ``/checkpoint`` — with a
declarative :class:`~repro.serve.alerts.AlertEngine` and a live TUI on
top.  The layering keeps determinism intact:

* :class:`~repro.serve.session.ServeSession` is pure simulation state —
  no threads, no wall clock, fully picklable.  One tick advances the sim
  by a fixed ``tick_ns``, runs metric collectors, and evaluates alerts;
  everything it computes is a function of the spec and the tick count.
* :mod:`repro.serve.checkpoint` serialises a session to a versioned file
  and restores it — in another process — such that the restored run's
  replay digest is byte-identical to an uninterrupted one.
* :mod:`repro.serve.http` and the CLI runner own every wall-clock and
  thread concern (pacing, scrapes, shutdown), strictly outside sim state.
"""

from repro.serve.alerts import AlertEngine, AlertRule
from repro.serve.checkpoint import (CheckpointError, load_checkpoint,
                                    read_metadata, save_checkpoint)
from repro.serve.session import ServeSession, ServeSpec, parse_fault_spec

__all__ = [
    "AlertEngine", "AlertRule", "CheckpointError", "ServeSession",
    "ServeSpec", "load_checkpoint", "parse_fault_spec", "read_metadata",
    "save_checkpoint",
]
