"""Versioned checkpoint files for serve-mode sessions.

A checkpoint is the *whole world*: the calendar queue with every pending
event, the pooled-object free lists, every RNG stream's position, and
all tracker/sketch/shard state — captured by pickling the live
:class:`~repro.serve.session.ServeSession` object graph.  The substrate
keeps that graph picklable on purpose (scheduled callbacks are bound
methods or ``functools.partial``, never lambdas), and the restore
contract is byte-exactness: a restored session run to tick T produces
the same ``replay_digest`` as an uninterrupted run to tick T
(``tests/serve/test_checkpoint.py`` pins this across processes).

File layout (all before the payload is human-inspectable)::

    REPRO-SERVE-CKPT v1\\n
    {json metadata, sorted keys}\\n
    <zlib-compressed pickle payload>

The metadata carries enough identity (spec, seed, shards, tick, config
digest) to reject a restore against the wrong code or world without
unpickling anything.

Also a tiny CLI, used by tests to prove *cross-process* restore::

    python -m repro.serve.checkpoint info   <path>
    python -m repro.serve.checkpoint digest <path> [--run-ticks N]
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import zlib
from typing import Optional

from repro.serve.session import ServeSession

MAGIC = b"REPRO-SERVE-CKPT v1\n"
FORMAT = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or restored."""


def _spec_metadata(spec) -> dict:
    """The spec as JSON-safe plain data (FaultEvents/rules as strings)."""
    out = {}
    for fld in dataclasses.fields(spec):
        value = getattr(spec, fld.name)
        if fld.name == "campaign":
            value = [f"{e.kind}@{e.start_s}-{e.end_s}:{','.join(e.loci)}"
                     for e in value]
        elif fld.name == "rules":
            value = [rule.describe() for rule in value]
        out[fld.name] = value
    return out


def save_checkpoint(session: ServeSession, path: str) -> dict:
    """Write the session to ``path`` atomically; returns the metadata."""
    if session.cluster.sanitizer is not None:
        # PoolSan keys its live/freed tables by id(); object identities
        # do not survive a process boundary, so a restored sanitizer
        # would misattribute every pooled object.  Refuse loudly.
        raise CheckpointError(
            "cannot checkpoint a sanitized session (PoolSan tables are "
            "id()-keyed and do not survive restore); rerun without "
            "sanitize")
    metadata = {
        "format": FORMAT,
        "tick": session.ticks,
        "sim_now_ns": session.cluster.sim.now,
        "seed": session.spec.seed,
        "shards": session.spec.shards,
        "config_digest": session.config_digest,
        "spec": _spec_metadata(session.spec),
    }
    payload = zlib.compress(pickle.dumps(session, pickle.HIGHEST_PROTOCOL))
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(json.dumps(metadata, sort_keys=True).encode())
        fh.write(b"\n")
        fh.write(payload)
    os.replace(tmp, path)
    return metadata


def _split(path: str) -> tuple[dict, bytes]:
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointError(
                f"{path}: not a serve checkpoint (bad magic {magic!r})")
        meta_line = fh.readline()
        payload = fh.read()
    try:
        metadata = json.loads(meta_line)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: corrupt metadata") from exc
    if metadata.get("format") != FORMAT:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format "
            f"{metadata.get('format')!r} (this build reads {FORMAT})")
    return metadata, payload


def read_metadata(path: str) -> dict:
    """The checkpoint's JSON header, without unpickling the payload."""
    metadata, _ = _split(path)
    return metadata


def load_checkpoint(path: str) -> ServeSession:
    """Restore a session; the caller owns re-attaching HTTP/TUI layers."""
    metadata, payload = _split(path)
    try:
        session = pickle.loads(zlib.decompress(payload))
    except Exception as exc:
        raise CheckpointError(f"{path}: payload restore failed: "
                              f"{exc}") from exc
    if not isinstance(session, ServeSession):
        raise CheckpointError(
            f"{path}: payload is {type(session).__name__}, "
            f"not ServeSession")
    if session.ticks != metadata.get("tick"):
        raise CheckpointError(
            f"{path}: metadata tick {metadata.get('tick')} disagrees "
            f"with payload tick {session.ticks}")
    return session


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.serve.checkpoint`` — inspect or replay a file."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve.checkpoint",
        description="Inspect or deterministically replay a serve "
                    "checkpoint.")
    sub = parser.add_subparsers(dest="command", required=True)
    p_info = sub.add_parser("info", help="print the JSON metadata")
    p_info.add_argument("path")
    p_digest = sub.add_parser(
        "digest",
        help="restore, optionally run N more ticks, print replay digest")
    p_digest.add_argument("path")
    p_digest.add_argument("--run-ticks", type=int, default=0)
    args = parser.parse_args(argv)

    if args.command == "info":
        print(json.dumps(read_metadata(args.path), indent=2,
                         sort_keys=True))
        return 0
    session = load_checkpoint(args.path)
    for _ in range(args.run_ticks):
        session.tick()
    print(session.replay_digest())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
