"""The serve-mode HTTP surface.

A :class:`ServeHTTPServer` wraps one
:class:`~repro.serve.session.ServeSession` behind a threading HTTP
server.  Handlers and the tick loop share one lock, so scrapes and
checkpoints always observe the world *between* ticks — never mid-event —
and nothing the HTTP side does can perturb sim state ordering.

Endpoints (DESIGN.md §13 has the full table)::

    GET  /metrics     Prometheus text exposition
    GET  /health      200 while the process is up
    GET  /ready       200 once pinglists pushed + first window closed
    GET  /status      JSON session summary
    GET  /alerts      JSON alert rules, states, and event log
    POST /checkpoint  snapshot to the configured path
    POST /inject      schedule a fault (requires allow_inject)
    POST /shutdown    request a clean exit of the serve loop
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.serve.checkpoint import CheckpointError, save_checkpoint
from repro.serve.session import ServeSession, parse_fault_spec

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ServeHTTPServer:
    """Session + lock + endpoints; owns the listener thread."""

    def __init__(self, session: ServeSession, *, host: str = "127.0.0.1",
                 port: int = 0, checkpoint_path: Optional[str] = None,
                 allow_inject: bool = False):
        self.session = session
        self.lock = threading.Lock()
        self.checkpoint_path = checkpoint_path
        self.allow_inject = allow_inject
        self.shutdown_requested = threading.Event()
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args) -> None:
                pass  # the TUI owns stdout; drop per-request chatter

            def _respond(self, code: int, body: bytes,
                         content_type: str = "application/json") -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _json(self, code: int, payload: dict) -> None:
                self._respond(code, (json.dumps(payload, sort_keys=True)
                                     + "\n").encode())

            def do_GET(self) -> None:
                outer._handle_get(self)

            def do_POST(self) -> None:
                outer._handle_post(self)

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve-http",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    # -- endpoint dispatch --------------------------------------------------

    def _handle_get(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            with self.lock:
                body = self.session.render_metrics().encode()
            handler._respond(200, body, PROMETHEUS_CONTENT_TYPE)
        elif path == "/health":
            handler._json(200 if self.session.healthy() else 500,
                          {"healthy": self.session.healthy(),
                           "tick": self.session.ticks})
        elif path == "/ready":
            with self.lock:
                ready = self.session.ready()
            handler._json(200 if ready else 503, {"ready": ready})
        elif path == "/status":
            with self.lock:
                handler._json(200, self.session.status())
        elif path == "/alerts":
            with self.lock:
                handler._json(200, self.session.alerts.as_dict())
        else:
            handler._json(404, {"error": f"no such endpoint: {path}"})

    def _handle_post(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        length = int(handler.headers.get("Content-Length") or 0)
        body = handler.rfile.read(length).decode() if length else ""
        if path == "/checkpoint":
            self._do_checkpoint(handler)
        elif path == "/inject":
            self._do_inject(handler, body)
        elif path == "/shutdown":
            self.shutdown_requested.set()
            handler._json(200, {"shutdown": "requested",
                                "tick": self.session.ticks})
        else:
            handler._json(404, {"error": f"no such endpoint: {path}"})

    def _do_checkpoint(self, handler) -> None:
        if self.checkpoint_path is None:
            handler._json(409, {"error": "no checkpoint path configured "
                                         "(--checkpoint)"})
            return
        try:
            with self.lock:
                metadata = save_checkpoint(self.session,
                                           self.checkpoint_path)
        except CheckpointError as exc:
            handler._json(500, {"error": str(exc)})
            return
        handler._json(200, {"path": self.checkpoint_path,
                            "tick": metadata["tick"],
                            "sim_now_ns": metadata["sim_now_ns"],
                            "config_digest": metadata["config_digest"]})

    def _do_inject(self, handler, body: str) -> None:
        if not self.allow_inject:
            handler._json(403, {"error": "fault injection disabled "
                                         "(start with --allow-inject)"})
            return
        try:
            payload = json.loads(body) if body else {}
            event = parse_fault_spec(payload["fault"])
            with self.lock:
                scheduled = self.session.inject(event)
        except (KeyError, TypeError, ValueError,
                json.JSONDecodeError) as exc:
            handler._json(400, {"error": f"bad inject request: {exc}"})
            return
        handler._json(200, {"injected": scheduled.kind,
                            "loci": list(scheduled.loci),
                            "start_s": scheduled.start_s,
                            "end_s": scheduled.end_s})
