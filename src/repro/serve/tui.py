"""The live serve-mode dashboard: sparklines, alerts, pool/shard gauges.

Pure rendering over a :class:`~repro.serve.session.ServeSession` —
no terminal control here beyond what the CLI runner adds (it clears the
screen between frames).  Reuses the :mod:`repro.core.dashboard`
renderers so the serve view and the batch ``monitor`` view agree.
"""

from __future__ import annotations

from typing import Optional

from repro.core.dashboard import render_analyzer_state, render_sparkline
from repro.serve.session import ServeSession

_SPARK_WIDTH = 48


def _spark_row(label: str, values: list, *,
               fmt: str = "{:.1f}", scale: float = 1.0,
               unit: str = "") -> str:
    spark = render_sparkline(values, width=_SPARK_WIDTH)
    present = [v for v in values if v is not None]
    last = fmt.format(present[-1] * scale) + unit if present else "-"
    return f"  {label:<12} {spark:<{_SPARK_WIDTH}} {last:>10}"


def render_serve(session: ServeSession, *,
                 url: Optional[str] = None) -> str:
    """One full dashboard frame."""
    status = session.status()
    lines = ["=" * 72]
    head = (f"repro serve  tick={status['tick']} "
            f"sim={status['sim_now_ns'] / 1e9:.0f}s "
            f"seed={status['seed']} shards={status['shards']} "
            f"{'READY' if status['ready'] else 'warming up'}")
    if url:
        head += f"  {url}"
    lines.append(head)
    history = list(session.history)
    if history:
        lines.append("-" * 72)
        rtt50 = [s.rtt_p50_ns for s in history]
        rtt99 = [s.rtt_p99_ns for s in history]
        ok = [s.ok_fraction for s in history]
        rate = _probe_rates(history, session.spec.tick_ns)
        lines.append(_spark_row("rtt p50", rtt50, scale=1e-3, unit="us"))
        lines.append(_spark_row("rtt p99", rtt99, scale=1e-3, unit="us"))
        lines.append(_spark_row("sla ok", ok, fmt="{:.4f}"))
        lines.append(_spark_row("probes/s", rate, fmt="{:.0f}"))
    firing = session.alerts.firing()
    lines.append("-" * 72)
    if firing:
        lines.append(f"ALERTS FIRING ({len(firing)}):")
        for name in firing:
            state = session.alerts.state_of(name)
            lines.append(f"  !! {name:<28} value={state['last_value']} "
                         f"fired_count={state['fired_count']}")
    else:
        lines.append("alerts: none firing "
                     f"({len(session.alerts.rules)} rules armed)")
    lines.append("-" * 72)
    lines.append(_gauges_line(session))
    lines.append(render_analyzer_state(session.system.analyzer,
                                       problem_limit=5))
    return "\n".join(lines)


def _probe_rates(history: list, tick_ns: int) -> list:
    """Per-tick probes/second deltas from cumulative sends."""
    rates: list[Optional[float]] = []
    for prev, cur in zip([None] + history[:-1], history):
        if prev is None:
            rates.append(None)
        else:
            rates.append((cur.probes_sent - prev.probes_sent)
                         / (tick_ns / 1e9))
    return rates


def _gauges_line(session: ServeSession) -> str:
    """Pool and shard gauges from the metric registry, one line."""
    snapshot = session.system.obs.metrics.snapshot()
    parts = []
    pool = snapshot.get("repro_sim_event_pool_free")
    if pool is not None:
        parts.append(f"event_pool_free={pool}")
    packet_pool = snapshot.get("repro_fabric_packet_pool_free")
    if packet_pool is not None:
        parts.append(f"packet_pool_free={packet_pool}")
    for key, value in snapshot.items():
        if key.startswith("repro_analyzer_shard_ingest_backlog"):
            shard = key[key.find("{"):] if "{" in key else ""
            parts.append(f"backlog{shard}={value}")
    parts.append(f"uptime_ticks={snapshot.get('repro_uptime_ticks', 0)}")
    return "  gauges: " + " ".join(parts)
