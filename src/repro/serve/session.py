"""The serve-mode session: pure, picklable simulation state.

A :class:`ServeSession` owns one deployed cluster and advances it in
fixed ``tick_ns`` steps.  It is deliberately free of threads, sockets,
and wall clocks — those live in :mod:`repro.serve.http` and the CLI
runner — so a session can be pickled mid-run (see
:mod:`repro.serve.checkpoint`) and the restored copy replays
byte-identically to an uninterrupted one.

The spec doubles as the checkpoint identity: its structural digest is
stamped into ``repro_build_info`` and into checkpoint metadata, so a
scrape (or a checkpoint file) always says which world produced it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro import __version__
from repro.analysis.runtime import structural_digest, system_state
from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.system import RPingmesh
from repro.fleet.spec import FaultEvent, schedule_campaign
from repro.net.clos import ClosParams
from repro.net.faults import FaultManager
from repro.obs import Observability
from repro.serve.alerts import AlertEngine, AlertRule
from repro.sim.units import MICROSECOND, SECOND

# How many per-tick samples the TUI sparklines keep.
HISTORY_TICKS = 120

DEFAULT_ALERT_RULES: tuple[str, ...] = (
    "analyzer_problems: repro_analyzer_problems_total > 0 for 1 keep 2",
    "ingest_drops: repro_analyzer_ingest_dropped_total > 0 for 1 keep 2",
)


@dataclass(frozen=True, slots=True)
class ServeSpec:
    """Everything that defines a serve-mode world, as plain data."""

    seed: int = 0
    pods: int = 1
    tors_per_pod: int = 2
    aggs_per_pod: int = 2
    spines: int = 1
    hosts_per_tor: int = 2
    shards: int = 1
    sla_sketch: Optional[bool] = None      # None: sketch iff shards > 1
    tick_ns: int = SECOND
    control_latency_ns: int = 200 * MICROSECOND
    control_jitter_ns: int = 50 * MICROSECOND
    control_loss_prob: float = 0.02
    check_invariants: bool = False
    campaign: tuple[FaultEvent, ...] = ()
    rules: tuple[AlertRule, ...] = field(
        default_factory=lambda: tuple(
            AlertRule.parse(text) for text in DEFAULT_ALERT_RULES))

    def __post_init__(self) -> None:
        if self.tick_ns <= 0:
            raise ValueError("tick_ns must be positive")

    def digest(self) -> str:
        """Structural digest of the spec — the world's identity."""
        return structural_digest(self)


def parse_fault_spec(text: str) -> FaultEvent:
    """Parse the CLI fault grammar into a :class:`FaultEvent`.

    ``KIND@START[-END]:LOCUS[,LOCUS...][:key=value,...]`` with times in
    simulated seconds, e.g. ``link_corruption@5-25:pod0-tor0,pod0-agg0:
    drop_prob=0.3``.
    """
    parts = text.split(":")
    if len(parts) < 2:
        raise ValueError(f"malformed fault spec {text!r} (want "
                         f"'KIND@START[-END]:LOCUS,...[:k=v,...]')")
    head, loci_part = parts[0], parts[1]
    kind, _, window = head.partition("@")
    if not window:
        raise ValueError(f"fault spec {text!r} needs '@START[-END]'")
    start_text, _, end_text = window.partition("-")
    start_s = float(start_text)
    end_s = float(end_text) if end_text else None
    params: dict[str, object] = {}
    for pair in ",".join(parts[2:]).split(",") if len(parts) > 2 else ():
        key, _, raw = pair.partition("=")
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key] = value
    return FaultEvent.make(kind, *loci_part.split(","), start_s=start_s,
                           end_s=end_s, **params)


@dataclass(slots=True)
class TickSample:
    """One tick's dashboard history point."""

    tick: int
    sim_now_ns: int
    probes_sent: int                 # cumulative, fleet-wide
    problems: int
    rtt_p50_ns: Optional[float]
    rtt_p99_ns: Optional[float]
    ok_fraction: Optional[float]
    alerts_firing: int


class ServeSession:
    """One serve-mode world plus its tick/alert/history state."""

    def __init__(self, spec: ServeSpec):
        self.spec = spec
        self.ticks = 0
        params = ClosParams(pods=spec.pods, tors_per_pod=spec.tors_per_pod,
                            aggs_per_pod=spec.aggs_per_pod,
                            spines=spec.spines,
                            hosts_per_tor=spec.hosts_per_tor)
        self.cluster = Cluster.clos(params, seed=spec.seed,
                                    check_invariants=spec.check_invariants)
        sketch = (spec.sla_sketch if spec.sla_sketch is not None
                  else spec.shards > 1)
        config = RPingmeshConfig(
            control_latency_ns=spec.control_latency_ns,
            control_jitter_ns=spec.control_jitter_ns,
            control_loss_prob=spec.control_loss_prob,
            shards=spec.shards,
            sla_sketch=sketch)
        obs = Observability(metrics=True)
        self.system = RPingmesh(self.cluster, config, obs=obs)
        self.faults = FaultManager(self.cluster)
        schedule_campaign(self.faults, self.cluster, spec.campaign)
        self.alerts = AlertEngine(spec.rules, registry=obs.metrics)
        self.history: deque[TickSample] = deque(maxlen=HISTORY_TICKS)
        self.system.start()
        self._export_identity()

    # -- identity -----------------------------------------------------------

    def _export_identity(self) -> None:
        """Self-describing scrape: build info + uptime (DESIGN.md §13)."""
        metrics = self.system.obs.metrics
        metrics.gauge(
            "repro_build_info",
            help="constant 1; labels identify the serving world",
            version=__version__,
            config_digest=self.spec.digest()[:12],
            shards=str(self.spec.shards)).set(1)
        metrics.counter(
            "repro_uptime_ticks",
            help="serve-mode ticks completed (survives checkpoints)"
        ).value = self.ticks

    @property
    def config_digest(self) -> str:
        return self.spec.digest()

    # -- the tick loop body -------------------------------------------------

    def tick(self) -> list:
        """Advance one tick; returns the alert transitions it caused."""
        self.cluster.sim.run_for(self.spec.tick_ns)
        self.ticks += 1
        metrics = self.system.obs.metrics
        metrics.counter("repro_uptime_ticks").value = self.ticks
        snapshot = metrics.snapshot()
        transitions = self.alerts.evaluate(
            snapshot, tick=self.ticks, sim_now_ns=self.cluster.sim.now)
        self.history.append(self._sample())
        return transitions

    def _sample(self) -> TickSample:
        report = self.system.analyzer.sla.latest()
        rtt_p50 = rtt_p99 = ok_fraction = None
        if report is not None:
            window = report.cluster
            rtt = window.rtt_percentiles() or {}
            rtt_p50 = rtt.get("p50")
            rtt_p99 = rtt.get("p99")
            if window.probes_total:
                ok_fraction = window.probes_ok / window.probes_total
        probes_sent = sum(agent.probes_sent
                          for agent in self.system.agents.values())
        return TickSample(
            tick=self.ticks, sim_now_ns=self.cluster.sim.now,
            probes_sent=probes_sent,
            problems=len(self.system.analyzer.problems),
            rtt_p50_ns=rtt_p50, rtt_p99_ns=rtt_p99,
            ok_fraction=ok_fraction,
            alerts_firing=len(self.alerts.firing()))

    # -- probes -------------------------------------------------------------

    def healthy(self) -> bool:
        """Liveness: the session object is intact (always true in-proc)."""
        return True

    def ready(self) -> bool:
        """Readiness: pinglists pushed AND a first analysis window closed."""
        return (self.system.controller.pinglist_pushes > 0
                and len(self.system.analyzer.windows) >= 1)

    # -- runtime fault injection -------------------------------------------

    def inject(self, event: FaultEvent) -> FaultEvent:
        """Schedule a fault event relative to *now* (the ``/inject`` path).

        The event's ``start_s``/``end_s`` are offsets from the current
        simulated time, so ``start_s=0`` activates on the next tick.
        """
        now_s = self.cluster.sim.now / SECOND
        shifted = FaultEvent.make(
            event.kind, *event.loci,
            start_s=now_s + event.start_s,
            end_s=None if event.end_s is None else now_s + event.end_s,
            **event.params_dict())
        schedule_campaign(self.faults, self.cluster, (shifted,))
        return shifted

    # -- read surface -------------------------------------------------------

    def render_metrics(self) -> str:
        """The ``/metrics`` payload."""
        return self.system.obs.metrics.render_prometheus() + "\n"

    def replay_digest(self) -> str:
        """Digest of the full sim state (the determinism contract)."""
        return structural_digest(system_state(self.system))

    def status(self) -> dict:
        """The ``/status`` payload."""
        return {
            "version": __version__,
            "config_digest": self.config_digest,
            "seed": self.spec.seed,
            "shards": self.spec.shards,
            "tick": self.ticks,
            "sim_now_ns": self.cluster.sim.now,
            "tick_ns": self.spec.tick_ns,
            "ready": self.ready(),
            "alerts_firing": self.alerts.firing(),
            "problems": len(self.system.analyzer.problems),
            "windows_analyzed": len(self.system.analyzer.windows),
            "faults_registered": len(self.faults.faults),
        }
