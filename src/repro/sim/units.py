"""Time and rate units for the simulation.

All simulation time is an integer number of nanoseconds.  Integer time keeps
event ordering exact and runs reproducible: there is no floating-point drift
when a scenario schedules millions of probe events at fixed intervals.

The helpers here convert human-friendly quantities into the canonical
representations used throughout the package:

* time     -> int nanoseconds
* bit rate -> float bits per nanosecond (``Gbps(100)`` etc.)
"""

from __future__ import annotations

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE
DAY = 24 * HOUR


def nanoseconds(value: float) -> int:
    """Convert a value in nanoseconds to canonical integer time."""
    return round(value)


def microseconds(value: float) -> int:
    """Convert a value in microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert a value in milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert a value in seconds to integer nanoseconds."""
    return round(value * SECOND)


def minutes(value: float) -> int:
    """Convert a value in minutes to integer nanoseconds."""
    return round(value * MINUTE)


def hours(value: float) -> int:
    """Convert a value in hours to integer nanoseconds."""
    return round(value * HOUR)


def to_seconds(time_ns: int) -> float:
    """Express integer-nanosecond time as float seconds (for reporting)."""
    return time_ns / SECOND


def to_microseconds(time_ns: int) -> float:
    """Express integer-nanosecond time as float microseconds."""
    return time_ns / MICROSECOND


def to_milliseconds(time_ns: int) -> float:
    """Express integer-nanosecond time as float milliseconds."""
    return time_ns / MILLISECOND


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per nanosecond."""
    return value  # 1 Gbps == 1e9 b/s == 1 bit/ns

def bits_per_ns(rate_gbps: float) -> float:
    """Alias of :func:`gbps`, named for the unit it returns."""
    return rate_gbps


def serialization_delay_ns(size_bytes: int, rate_gbps: float) -> int:
    """Time to put ``size_bytes`` on a wire running at ``rate_gbps``."""
    if rate_gbps <= 0:
        raise ValueError(f"rate must be positive, got {rate_gbps}")
    return max(1, round(size_bytes * 8 / rate_gbps))
