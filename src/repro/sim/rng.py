"""Named, reproducible random-number streams.

Every stochastic component draws from its own named stream derived from the
scenario seed, so adding a new component (or reordering calls inside one)
never perturbs the randomness seen by others.  This is what makes scenario
results stable as the codebase evolves.

Each stream also counts its draws (:attr:`RngStream.draws`) and exposes a
:meth:`RngStream.state_digest`; the replay harness in
:mod:`repro.analysis.runtime` folds these into the structural digest so a
replay that consumed randomness differently cannot compare equal.
"""

from __future__ import annotations

import hashlib
import random  # detlint: disable=DET002 random.Random is the substrate every RngStream wraps
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named wrapper over :class:`random.Random`.

    Thin on purpose: it exposes exactly the draw shapes the simulation uses
    so call sites read as domain operations, and it carries its name for
    debugging reproducibility issues.
    """

    def __init__(self, root_seed: int, name: str):
        self.name = name
        self.draws = 0
        self._rng = random.Random(derive_seed(root_seed, name))

    def state_digest(self) -> str:
        """Short hex digest over name, draw count, and generator state."""
        payload = f"{self.name}:{self.draws}:{self._rng.getstate()!r}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        self.draws += 1
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        self.draws += 1
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        self.draws += 1
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli draw (degenerate probabilities consume no randomness)."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        self.draws += 1
        return self._rng.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        self.draws += 1
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items (or all of them if fewer exist)."""
        k = min(k, len(items))
        self.draws += 1
        return self._rng.sample(items, k)

    def shuffled(self, items: Iterable[T]) -> list[T]:
        """Return a new shuffled list of ``items``."""
        out = list(items)
        self.draws += 1
        self._rng.shuffle(out)
        return out

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place."""
        self.draws += 1
        self._rng.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Exponential draw with the given rate (1/mean)."""
        self.draws += 1
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Gaussian draw."""
        self.draws += 1
        return self._rng.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal draw (of underlying normal mu/sigma)."""
        self.draws += 1
        return self._rng.lognormvariate(mu, sigma)


class RngRegistry:
    """Factory handing out one :class:`RngStream` per component name."""

    def __init__(self, root_seed: int):
        self.root_seed = root_seed
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Get (or create) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = RngStream(self.root_seed, name)
        return self._streams[name]

    def draw_counts(self) -> dict[str, int]:
        """Draws per stream, in sorted name order."""
        return {name: self._streams[name].draws
                for name in sorted(self._streams)}

    def digest(self) -> str:
        """Hex digest over every stream's state digest, name-sorted."""
        payload = ";".join(
            f"{name}={self._streams[name].state_digest()}"
            for name in sorted(self._streams))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]
