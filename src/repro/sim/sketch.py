"""Mergeable quantile sketch with deterministic, byte-stable merges.

:class:`QuantileSketch` replaces unbounded per-window sample retention in
the sharded control plane (DESIGN.md §11).  It is a DDSketch-style
log-bucketed histogram over a *fixed* bucket universe:

* values map to integer keys ``k = ceil(log_gamma(v))`` with
  ``gamma = (1 + a) / (1 - a)`` for relative accuracy ``a``, clamped to a
  fixed key range covering ~1 microsecond .. ~1000 seconds in the
  nanosecond units the SLA trackers use;
* the sketch stores only occupied buckets (sparse ``{key: count}``), so
  memory is bounded by the key-range width (~1.7k buckets at a = 1%)
  regardless of sample count;
* a quantile query walks the cumulative counts and returns the bucket's
  log-midpoint, which is within relative error ``a`` of the exact
  nearest-rank sample for any in-range value;
* ``merge`` is a bucket-wise integer sum plus min/max/count folds — all
  commutative and associative, so merging shard sketches in *any* order
  yields bit-identical state (the property ``repro.fleet.merge`` relies
  on for scorecards, and :class:`RootAnalyzer` for cross-pod SLA fusion).

``min``/``max``/``count`` are exact; ``mean`` is reconstructed from the
buckets (same error bound) so that merged state stays order-independent —
a float sum accumulated in merge order would not be.

The query surface mirrors :class:`~repro.sim.stats.PercentileTracker`
(empty sketches answer ``None``), so SLA/aggregation call sites switch
between exact trackers and sketches via a factory with no churn.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

# Fixed trackable value range (nanosecond-scale metrics).  Values below
# the floor (including zero and negatives) collapse into the lowest
# bucket; values above the ceiling into the highest.  Exact min/max are
# kept separately, so range-edge quantiles stay exact.
MIN_TRACKABLE = 1e-3
MAX_TRACKABLE = 1e12


class QuantileSketch:
    """Fixed-memory percentile estimator with order-independent merge."""

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative accuracy must be in (0, 1): {relative_accuracy}")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._min_key = math.ceil(math.log(MIN_TRACKABLE) / self._log_gamma)
        self._max_key = math.ceil(math.log(MAX_TRACKABLE) / self._log_gamma)
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- ingestion --------------------------------------------------------------

    def _key(self, value: float) -> int:
        if value <= MIN_TRACKABLE:
            return self._min_key
        key = math.ceil(math.log(value) / self._log_gamma)
        return min(max(key, self._min_key), self._max_key)

    def _value(self, key: int) -> float:
        # Log-midpoint of bucket ``key``: 2 * gamma^key / (gamma + 1).
        return 2.0 * math.exp(key * self._log_gamma) / (self._gamma + 1.0)

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        key = self._key(value)
        self._buckets[key] = self._buckets.get(key, 0) + 1
        self._count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    def clear(self) -> None:
        """Drop all samples (start of a new analysis window)."""
        self._buckets.clear()
        self._count = 0
        self._min = None
        self._max = None

    def __len__(self) -> int:
        return self._count

    # -- queries ----------------------------------------------------------------

    def _clamp(self, estimate: float) -> float:
        assert self._min is not None and self._max is not None
        return min(max(estimate, self._min), self._max)

    def percentile(self, pct: float) -> Optional[float]:
        """The ``pct``-th percentile estimate (None when empty).

        Matches :meth:`PercentileTracker.percentile` nearest-rank
        semantics to within the configured relative accuracy for values
        inside the trackable range; out-of-range ``pct`` raises.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if self._count == 0:
            return None
        if pct == 0.0:
            return self._min
        rank = math.ceil(pct / 100.0 * self._count)
        seen = 0
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if seen >= rank:
                return self._clamp(self._value(key))
        return self._max  # unreachable, but keeps the checker honest

    def p50(self) -> Optional[float]:
        """Median estimate."""
        return self.percentile(50)

    def p99(self) -> Optional[float]:
        """99th percentile estimate."""
        return self.percentile(99)

    def p999(self) -> Optional[float]:
        """99.9th percentile estimate (the paper's P999)."""
        return self.percentile(99.9)

    def mean(self) -> Optional[float]:
        """Mean estimate, reconstructed from bucket midpoints.

        Not an exact running sum: exactness would cost merge-order
        independence (float addition does not commute bit-for-bit).
        """
        if self._count == 0:
            return None
        total = 0.0
        for key in sorted(self._buckets):
            total += self._buckets[key] * self._value(key)
        return self._clamp(total / self._count)

    def min(self) -> Optional[float]:
        """Smallest sample (exact)."""
        return self._min

    def max(self) -> Optional[float]:
        """Largest sample (exact)."""
        return self._max

    def summary(self) -> Optional[dict[str, float]]:
        """P50/P90/P99/P999 plus mean/min/max; None when empty."""
        if self._count == 0:
            return None
        return {
            "count": float(self._count),
            "mean": self.mean(),
            "min": self._min,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self._max,
        }

    # -- merge / wire form -------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (commutative, associative)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}")
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        self._count += other._count
        if other._min is not None:
            self._min = (other._min if self._min is None
                         else min(self._min, other._min))
        if other._max is not None:
            self._max = (other._max if self._max is None
                         else max(self._max, other._max))

    def state(self) -> dict[str, Any]:
        """Canonical plain-data form: ships over the management network,
        digests stably, and round-trips through :meth:`from_state`.

        Buckets are a sorted ``(key, count)`` tuple, so two sketches with
        the same samples — regardless of add/merge order — produce
        byte-identical state.
        """
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self._count,
            "min": self._min,
            "max": self._max,
            "buckets": tuple(sorted(self._buckets.items())),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`state` output."""
        sketch = cls(state["relative_accuracy"])
        sketch._count = state["count"]
        sketch._min = state["min"]
        sketch._max = state["max"]
        sketch._buckets = {int(k): int(c) for k, c in state["buckets"]}
        return sketch

    def memory_bytes(self) -> int:
        """Deterministic footprint estimate: fixed header + per-bucket
        dict-entry cost.  Bounded by the key-range width, never by the
        sample count."""
        return 128 + 64 * len(self._buckets)
