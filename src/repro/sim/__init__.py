"""Deterministic discrete-event simulation kernel.

Everything in the substrate and in R-Pingmesh itself runs on a single
:class:`~repro.sim.engine.Simulator` with integer-nanosecond time and named
RNG streams, so scenario runs are exactly reproducible for a given seed.
"""

from repro.sim.engine import (EventHandle, PeriodicTask, SimulationError,
                              Simulator)
from repro.sim.rng import RngRegistry, RngStream, derive_seed
from repro.sim.sketch import QuantileSketch
from repro.sim.stats import PercentileTracker, RateMeter, TimeSeries
from repro.sim import units

__all__ = [
    "Simulator",
    "SimulationError",
    "EventHandle",
    "PeriodicTask",
    "RngRegistry",
    "RngStream",
    "derive_seed",
    "PercentileTracker",
    "QuantileSketch",
    "TimeSeries",
    "RateMeter",
    "units",
]
