"""Deterministic discrete-event simulation engine.

The engine is a classic event-heap scheduler.  Components schedule callbacks
at absolute or relative times; the engine pops events in (time, sequence)
order so simultaneous events run in the order they were scheduled, which
makes every run bit-for-bit reproducible for a given seed.

Design notes
------------
* Callbacks, not coroutines.  A callback scheduler is both faster and easier
  to reason about for the probe/respond/analyze loops this package runs, and
  it avoids the generator-trampoline machinery of a process-based kernel.
* Events can be cancelled.  Cancellation is O(1): the handle is flagged and
  skipped when popped (lazy deletion), which is the standard heapq idiom.
* Periodic tasks are first-class because almost everything in R-Pingmesh is
  periodic: probing threads, pinglist refreshes, analysis periods.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class InvariantViolation(SimulationError):
    """Raised by ``Simulator(check_invariants=True)`` on a broken invariant.

    A subclass of :class:`SimulationError` so existing error handling keeps
    working; the distinct type lets the replay harness and tests assert the
    failure came from the invariant layer rather than ordinary misuse.
    """


@dataclass(order=True)
class _Event:
    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle to a scheduled event, usable for cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> int:
        """Absolute simulation time the event fires at."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from running.  Safe to call more than once."""
        self._event.cancelled = True


class PeriodicTask:
    """A callback re-armed at a fixed interval until stopped.

    The callback may inspect :attr:`runs` (number of completed firings) and
    may call :meth:`stop` from inside itself to terminate the cycle.
    """

    def __init__(self, sim: "Simulator", interval: int,
                 callback: Callable[[], None], *, jitter: int = 0):
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self.runs = 0

    @property
    def interval(self) -> int:
        """Current re-arm interval in nanoseconds."""
        return self._interval

    @property
    def stopped(self) -> bool:
        """Whether the task has been stopped."""
        return self._stopped

    def set_interval(self, interval: int) -> None:
        """Change the interval used for subsequent firings."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._interval = interval

    def start(self, *, delay: Optional[int] = None) -> "PeriodicTask":
        """Arm the first firing ``delay`` ns from now (default: one interval).

        Also restarts a stopped task; any still-pending firing is cancelled
        first so the task never ends up double-armed.
        """
        self._stopped = False
        if self._handle is not None:
            self._handle.cancel()
        first = self._interval if delay is None else delay
        self._handle = self._sim.call_later(first, self._fire)
        return self

    def stop(self) -> None:
        """Stop the cycle; a pending firing is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        self.runs += 1
        if self._stopped:  # callback may have stopped us
            return
        delay = self._interval
        if self._jitter:
            delay += self._sim.rng_jitter(self._jitter)
        self._handle = self._sim.call_later(max(1, delay), self._fire)


class Simulator:
    """The event loop.

    A single :class:`Simulator` owns simulated time for one scenario.  All
    substrate objects (fabric, hosts, RNICs) and R-Pingmesh modules hold a
    reference to the same simulator.
    """

    def __init__(self, *, seed: int = 0, check_invariants: bool = False):
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0
        self._running = False
        self.seed = seed
        # Simple deterministic jitter source decoupled from component RNGs.
        self._jitter_state = (seed * 2654435761 + 1) & 0xFFFFFFFF
        self.events_processed = 0
        # Opt-in runtime invariant checking (detlint --check-invariants):
        # asserts the popped-event clock never moves backwards, i.e. no
        # event was smuggled into the past around call_at's guard.
        self.check_invariants = check_invariants
        # Opt-in profiler (repro.obs.SimProfiler): when set, popped events
        # are executed through it so host wall time can be attributed per
        # callback site.  The profiler only *observes* — it never schedules,
        # draws randomness, or feeds wall time back into sim state, so
        # installing one cannot change replay digests.
        self._profiler = None

    def set_profiler(self, profiler) -> None:
        """Install (or, with None, remove) an event profiler."""
        self._profiler = profiler

    @property
    def profiler(self):
        """The installed event profiler, if any."""
        return self._profiler

    def _execute(self, callback: Callable[[], None]) -> None:
        if self._profiler is None:
            callback()
        else:
            self._profiler.run(callback)

    def _assert_monotonic_pop(self, event_time: int) -> None:
        if event_time < self._now:
            raise InvariantViolation(
                f"event scheduled before current sim time: "
                f"{event_time} < now {self._now}")

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def call_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}")
        event = _Event(time, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_later(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback)

    def every(self, interval: int, callback: Callable[[], None], *,
              delay: Optional[int] = None, jitter: int = 0) -> PeriodicTask:
        """Create and start a :class:`PeriodicTask`."""
        return PeriodicTask(self, interval, callback, jitter=jitter).start(delay=delay)

    def run_until(self, time: int) -> None:
        """Process events until simulated time reaches ``time``.

        The clock is always advanced to ``time`` even if the heap drains
        early, so back-to-back ``run_until`` calls observe contiguous time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards: {time} < now {self._now}")
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        try:
            while self._heap and self._heap[0].time <= time:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if self.check_invariants:
                    self._assert_monotonic_pop(event.time)
                self._now = event.time
                self._execute(event.callback)
                self.events_processed += 1
            self._now = time
        finally:
            self._running = False

    def run_for(self, duration: int) -> None:
        """Process events for ``duration`` ns of simulated time."""
        self.run_until(self._now + duration)

    def run_all(self, *, limit: int = 50_000_000) -> None:
        """Drain the event heap completely (bounded by ``limit`` events)."""
        if self._running:
            raise SimulationError("run_all called re-entrantly")
        self._running = True
        processed = 0
        try:
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if self.check_invariants:
                    self._assert_monotonic_pop(event.time)
                self._now = event.time
                self._execute(event.callback)
                self.events_processed += 1
                processed += 1
                if processed >= limit:
                    raise SimulationError(
                        f"run_all exceeded {limit} events; runaway schedule?")
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def rng_jitter(self, bound: int) -> int:
        """Deterministic jitter in ``[0, bound)`` for periodic task spacing."""
        self._jitter_state = (self._jitter_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._jitter_state % bound if bound > 0 else 0
