"""Deterministic discrete-event simulation engine.

The engine is a calendar-queue scheduler.  Components schedule callbacks at
absolute or relative times; the engine pops events in (time, sequence) order
so simultaneous events run in the order they were scheduled, which makes
every run bit-for-bit reproducible for a given seed.

Design notes
------------
* Callbacks, not coroutines.  A callback scheduler is both faster and easier
  to reason about for the probe/respond/analyze loops this package runs, and
  it avoids the generator-trampoline machinery of a process-based kernel.
* Calendar queue, not a single heap.  The workload is dominated by
  same-interval :class:`PeriodicTask` firings plus short in-flight packet
  hops, so events cluster tightly in time.  The queue buckets events by
  ``time >> bucket_bits`` (default 20 bits ~ 1.05 ms per bucket): pushes
  into future buckets are plain list appends, and only the *current* bucket
  is heap-ordered.  Bucket entries are ``(time, seq, event)`` tuples so heap
  comparisons run on ints at C speed instead of dataclass ``__lt__``.
* Events can be cancelled.  Cancellation is O(1): the handle is flagged and
  skipped when popped (lazy deletion).  When cancelled events outnumber live
  ones the queue compacts, so mass-cancel workloads cannot bloat it.
* Events are pooled.  ``_Event`` records carry a generation counter and are
  recycled through a bounded free list; a stale :class:`EventHandle` whose
  event was recycled detects the generation mismatch and becomes inert.
* Periodic tasks are first-class because almost everything in R-Pingmesh is
  periodic: probing threads, pinglist refreshes, analysis periods.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

#: Bucket width in bits of sim-time (2**20 ns ~ 1.05 ms per bucket).
#: Swept empirically on the steady-state probing workload: wider buckets
#: amortize bucket-heap churn until ~2**21, where current-bucket heap ops
#: start to dominate.  Pop order is exact (time, seq) at any width, so the
#: setting cannot affect replay digests — only speed.
BUCKET_BITS_DEFAULT = 20
#: Free-list cap for recycled _Event records (0 disables pooling).
EVENT_POOL_DEFAULT = 8192
#: Sentinel horizon for run_all: beyond any schedulable time.
_FAR_FUTURE = 1 << 62


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class InvariantViolation(SimulationError):
    """Raised by ``Simulator(check_invariants=True)`` on a broken invariant.

    A subclass of :class:`SimulationError` so existing error handling keeps
    working; the distinct type lets the replay harness and tests assert the
    failure came from the invariant layer rather than ordinary misuse.
    """


class _Event:
    """A scheduled callback.  Pooled: ``gen`` bumps on every recycle."""

    __slots__ = ("time", "seq", "callback", "cancelled", "gen")

    def __init__(self, time: int, seq: int,
                 callback: Optional[Callable[[], None]] = None,
                 cancelled: bool = False):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.gen = 0

    def __lt__(self, other: "_Event") -> bool:
        # Queue entries are (time, seq, event) tuples, so this only runs on
        # an exact (time, seq) tie — impossible for engine-issued events
        # (seqs are unique) but reachable by white-box tests that smuggle
        # hand-built events in.
        return (self.time, self.seq) < (other.time, other.seq)


class CalendarQueue:
    """Bucketed event queue that pops in exact (time, seq) order.

    Future buckets are unsorted lists (O(1) push); the bucket holding the
    earliest events is heap-ordered on demand.  A small heap of bucket
    indices finds the next non-empty bucket.  Pushes *behind* the active
    bucket (possible only by smuggling events past ``call_at``'s guard,
    which the white-box invariant tests do on purpose) demote the active
    bucket back into the calendar so ordering stays exact even then.
    """

    __slots__ = ("bucket_bits", "_buckets", "_bucket_heap",
                 "_cur_index", "_cur_heap", "_live", "_cancelled")

    def __init__(self, *, bucket_bits: int = BUCKET_BITS_DEFAULT):
        self.bucket_bits = bucket_bits
        # bucket index -> unsorted [(time, seq, event), ...]
        self._buckets: dict[int, list[tuple[int, int, _Event]]] = {}
        self._bucket_heap: list[int] = []
        self._cur_index = -1          # active (heap-ordered) bucket; -1 none
        self._cur_heap: list[tuple[int, int, _Event]] = []
        self._live = 0                # scheduled and not cancelled
        self._cancelled = 0           # cancelled but still queued

    @property
    def live(self) -> int:
        """Number of live (non-cancelled) queued events."""
        return self._live

    def __len__(self) -> int:
        return self._live + self._cancelled

    def push(self, event: _Event) -> None:
        """Enqueue an event (its time/seq must already be set)."""
        self._live += 1
        index = event.time >> self.bucket_bits
        if index == self._cur_index:
            heapq.heappush(self._cur_heap, (event.time, event.seq, event))
            return
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [(event.time, event.seq, event)]
            heapq.heappush(self._bucket_heap, index)
        else:
            bucket.append((event.time, event.seq, event))

    def note_cancel(self) -> None:
        """Account a first-time cancellation of a still-queued event."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > 64 and self._cancelled > self._live:
            self.compact()

    def pop_due(self, limit: int) -> Optional[_Event]:
        """Dequeue the globally-earliest event if its time is <= ``limit``.

        Returns cancelled events too (the caller recycles them); ordering
        across the live ones is exact (time, seq).
        """
        while True:
            cur = self._cur_heap
            bucket_heap = self._bucket_heap
            if bucket_heap and (not cur or bucket_heap[0] < self._cur_index):
                # An earlier bucket exists (or no bucket is active).
                if not cur and (bucket_heap[0] << self.bucket_bits) > limit:
                    return None   # every queued event is beyond the horizon
                if cur:
                    self._demote_current()
                if not self._activate_next():
                    return None
                continue
            if not cur:
                return None
            head = cur[0]
            if head[0] > limit:
                return None
            event = heapq.heappop(cur)[2]
            if event.cancelled:
                self._cancelled -= 1
            else:
                self._live -= 1
            return event

    def _activate_next(self) -> bool:
        """Heapify the earliest calendar bucket into the active slot."""
        bucket_heap = self._bucket_heap
        while bucket_heap:
            index = heapq.heappop(bucket_heap)
            bucket = self._buckets.pop(index, None)
            if bucket is None:
                continue              # stale index left behind by compact()
            heapq.heapify(bucket)
            self._cur_index = index
            self._cur_heap = bucket
            return True
        self._cur_index = -1
        self._cur_heap = []
        return False

    def _demote_current(self) -> None:
        """Return the active bucket to the calendar (past-push path)."""
        bucket = self._cur_heap
        index = self._cur_index
        self._cur_index = -1
        self._cur_heap = []
        if not bucket:
            return
        existing = self._buckets.get(index)
        if existing is None:
            self._buckets[index] = bucket
            heapq.heappush(self._bucket_heap, index)
        else:
            existing.extend(bucket)

    def compact(self) -> None:
        """Drop cancelled entries (lazy-deletion sweep).

        Triggered from :meth:`note_cancel` once cancelled entries outnumber
        live ones; also callable directly.  Emptied calendar buckets leave a
        stale index in the bucket heap, which activation skips.
        """
        kept = [entry for entry in self._cur_heap if not entry[2].cancelled]
        heapq.heapify(kept)
        self._cur_heap = kept
        for index in list(self._buckets):
            bucket = [entry for entry in self._buckets[index]
                      if not entry[2].cancelled]
            if bucket:
                self._buckets[index] = bucket
            else:
                del self._buckets[index]
        self._cancelled = 0


class EventHandle:
    """Opaque handle to a scheduled event, usable for cancellation.

    Snapshots the event's generation so a handle outliving its (recycled)
    event can never cancel an unrelated later event.
    """

    __slots__ = ("_event", "_gen", "_time", "_queue", "_cancelled")

    def __init__(self, event: _Event, queue: CalendarQueue):
        self._event = event
        self._gen = event.gen
        self._time = event.time
        self._queue = queue
        self._cancelled = False

    @property
    def time(self) -> int:
        """Absolute simulation time the event fires at."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """Whether cancel() was called (even after the event fired)."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from running.  Safe to call more than once."""
        if self._cancelled:
            return
        self._cancelled = True
        event = self._event
        if event.gen == self._gen and not event.cancelled:
            event.cancelled = True
            self._queue.note_cancel()


class PeriodicTask:
    """A callback re-armed at a fixed interval until stopped.

    The callback may inspect :attr:`runs` (number of completed firings) and
    may call :meth:`stop` from inside itself to terminate the cycle.
    """

    def __init__(self, sim: "Simulator", interval: int,
                 callback: Callable[[], None], *, jitter: int = 0):
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        self.runs = 0

    @property
    def interval(self) -> int:
        """Current re-arm interval in nanoseconds."""
        return self._interval

    @property
    def stopped(self) -> bool:
        """Whether the task has been stopped."""
        return self._stopped

    def set_interval(self, interval: int) -> None:
        """Change the interval used for subsequent firings."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._interval = interval

    def start(self, *, delay: Optional[int] = None) -> "PeriodicTask":
        """Arm the first firing ``delay`` ns from now (default: one interval).

        Also restarts a stopped task; any still-pending firing is cancelled
        first so the task never ends up double-armed.
        """
        self._stopped = False
        if self._handle is not None:
            self._handle.cancel()
        first = self._interval if delay is None else delay
        self._handle = self._sim.call_later(first, self._fire)
        return self

    def stop(self) -> None:
        """Stop the cycle; a pending firing is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        self.runs += 1
        if self._stopped:  # callback may have stopped us
            return
        delay = self._interval
        if self._jitter:
            delay += self._sim.rng_jitter(self._jitter)
        self._handle = self._sim.call_later(max(1, delay), self._fire)


class Simulator:
    """The event loop.

    A single :class:`Simulator` owns simulated time for one scenario.  All
    substrate objects (fabric, hosts, RNICs) and R-Pingmesh modules hold a
    reference to the same simulator.
    """

    def __init__(self, *, seed: int = 0, check_invariants: bool = False,
                 bucket_bits: int = BUCKET_BITS_DEFAULT,
                 event_pool_size: int = EVENT_POOL_DEFAULT,
                 sanitizer=None):
        self._queue = CalendarQueue(bucket_bits=bucket_bits)
        self._seq = itertools.count()
        self._now = 0
        self._running = False
        self.seed = seed
        # Simple deterministic jitter source decoupled from component RNGs.
        self._jitter_state = (seed * 2654435761 + 1) & 0xFFFFFFFF
        self.events_processed = 0
        # Opt-in runtime invariant checking (detlint --check-invariants):
        # asserts the popped-event clock never moves backwards, i.e. no
        # event was smuggled into the past around call_at's guard.
        self.check_invariants = check_invariants
        # Opt-in profiler (repro.obs.SimProfiler): when set, popped events
        # are executed through it so host wall time can be attributed per
        # callback site.  The profiler only *observes* — it never schedules,
        # draws randomness, or feeds wall time back into sim state, so
        # installing one cannot change replay digests.
        self._profiler = None
        # Bounded free list of recycled _Event records.  Generation counters
        # (bumped on every recycle, pooled or not) keep stale handles inert,
        # so pool size 0 is behaviourally identical to any positive size.
        self._event_pool_size = event_pool_size
        self._event_free: list[_Event] = []
        # Opt-in pool sanitizer (repro.analysis.sanitize.PoolSanitizer):
        # observes every _Event acquire/recycle and poisons recycled
        # records.  Like the profiler it only watches — digests must be
        # byte-identical with or without it.
        self._san = None
        if sanitizer is not None:
            self.set_sanitizer(sanitizer)

    def set_sanitizer(self, sanitizer) -> None:
        """Install (or, with None, remove) a pool sanitizer."""
        self._san = sanitizer
        if sanitizer is not None:
            sanitizer.bind_sim(self)

    @property
    def sanitizer(self):
        """The installed pool sanitizer, if any."""
        return self._san

    @property
    def queue_depth(self) -> int:
        """Queued events including cancelled-but-unpopped ones.

        The sanitizer's event-accounting invariant compares this against
        its outstanding-record count; ordinary code wants :meth:`pending`
        (live events only).
        """
        return len(self._queue)

    @property
    def event_pool_free(self) -> int:
        """Recycled ``_Event`` records currently on the free list.

        Observability surface (``repro_sim_event_pool_free``) and part of
        the checkpoint state-capture contract (DESIGN.md §13): the free
        list rides along in a pickled world so the restored run acquires
        pooled records in the same order as an uninterrupted one.
        """
        return len(self._event_free)

    def set_profiler(self, profiler) -> None:
        """Install (or, with None, remove) an event profiler."""
        self._profiler = profiler

    @property
    def profiler(self):
        """The installed event profiler, if any."""
        return self._profiler

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def call_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}")
        free = self._event_free
        if free:
            event = free.pop()
            if self._san is not None:
                self._san.reacquire_event(event)
            event.time = time
            event.seq = next(self._seq)
            event.callback = callback
            event.cancelled = False
        else:
            event = _Event(time, next(self._seq), callback)
            if self._san is not None:
                self._san.acquire_event(event)
        self._queue.push(event)
        return EventHandle(event, self._queue)

    def call_later(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback)

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`call_later`: no cancellation handle.

        Hot-path variant for callers that never cancel (packet hops, wire
        departures).  Scheduling order — and therefore replay behaviour —
        is identical to ``call_later``; only the handle allocation is
        skipped.
        """
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        free = self._event_free
        if free:
            event = free.pop()
            if self._san is not None:
                self._san.reacquire_event(event)
            event.time = self._now + delay
            event.seq = next(self._seq)
            event.callback = callback
            event.cancelled = False
        else:
            event = _Event(self._now + delay, next(self._seq), callback)
            if self._san is not None:
                self._san.acquire_event(event)
        self._queue.push(event)

    def every(self, interval: int, callback: Callable[[], None], *,
              delay: Optional[int] = None, jitter: int = 0) -> PeriodicTask:
        """Create and start a :class:`PeriodicTask`."""
        return PeriodicTask(self, interval, callback, jitter=jitter).start(delay=delay)

    def _recycle(self, event: _Event) -> None:
        """Retire a dequeued event.  The generation bump (done whether or
        not the record re-enters the free list) is what invalidates any
        surviving handle."""
        event.gen += 1
        event.callback = None
        free = self._event_free
        recycled = len(free) < self._event_pool_size
        if self._san is not None:
            self._san.release_event(event, recycled=recycled)
        if recycled:
            free.append(event)

    def _drain(self, limit_time: int, max_events: Optional[int] = None) -> None:
        """The single pop/execute loop behind run_until and run_all.

        Keeping one copy means the invariant check and the profiler hook
        cannot drift apart between the two entry points.
        """
        queue = self._queue
        pop_due = queue.pop_due
        recycle = self._recycle
        processed = 0
        while True:
            event = pop_due(limit_time)
            if event is None:
                break
            if event.cancelled:
                recycle(event)
                continue
            time = event.time
            if self.check_invariants and time < self._now:
                raise InvariantViolation(
                    f"event scheduled before current sim time: "
                    f"{time} < now {self._now}")
            self._now = time
            callback = event.callback
            recycle(event)
            profiler = self._profiler
            if profiler is None:
                callback()
            else:
                profiler.run(callback)
            self.events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"run_all exceeded {max_events} events; runaway schedule?")

    def run_until(self, time: int) -> None:
        """Process events until simulated time reaches ``time``.

        The clock is always advanced to ``time`` even if the queue drains
        early, so back-to-back ``run_until`` calls observe contiguous time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards: {time} < now {self._now}")
        if self._running:
            raise SimulationError("run_until called re-entrantly")
        self._running = True
        try:
            self._drain(time)
            self._now = time
        finally:
            self._running = False

    def run_for(self, duration: int) -> None:
        """Process events for ``duration`` ns of simulated time."""
        self.run_until(self._now + duration)

    def run_all(self, *, limit: int = 50_000_000) -> None:
        """Drain the event queue completely (bounded by ``limit`` events)."""
        if self._running:
            raise SimulationError("run_all called re-entrantly")
        self._running = True
        try:
            self._drain(_FAR_FUTURE, max_events=limit)
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._queue.live

    def rng_jitter(self, bound: int) -> int:
        """Deterministic jitter in ``[0, bound)`` for periodic task spacing."""
        self._jitter_state = (self._jitter_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._jitter_state % bound if bound > 0 else 0
