"""Statistics containers shared by the Analyzer and the experiment drivers.

Two shapes cover everything the paper reports:

* :class:`PercentileTracker` — a bounded sample buffer answering P50..P999
  queries per analysis window (the SLA distributions in §5).
* :class:`TimeSeries` — (time, value) pairs for the figure-style plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional


class PercentileTracker:
    """Collects float samples and answers percentile queries.

    Keeps all samples for exactness (windows in this package hold at most a
    few hundred thousand samples); sorts lazily on query.  Every query on
    an empty tracker answers ``None`` — the one empty-sample contract
    shared with :class:`~repro.sim.sketch.QuantileSketch` and
    ``TierAggregate.rtt_p99`` — so call sites need no ``len()`` guards.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted = True

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, value: float) -> None:
        """Record one sample."""
        self._samples.append(value)
        self._sorted = False

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        self._samples.extend(values)
        self._sorted = False

    def clear(self) -> None:
        """Drop all samples (start of a new analysis window)."""
        self._samples.clear()
        self._sorted = True

    def samples(self) -> list[float]:
        """A copy of the retained samples (sketch conversion, tests)."""
        return list(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, pct: float) -> Optional[float]:
        """The ``pct``-th percentile (nearest-rank, pct in [0, 100]).

        ``None`` when no samples were recorded; out-of-range ``pct``
        raises regardless.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if not self._samples:
            return None
        self._ensure_sorted()
        if pct == 0.0:
            return self._samples[0]
        rank = math.ceil(pct / 100.0 * len(self._samples))
        return self._samples[max(0, rank - 1)]

    def p50(self) -> Optional[float]:
        """Median."""
        return self.percentile(50)

    def p99(self) -> Optional[float]:
        """99th percentile."""
        return self.percentile(99)

    def p999(self) -> Optional[float]:
        """99.9th percentile (the paper's P999)."""
        return self.percentile(99.9)

    def mean(self) -> Optional[float]:
        """Arithmetic mean (None when empty)."""
        if not self._samples:
            return None
        return sum(self._samples) / len(self._samples)

    def max(self) -> Optional[float]:
        """Largest sample (None when empty)."""
        if not self._samples:
            return None
        self._ensure_sorted()
        return self._samples[-1]

    def min(self) -> Optional[float]:
        """Smallest sample (None when empty)."""
        if not self._samples:
            return None
        self._ensure_sorted()
        return self._samples[0]

    def summary(self) -> Optional[dict[str, float]]:
        """P50/P90/P99/P999 plus mean/min/max; None when empty."""
        if not self._samples:
            return None
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "min": self.min(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "max": self.max(),
        }

    def memory_bytes(self) -> int:
        """Deterministic footprint estimate: list slot + float object per
        retained sample.  Grows without bound with the sample count — the
        cost :class:`~repro.sim.sketch.QuantileSketch` exists to avoid."""
        return 64 + 32 * len(self._samples)


@dataclass
class TimeSeries:
    """A named (time_ns, value) series for figure reproduction."""

    name: str
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times)

    def record(self, time_ns: int, value: float) -> None:
        """Append one point; times must be non-decreasing."""
        if self.times and time_ns < self.times[-1]:
            raise ValueError(
                f"time went backwards in series {self.name!r}: "
                f"{time_ns} < {self.times[-1]}")
        self.times.append(time_ns)
        self.values.append(value)

    def window(self, start_ns: int, end_ns: int) -> "TimeSeries":
        """Sub-series with start <= time < end."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if start_ns <= t < end_ns:
                out.record(t, v)
        return out

    def mean(self) -> float:
        """Mean of the values."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def max(self) -> float:
        """Max of the values."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values)

    def min(self) -> float:
        """Min of the values."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return min(self.values)

    def value_at(self, time_ns: int) -> float:
        """Most recent value at or before ``time_ns`` (step interpolation)."""
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        candidate: Optional[float] = None
        for t, v in zip(self.times, self.values):
            if t <= time_ns:
                candidate = v
            else:
                break
        if candidate is None:
            raise ValueError(
                f"no point at or before {time_ns} in series {self.name!r}")
        return candidate


class RateMeter:
    """Counts events and reports a rate over an interval (drops/sec etc.)."""

    def __init__(self) -> None:
        self.count = 0

    def hit(self, n: int = 1) -> None:
        """Record ``n`` events."""
        self.count += n

    def take_rate(self, interval_ns: int) -> float:
        """Events per second over ``interval_ns``; resets the counter."""
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        rate = self.count * 1e9 / interval_ns
        self.count = 0
        return rate
