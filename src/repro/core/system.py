"""End-to-end R-Pingmesh system wiring.

:class:`RPingmesh` builds the simulated TCP management network
(:class:`~repro.controlplane.transport.ManagementNetwork`), instantiates
the Controller, the Analyzer, and one Agent per host of a
:class:`~repro.cluster.Cluster`, binds each to its control-plane
endpoint, then starts them in the paper's order: Agents register first
(the Controller registry must know every QPN), the Controller builds and
pushes pinglists, and the Analyzer begins its 20-second loop.

With the default configuration the management network delivers inline —
zero latency, zero loss, no extra simulator events, no RNG draws — so
results are bit-for-bit identical to direct in-process calls.  Raising
``control_latency_ns`` / ``control_jitter_ns`` / ``control_loss_prob``
(or partitioning endpoints through ``system.network``) degrades only the
control plane, never the RoCE data plane being monitored.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import Cluster
from repro.controlplane.transport import LinkProfile, ManagementNetwork
from repro.core.agent import Agent
from repro.core.analyzer import Analyzer, ServiceMonitor
from repro.core.config import RPingmeshConfig
from repro.core.controller import Controller
from repro.core.sharding import (AnalyzerShard, ControllerShard, PodMap,
                                 RootAnalyzer, RootController,
                                 analyzer_shard_endpoint,
                                 controller_shard_endpoint)
from repro.diagnosis.backend import DiagnosisBackend, create_backend
from repro.obs import Observability


class RPingmesh:
    """The deployed system on one cluster.

    ``obs`` is the single observability knob (DESIGN.md §8): pass an
    :class:`~repro.obs.Observability` with tracing / metrics / profiling
    switched on to light up the corresponding layer.  The default is
    everything off, which costs one attribute check per hook site and
    leaves behaviour bit-for-bit identical.
    """

    def __init__(self, cluster: Cluster,
                 config: Optional[RPingmeshConfig] = None, *,
                 obs: Optional[Observability] = None,
                 backends: Optional[tuple] = None):
        self.cluster = cluster
        self.config = config or RPingmeshConfig()
        if backends is not None:
            # Convenience override of config.backends (fleet/CLI path).
            self.config.backends = tuple(backends)
        self.config.validate()
        self.obs = obs if obs is not None else Observability()
        self.obs.install(cluster)
        self.network = ManagementNetwork(
            cluster.sim, cluster.rngs.stream("controlplane"),
            default_profile=LinkProfile(
                latency_ns=self.config.control_latency_ns,
                jitter_ns=self.config.control_jitter_ns,
                loss_prob=self.config.control_loss_prob),
            metrics=(self.obs.metrics if self.obs.metrics_enabled else None))
        cluster.management = self.network
        self.pod_map: Optional[PodMap] = None
        if self.config.shards > 1:
            # Two-tier deployment (DESIGN.md §11): per-pod shard pairs
            # under thin roots.  Each Agent talks to its pod's shards.
            self.pod_map = PodMap.build(cluster, self.config.shards)
            controller_shards = [
                ControllerShard(
                    cluster, self.config,
                    cluster.rngs.stream(controller_shard_endpoint(i)),
                    i, tors)
                for i, tors in enumerate(self.pod_map.shard_tors)]
            self.controller = RootController(cluster, self.config,
                                             controller_shards)
            self.controller.bind(self.network)
            analyzer_shards = [
                AnalyzerShard(cluster, controller_shards[i], self.config, i)
                for i in range(self.pod_map.shard_count)]
            self.analyzer = RootAnalyzer(cluster, self.config,
                                         analyzer_shards)
            self.analyzer.bind(self.network)
            self.agents: dict[str, Agent] = {}
            for host_name, host in sorted(cluster.hosts.items()):
                shard = self.pod_map.shard_of_host(cluster, host_name)
                self.agents[host_name] = Agent(
                    host, cluster, self.network, self.config,
                    cluster.rngs.stream(f"agent.{host_name}"),
                    controller_endpoint=controller_shard_endpoint(shard),
                    analyzer_endpoint=analyzer_shard_endpoint(shard))
        else:
            self.controller = Controller(cluster, self.config,
                                         cluster.rngs.stream("controller"))
            self.controller.bind(self.network)
            self.analyzer = Analyzer(cluster, self.controller, self.config)
            self.analyzer.bind(self.network)
            self.agents = {
                host_name: Agent(host, cluster, self.network, self.config,
                                 cluster.rngs.stream(f"agent.{host_name}"))
                for host_name, host in sorted(cluster.hosts.items())
            }
        # Diagnosis backends (repro.diagnosis, DESIGN.md §14): build and
        # attach each configured backend.  The default ("probe",) attaches
        # a pure-observation adapter; "int" installs the fabric collector
        # and enables Analyzer fusion.
        self.backends: dict[str, DiagnosisBackend] = {}
        for name in self.config.backends:
            backend = create_backend(name)
            backend.attach(cluster, self)
            self.backends[name] = backend
        self._started = False
        if self.obs.metrics_enabled:
            self.obs.metrics.register_collector(self._collect_system)

    def start(self) -> None:
        """Bring the whole system up (idempotent).

        Backends start *before* the Analyzer: both tick every
        ``analysis_period_ns``, and the engine preserves schedule order
        at equal timestamps, so a backend's window close (e.g. the INT
        drain) always lands before the ``analyze()`` that fuses it.
        """
        if self._started:
            return
        self._started = True
        for agent in self.agents.values():
            agent.start()
        self.controller.start()
        for name in self.config.backends:
            self.backends[name].start()
        self.analyzer.start()

    def attach_service_monitor(self, monitor: ServiceMonitor) -> None:
        """Forward the service metric feed to the Analyzer."""
        self.analyzer.attach_service_monitor(monitor)

    def agent_for_rnic(self, rnic_name: str) -> Agent:
        """The Agent managing a given RNIC."""
        host = self.cluster.host_of_rnic(rnic_name)
        return self.agents[host.name]

    def control_plane_stats(self) -> dict[str, "object"]:
        """Per-endpoint control-plane metrics (dashboard/CLI surface).

        Deprecated shape: the same numbers now live in the metrics
        registry as ``repro_controlplane_*{endpoint=...}`` series (see
        :meth:`metrics_snapshot`); this accessor remains for dashboards
        and tests that read ``stats.sent`` / ``stats.dropped`` directly.
        """
        return {name: self.network.stats_for(name)
                for name in self.network.endpoints()}

    def metrics_snapshot(self) -> dict[str, "object"]:
        """Run collectors and return the flat, sorted metrics snapshot."""
        return self.obs.metrics.snapshot()

    def _collect_system(self) -> None:
        """Pull-style collector: Analyzer ingest + network-wide totals."""
        m = self.obs.metrics
        m.counter("repro_analyzer_ingest_accepted_total").value = \
            self.analyzer.ingest_accepted
        m.counter("repro_analyzer_ingest_dropped_total").value = \
            self.analyzer.ingest_dropped
        m.gauge("repro_analyzer_ingest_backlog").set(
            self.analyzer.ingest_backlog)
        # Sharded deployments additionally expose per-shard ingest health
        # (the bounded queue is per shard, so the sums above can hide one
        # hot pod saturating its own slice).
        for shard in getattr(self.analyzer, "shards", []):
            label = str(shard.shard_index)
            m.counter("repro_analyzer_shard_ingest_accepted_total",
                      shard=label).value = shard.ingest_accepted
            m.counter("repro_analyzer_shard_ingest_dropped_total",
                      shard=label).value = shard.ingest_dropped
            m.gauge("repro_analyzer_shard_ingest_backlog",
                    shard=label).set(shard.ingest_backlog)
        m.gauge("repro_analyzer_windows_analyzed").set(
            len(self.analyzer.windows))
        m.gauge("repro_analyzer_problems_total").set(
            len(self.analyzer.problems))
        for category, count in sorted(
                self.analyzer.category_counts.items(),
                key=lambda kv: kv[0].value):
            m.counter("repro_analyzer_problems_by_category_total",
                      category=category.value).value = count
        m.counter("repro_controlplane_messages_sent_total").value = \
            self.network.messages_sent
        m.counter("repro_controlplane_messages_delivered_total").value = \
            self.network.messages_delivered
        m.counter("repro_controlplane_messages_dropped_total").value = \
            self.network.messages_dropped
        for name, backend in sorted(self.backends.items()):
            cost = backend.cost()
            m.gauge("repro_diagnosis_verdicts",
                    backend=name).set(len(backend.verdicts()))
            m.counter("repro_diagnosis_probe_packets_total",
                      backend=name).value = cost.probe_packets
            m.counter("repro_diagnosis_probe_bytes_total",
                      backend=name).value = cost.probe_bytes
            m.counter("repro_diagnosis_telemetry_bytes_total",
                      backend=name).value = cost.telemetry_bytes
            m.counter("repro_diagnosis_events_observed_total",
                      backend=name).value = cost.events_observed
        fusion = getattr(self.analyzer, "fusion", None)
        if fusion is not None and self.analyzer.int_provider is not None:
            m.counter("repro_fusion_sharpened_total").value = fusion.sharpened
            m.counter("repro_fusion_annotated_total").value = fusion.annotated
            m.counter("repro_fusion_added_total").value = fusion.added
            m.counter("repro_fusion_ties_broken_total").value = \
                fusion.ties_broken

    def run(self, duration_ns: int) -> None:
        """Convenience: start (if needed) and advance simulated time."""
        self.start()
        self.cluster.sim.run_for(duration_ns)
