"""Rail-optimized probing (paper §7.4, Figure 12).

In a rail-optimized cluster, NIC *i* of every host connects to rail switch
*i*, so traffic between two NICs **on the same host** must climb to the
spine tier and back down.  That enables two simplifications the paper
describes:

* **No Controller pinglists** — every host probes between its own RNICs;
  with enough 5-tuples (source ports) all fabric links get covered.
* **One-way probing** — prober and responder belong to the *same Agent*,
  which sees both the send CQE (prober-RNIC clock) and the receive CQE
  (responder-RNIC clock).  The clock offset between the two RNICs is
  constant, so one-way *timeouts* are exact and one-way *delay changes*
  (relative to a per-pair baseline) are measurable without any ACK.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional

from repro.cluster import Cluster
from repro.host.rnic import Cqe, CqeKind, LocalSendError, QPType, QueuePair
from repro.net.addresses import roce_five_tuple
from repro.sim.engine import EventHandle
from repro.sim.stats import PercentileTracker
from repro.sim.units import MILLISECOND


@dataclass
class OneWayResult:
    """One one-way probe across the rails."""

    src_rnic: str
    dst_rnic: str
    src_port: int
    issued_at_ns: int
    timeout: bool
    # Raw cross-clock delta (recv CQE on dst clock - send CQE on src
    # clock); only its *changes* are physically meaningful.
    raw_delta_ns: Optional[int] = None


@dataclass
class _Pending:
    seq: int
    src_rnic: str
    dst_rnic: str
    src_port: int
    issued_at_ns: int
    t_send: Optional[int] = None
    timeout_handle: Optional[EventHandle] = None


class RailProber:
    """Same-host cross-rail one-way prober for one host."""

    def __init__(self, cluster: Cluster, host_name: str, *,
                 timeout_ns: int = 500 * MILLISECOND,
                 ports_per_pair: int = 16):
        host = cluster.hosts[host_name]
        if len(host.rnics) < 2:
            raise ValueError("rail probing needs >= 2 RNICs on the host")
        self.cluster = cluster
        self.host = host
        self.timeout_ns = timeout_ns
        self.ports_per_pair = ports_per_pair
        self.rng = cluster.rngs.stream(f"railprobe.{host_name}")
        self.results: list[OneWayResult] = []
        self._pending: dict[int, _Pending] = {}
        self._qps: dict[str, QueuePair] = {}
        # Per-(src,dst) baseline of raw deltas, for delay-change detection.
        self._baselines: dict[tuple[str, str], PercentileTracker] = {}
        for rnic in host.rnics:
            self._qps[rnic.name] = host.verbs.create_qp(
                rnic, QPType.UD,
                on_cqe=partial(self._on_cqe, rnic.name))

    # -- probing -------------------------------------------------------------

    def probe_pair(self, src_rnic: str, dst_rnic: str,
                   src_port: Optional[int] = None) -> None:
        """One one-way probe from src to dst (both on this host)."""
        if src_port is None:
            src_port = self.rng.randint(1024, 65535)
        seq = next(self.cluster.probe_seqs)
        src = self.host.rnic_by_name(src_rnic)
        dst = self.host.rnic_by_name(dst_rnic)
        pending = _Pending(seq=seq, src_rnic=src_rnic, dst_rnic=dst_rnic,
                           src_port=src_port,
                           issued_at_ns=self.cluster.sim.now)
        self._pending[seq] = pending
        pending.timeout_handle = self.cluster.sim.call_later(
            self.timeout_ns, partial(self._on_timeout, seq))
        try:
            src.post_send(self._qps[src_rnic],
                          dst.comm_info(self._qps[dst_rnic].qpn),
                          src_port=src_port,
                          payload={"t": "rail", "seq": seq},
                          payload_bytes=50)
        except LocalSendError:
            pass  # reported at the timeout tick

    def probe_round(self) -> None:
        """Probe every ordered RNIC pair with fresh random ports."""
        names = [r.name for r in self.host.rnics]
        for src in names:
            for dst in names:
                if src != dst:
                    self.probe_pair(src, dst)

    def sweep_ports(self) -> None:
        """Many 5-tuples per pair: the link-coverage mode of §7.4."""
        names = [r.name for r in self.host.rnics]
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                for _ in range(self.ports_per_pair):
                    self.probe_pair(src, dst)

    # -- completion ----------------------------------------------------------

    def _on_cqe(self, rnic_name: str, cqe: Cqe) -> None:
        # Everything _handle_cqe keeps is copied (timestamps into the
        # pending record, plain ints into OneWayResult), so the CQE can
        # go straight back to its RNIC's pool — without this, every rail
        # probe's CQE stayed live forever (PoolSan SAN003 leak finding).
        try:
            self._handle_cqe(rnic_name, cqe)
        finally:
            self.host.rnic_by_name(rnic_name).release_cqe(cqe)

    def _handle_cqe(self, rnic_name: str, cqe: Cqe) -> None:
        if cqe.kind == CqeKind.SEND:
            # We match send CQEs to pendings by order per source RNIC;
            # wr_id-based matching keeps it exact.
            for pending in self._pending.values():
                if pending.src_rnic == rnic_name and pending.t_send is None:
                    pending.t_send = cqe.rnic_timestamp_ns
                    break
            return
        if cqe.payload.get("t") != "rail":
            return
        pending = self._pending.pop(cqe.payload["seq"], None)
        if pending is None:
            return
        if pending.timeout_handle is not None:
            pending.timeout_handle.cancel()
        raw = None
        if pending.t_send is not None:
            raw = cqe.rnic_timestamp_ns - pending.t_send
            self._baselines.setdefault(
                (pending.src_rnic, pending.dst_rnic),
                PercentileTracker()).add(float(raw))
        self.results.append(OneWayResult(
            src_rnic=pending.src_rnic, dst_rnic=pending.dst_rnic,
            src_port=pending.src_port, issued_at_ns=pending.issued_at_ns,
            timeout=False, raw_delta_ns=raw))

    def _on_timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is None:
            return
        self.results.append(OneWayResult(
            src_rnic=pending.src_rnic, dst_rnic=pending.dst_rnic,
            src_port=pending.src_port, issued_at_ns=pending.issued_at_ns,
            timeout=True))

    # -- analysis ------------------------------------------------------------

    def timeout_rate(self) -> float:
        """Fraction of one-way probes lost."""
        if not self.results:
            return 0.0
        return sum(r.timeout for r in self.results) / len(self.results)

    def delay_change_ns(self, src_rnic: str, dst_rnic: str,
                        recent: int = 20) -> Optional[float]:
        """Recent one-way delay minus the pair's baseline median.

        The raw deltas carry an unknown constant clock offset, which the
        subtraction removes — only *changes* (congestion, PFC pressure)
        remain, exactly what §7.4's one-way RTT is for.
        """
        tracker = self._baselines.get((src_rnic, dst_rnic))
        if tracker is None or len(tracker) < recent + 5:
            return None
        samples = [r.raw_delta_ns for r in self.results
                   if not r.timeout and r.raw_delta_ns is not None
                   and (r.src_rnic, r.dst_rnic) == (src_rnic, dst_rnic)]
        recent_mean = sum(samples[-recent:]) / recent
        return recent_mean - tracker.p50()

    def covered_links(self) -> set[str]:
        """Directed fabric links crossed by this host's probe 5-tuples."""
        covered: set[str] = set()
        for result in self.results:
            src_rnic = self.host.rnic_by_name(result.src_rnic)
            dst_rnic = self.host.rnic_by_name(result.dst_rnic)
            ft = roce_five_tuple(src_rnic.ip, dst_rnic.ip, result.src_port)
            path = self.cluster.fabric.path_of(ft, result.src_rnic)
            covered.update(f"{a}->{b}" for a, b in zip(path, path[1:]))
        return covered
