"""Equation 1: how many 5-tuples cover all ECMP paths (paper §4.1).

The Controller must pick enough inter-ToR 5-tuples that, with probability at
least ``P``, every one of the ``N`` parallel cross-ToR paths carries at
least one probe flow.  Equation 1 in the paper is the coupon-collector tail
bound via inclusion-exclusion::

    miss(k) = sum_{i=1..N} (-1)^(i+1) * C(N, i) * (1 - i/N)^k

``miss(k)`` is the probability that at least one of the N paths is missed
by k uniformly-hashed 5-tuples; the Controller takes the smallest
``k >= N`` with ``miss(k) <= 1 - P`` (the paper uses P = 0.99).
"""

from __future__ import annotations

from math import comb


def miss_probability(n_paths: int, k_tuples: int) -> float:
    """P(at least one of ``n_paths`` gets no probe flow from ``k_tuples``).

    Computed by inclusion-exclusion assuming ECMP hashes each 5-tuple
    uniformly and independently onto one of the paths.
    """
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    if k_tuples < 0:
        raise ValueError(f"k_tuples must be >= 0, got {k_tuples}")
    total = 0.0
    for i in range(1, n_paths + 1):
        term = comb(n_paths, i) * (1.0 - i / n_paths) ** k_tuples
        total += term if i % 2 == 1 else -term
    # Alternating-series round-off can leave tiny negatives near zero.
    return min(1.0, max(0.0, total))


def required_tuples(n_paths: int, coverage_probability: float = 0.99,
                    *, max_k: int = 1_000_000) -> int:
    """Equation 1: smallest ``k >= N`` with miss(k) <= 1 - P.

    ``max_k`` bounds the search; hitting it raises, because a silent cap
    would under-cover links.
    """
    if not 0.0 < coverage_probability < 1.0:
        raise ValueError(
            f"coverage probability must be in (0, 1): {coverage_probability}")
    target = 1.0 - coverage_probability
    low = max(1, n_paths)
    if miss_probability(n_paths, low) <= target:
        return low
    # miss(k) is monotone decreasing in k: bracket exponentially, then
    # binary-search the exact arg-min.
    high = low
    while miss_probability(n_paths, high) > target:
        high *= 2
        if high > max_k:
            raise RuntimeError(
                f"no k <= {max_k} covers {n_paths} paths "
                f"at P={coverage_probability}")
    while low + 1 < high:
        mid = (low + high) // 2
        if miss_probability(n_paths, mid) <= target:
            high = mid
        else:
            low = mid
    return high


def expected_paths_covered(n_paths: int, k_tuples: int) -> float:
    """E[number of distinct paths hit by k uniform 5-tuples]."""
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    return n_paths * (1.0 - (1.0 - 1.0 / n_paths) ** k_tuples)
