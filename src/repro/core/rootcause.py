"""Automatic root-cause diagnosis (paper §7.5 "future work" #1).

R-Pingmesh detects and *locates* anomalies, but "inferring the root cause
of these anomalies requires our operators to further examine anomalous
counters and logs".  The paper proposes integrating probing results with
device counters and simple decision procedures; this module implements
that integration over the counters the simulated devices expose:

* per-port CRC error counters and up/down transition (flap) counters,
* switch PFC-watchdog/deadlock state and ACL rule tables,
* RNIC local drop counters (GID mismatch, routing failures, corruption),
* host CPU load and RNIC PCIe link speed.

Every hypothesis names the Table 2 row it corresponds to, its confidence,
and the evidence behind it — the "decision tree" the paper sketches, kept
deliberately explainable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core.records import Problem, ProblemCategory

# PCIe below this fraction of nominal counts as downgraded.
PCIE_DEGRADED_FRACTION = 0.5
# CPU load above this is "overloaded" for diagnosis purposes.
CPU_OVERLOAD_LOAD = 0.75
# Flap transitions within the last few minutes that indicate flapping.
FLAP_COUNT_THRESHOLD = 4


@dataclass
class Hypothesis:
    """One candidate root cause with its evidence."""

    table2_row: int
    cause: str
    confidence: float            # 0..1, for ranking only
    evidence: str

    def __str__(self) -> str:
        return (f"#{self.table2_row} {self.cause} "
                f"(confidence {self.confidence:.0%}; {self.evidence})")


@dataclass
class Diagnosis:
    """Ranked hypotheses for one located problem."""

    problem: Problem
    hypotheses: list[Hypothesis] = field(default_factory=list)

    @property
    def best(self) -> Hypothesis | None:
        return self.hypotheses[0] if self.hypotheses else None

    def sort(self) -> None:
        self.hypotheses.sort(key=lambda h: -h.confidence)


class RootCauseAdvisor:
    """Reads device counters to explain located problems."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        # Nominal PCIe rate (what the RNICs ship with).
        self._nominal_pcie_gbps = 512.0

    def diagnose(self, problem: Problem) -> Diagnosis:
        """Produce ranked root-cause hypotheses for one problem."""
        diagnosis = Diagnosis(problem=problem)
        handler = {
            ProblemCategory.SWITCH_NETWORK_PROBLEM: self._diagnose_link,
            ProblemCategory.RNIC_PROBLEM: self._diagnose_rnic,
            ProblemCategory.HIGH_RTT: self._diagnose_high_rtt,
            ProblemCategory.HIGH_PROCESSING_DELAY: self._diagnose_host,
            ProblemCategory.HOST_DOWN: self._diagnose_host_down,
        }.get(problem.category)
        if handler is not None:
            handler(problem, diagnosis)
        if not diagnosis.hypotheses:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=0, cause="unknown — inspect device logs",
                confidence=0.1, evidence="no counter anomalies found"))
        diagnosis.sort()
        return diagnosis

    # -- switch-network problems -------------------------------------------------

    def _diagnose_link(self, problem: Problem,
                       diagnosis: Diagnosis) -> None:
        if "->" not in problem.locus:
            return
        a, b = problem.locus.split("->")
        try:
            link = self.cluster.topology.link(a, b)
        except KeyError:
            return
        pair = link.pair

        if pair.transition_count >= FLAP_COUNT_THRESHOLD:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=1, cause="switch port flapping",
                confidence=0.9,
                evidence=f"{pair.transition_count} up/down transitions "
                         f"on {pair.name}"))
        if link.crc_errors > 0:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=2,
                cause="packet corruption (damaged fiber / dusty optics)",
                confidence=0.85,
                evidence=f"{link.crc_errors} CRC errors on {link.name}"))
        if link.pfc_deadlocked:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=5, cause="PFC deadlock (watchdog not firing)",
                confidence=0.95,
                evidence=f"persistent mutual pause on {pair.name}"))
        if not link.pfc_enabled or not link.pfc_headroom_ok:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=9,
                cause="PFC unconfigured or misconfigured headroom",
                confidence=0.8,
                evidence=f"lossy RoCE queue configured on {link.name}"))
        for node_name in (a, b):
            node = self.cluster.topology.nodes.get(node_name)
            if node is not None and node.is_switch \
                    and node.acl.rule_count > 0:
                diagnosis.hypotheses.append(Hypothesis(
                    table2_row=8, cause="switch ACL misconfiguration",
                    confidence=0.7,
                    evidence=f"{node.acl.rule_count} deny rules on "
                             f"{node_name}"))

    # -- RNIC problems -------------------------------------------------------------

    def _diagnose_rnic(self, problem: Problem,
                       diagnosis: Diagnosis) -> None:
        try:
            rnic = self.cluster.rnic(problem.locus)
        except KeyError:
            return
        drops = rnic.local_drops

        if not rnic.admin_up:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=3, cause="RNIC down", confidence=0.95,
                evidence="link state: down"))
        if rnic.flapped_recently(self.cluster.sim.now,
                                 window_ns=300_000_000_000):
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=1,
                cause="RNIC flapping (check cable compatibility)",
                confidence=0.9, evidence="recent port state transitions"))
        if drops.get("routing_unconfigured", 0) > 0:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=6, cause="missing RoCE routing configuration",
                confidence=0.9,
                evidence=f"{drops['routing_unconfigured']} sends failed "
                         "to resolve a route"))
        if drops.get("gid_index_missing", 0) or drops.get("gid_mismatch", 0):
            count = (drops.get("gid_index_missing", 0)
                     + drops.get("gid_mismatch", 0))
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=7, cause="RNIC GID index missing",
                confidence=0.85, evidence=f"{count} GID lookup failures"))
        corruption = (drops.get("tx_corruption", 0)
                      + drops.get("rx_corruption", 0))
        if corruption:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=2, cause="packet corruption at the RNIC/cable",
                confidence=0.8, evidence=f"{corruption} corrupted packets"))

    # -- latency problems -------------------------------------------------------------

    def _diagnose_high_rtt(self, problem: Problem,
                           diagnosis: Diagnosis) -> None:
        # RNIC locus: check PCIe (PFC-storm chain, rows 13/14).
        if "->" not in problem.locus:
            try:
                rnic = self.cluster.rnic(problem.locus)
            except KeyError:
                return
            if rnic.pcie_gbps < self._nominal_pcie_gbps \
                    * PCIE_DEGRADED_FRACTION:
                diagnosis.hypotheses.append(Hypothesis(
                    table2_row=13,
                    cause="PCIe downgrade or ACS/ATS misconfiguration "
                          "-> PFC storm",
                    confidence=0.9,
                    evidence=f"PCIe at {rnic.pcie_gbps:.0f} Gb/s vs "
                             f"{self._nominal_pcie_gbps:.0f} nominal"))
            return
        # Link locus: congestion (rows 10/11).
        a, b = problem.locus.split("->")
        try:
            link = self.cluster.topology.link(a, b)
        except KeyError:
            return
        if link.utilization() > 0.9 or link.queue_bytes > 0:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=10,
                cause="network congestion (hash imbalance or "
                      "inter-service interference)",
                confidence=0.8,
                evidence=f"utilization {link.utilization():.0%}, queue "
                         f"{link.queue_bytes / 1e6:.1f} MB"))

    def _diagnose_host(self, problem: Problem,
                       diagnosis: Diagnosis) -> None:
        host = self.cluster.hosts.get(problem.locus)
        if host is None:
            return
        if host.cpu.load >= CPU_OVERLOAD_LOAD:
            diagnosis.hypotheses.append(Hypothesis(
                table2_row=12, cause="CPU overload",
                confidence=0.9,
                evidence=f"host load {host.cpu.load:.0%}"))

    def _diagnose_host_down(self, problem: Problem,
                            diagnosis: Diagnosis) -> None:
        diagnosis.hypotheses.append(Hypothesis(
            table2_row=4, cause="accidental host down",
            confidence=0.9,
            evidence="Agent stopped uploading; all RNICs unreachable"))
