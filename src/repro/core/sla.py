"""SLA tracking (paper §4.3.4 / §5, and the Figure 5 series).

Per 20-second analysis window, for the whole cluster network and for the
service network separately, the Analyzer reports:

* RNIC drop rate and switch-network drop rate (timeouts attributed per
  §4.3.1-4.3.2 over total probes),
* P50..P999 of network RTT,
* P50..P999 of end-host processing delay (prober + responder samples).

§7.4's aggregation caveat is honoured: aggregates below
``MIN_SAMPLES_FOR_AGGREGATION`` samples are marked unreliable — a service
using two servers under a ToR must not produce a "50% ToR drop rate".

Percentile storage is pluggable (DESIGN.md §11): the default
:class:`~repro.sim.stats.PercentileTracker` keeps every sample exactly;
``RPingmeshConfig(sla_sketch=True)`` swaps in the fixed-memory mergeable
:class:`~repro.sim.sketch.QuantileSketch` via :func:`tracker_factory`.
Both answer ``None`` on empty, so the reporting surface is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Optional, Union

from repro.sim.sketch import QuantileSketch
from repro.sim.stats import PercentileTracker

# Below this many probes an aggregate is statistically meaningless (§7.4).
MIN_SAMPLES_FOR_AGGREGATION = 20

Tracker = Union[PercentileTracker, QuantileSketch]
TrackerFactory = Callable[[], Tracker]


def tracker_factory(config=None) -> TrackerFactory:
    """The percentile-store constructor a config selects.

    ``None`` (or ``sla_sketch=False``) keeps exact sample retention;
    sketch mode trades <= ``sketch_relative_accuracy`` relative error for
    a fixed per-window footprint and order-independent mergeability.
    """
    if config is not None and config.sla_sketch:
        return partial(QuantileSketch, config.sketch_relative_accuracy)
    return PercentileTracker


@dataclass
class SlaWindow:
    """One scope's (cluster or service) SLA numbers for one window."""

    scope: str
    window_start_ns: int
    window_end_ns: int
    probes_total: int = 0
    probes_ok: int = 0
    timeouts_rnic: int = 0
    timeouts_switch: int = 0
    timeouts_non_network: int = 0     # host down, QPN reset, agent noise
    rtt: Tracker = field(default_factory=PercentileTracker)
    processing: Tracker = field(default_factory=PercentileTracker)

    @property
    def reliable(self) -> bool:
        """Whether the sample count supports aggregation (§7.4)."""
        return self.probes_total >= MIN_SAMPLES_FOR_AGGREGATION

    @property
    def rnic_drop_rate(self) -> float:
        """Timeouts attributed to RNIC problems / total probes."""
        return self.timeouts_rnic / self.probes_total if self.probes_total else 0.0

    @property
    def switch_drop_rate(self) -> float:
        """Timeouts attributed to switch-network problems / total probes."""
        return (self.timeouts_switch / self.probes_total
                if self.probes_total else 0.0)

    @property
    def drop_rate(self) -> float:
        """All network-attributed timeouts / total probes."""
        return ((self.timeouts_rnic + self.timeouts_switch)
                / self.probes_total if self.probes_total else 0.0)

    def rtt_percentiles(self) -> Optional[dict[str, float]]:
        """Network RTT distribution (None when no successful probes)."""
        return self.rtt.summary()

    def processing_percentiles(self) -> Optional[dict[str, float]]:
        """End-host processing delay distribution."""
        return self.processing.summary()

    def memory_bytes(self) -> int:
        """Estimated footprint of this window's percentile stores."""
        return 256 + self.rtt.memory_bytes() + self.processing.memory_bytes()


@dataclass
class SlaReport:
    """Cluster + service SLA for one analysis window.

    ``tracker`` picks the percentile store for both scopes; it is consumed
    during ``__post_init__`` and not retained.
    """

    window_start_ns: int
    window_end_ns: int
    cluster: SlaWindow = field(default=None)  # type: ignore[assignment]
    service: SlaWindow = field(default=None)  # type: ignore[assignment]
    tracker: Optional[TrackerFactory] = None

    def __post_init__(self) -> None:
        make = self.tracker if self.tracker is not None else PercentileTracker
        self.tracker = None
        if self.cluster is None:
            self.cluster = SlaWindow("cluster", self.window_start_ns,
                                     self.window_end_ns,
                                     rtt=make(), processing=make())
        if self.service is None:
            self.service = SlaWindow("service", self.window_start_ns,
                                     self.window_end_ns,
                                     rtt=make(), processing=make())

    def memory_bytes(self) -> int:
        """Estimated footprint of both scopes."""
        return self.cluster.memory_bytes() + self.service.memory_bytes()


class SlaHistory:
    """Rolling store of per-window reports, the source for Figure 5."""

    def __init__(self, max_windows: int = 100_000):
        self.max_windows = max_windows
        self.reports: list[SlaReport] = []

    def append(self, report: SlaReport) -> None:
        """Add one window's report."""
        self.reports.append(report)
        if len(self.reports) > self.max_windows:
            self.reports.pop(0)

    def latest(self) -> Optional[SlaReport]:
        """Most recent report, if any."""
        return self.reports[-1] if self.reports else None

    def memory_bytes(self) -> int:
        """Estimated footprint across all retained reports."""
        return 64 + sum(r.memory_bytes() for r in self.reports)

    def series(self, scope: str, metric: str) -> list[tuple[int, float]]:
        """(window_start, value) pairs for plotting.

        ``scope`` is ``cluster`` or ``service``; ``metric`` is one of
        ``drop_rate``, ``rnic_drop_rate``, ``switch_drop_rate``,
        ``rtt_p50``, ``rtt_p99``, ``processing_p50``, ``processing_p99``.
        Windows without samples for a percentile metric are skipped.
        """
        out: list[tuple[int, float]] = []
        for report in self.reports:
            window: SlaWindow = getattr(report, scope)
            value = self._metric_value(window, metric)
            if value is not None:
                out.append((report.window_start_ns, value))
        return out

    @staticmethod
    def _metric_value(window: SlaWindow, metric: str) -> Optional[float]:
        if metric in ("drop_rate", "rnic_drop_rate", "switch_drop_rate"):
            return getattr(window, metric)
        if metric.startswith("rtt_"):
            stats = window.rtt_percentiles()
            return stats[metric[len("rtt_"):]] if stats else None
        if metric.startswith("processing_"):
            stats = window.processing_percentiles()
            return stats[metric[len("processing_"):]] if stats else None
        raise ValueError(f"unknown metric: {metric}")
