"""Text dashboards for SLA reports and problem feeds.

The production system feeds Grafana-style dashboards; the reproduction
renders the same content as fixed-width text, used by the CLI and handy in
tests and examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from repro.core.analyzer import Analyzer
from repro.core.records import Problem
from repro.core.sla import SlaWindow

if TYPE_CHECKING:
    from repro.core.system import RPingmesh
    from repro.obs import Observability

# Eight-level block ramp for terminal sparklines.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def render_sparkline(values: Iterable[Optional[float]], *,
                     width: int = 48) -> str:
    """Render a numeric series as a unicode sparkline.

    ``None`` entries (no sample that tick) render as spaces, holding
    their place in the timeline.  A constant series renders at the
    middle level; a single point likewise.  Only the most recent
    ``width`` entries are drawn.
    """
    window = list(values)[-width:]
    present = [v for v in window if v is not None]
    if not present:
        return " " * len(window)  # all gaps still hold the timeline
    lo, hi = min(present), max(present)
    mid = SPARK_LEVELS[len(SPARK_LEVELS) // 2]
    out = []
    for value in window:
        if value is None:
            out.append(" ")
        elif hi == lo:
            out.append(mid)
        else:
            index = int((value - lo) / (hi - lo) * (len(SPARK_LEVELS) - 1))
            out.append(SPARK_LEVELS[index])
    return "".join(out)


def _fmt_ns_as_us(ns: Optional[float]) -> str:
    """Render a nanosecond value scaled to microseconds ("-" if absent)."""
    return "-" if ns is None else f"{ns / 1000:8.1f}us"


def _percentile_line(label: str,
                     percentiles: Mapping[str, float]) -> str:
    """One p50/p90/p99/p999 row; missing keys render as "-"."""
    return (f"  {label:<5} "
            + " ".join(f"{q}={_fmt_ns_as_us(percentiles.get(q))}"
                       for q in ("p50", "p90", "p99", "p999")))


def render_sla_window(window: SlaWindow) -> str:
    """One scope's SLA block."""
    lines = [f"[{window.scope}] probes={window.probes_total} "
             f"ok={window.probes_ok} "
             f"rnic_drop={window.rnic_drop_rate:.4f} "
             f"switch_drop={window.switch_drop_rate:.4f}"
             + ("" if window.reliable else "  (UNRELIABLE: few samples)")]
    rtt = window.rtt_percentiles()
    if rtt:
        lines.append(_percentile_line("rtt", rtt))
    proc = window.processing_percentiles()
    if proc:
        lines.append(_percentile_line("proc", proc))
    return "\n".join(lines)


def render_problem(problem: Problem) -> str:
    """One problem line."""
    priority = problem.priority.value if problem.priority else "??"
    origin = "service-tracing" if problem.from_service_tracing \
        else "cluster-monitoring"
    return (f"[{priority}] {problem.category.value:<24} {problem.locus:<28} "
            f"evidence={problem.evidence_count:<5} via {origin}")


def render_analyzer_state(analyzer: Analyzer, *,
                          problem_limit: int = 10) -> str:
    """The operator's one-page view: latest SLA + recent problems."""
    lines = ["=" * 72]
    report = analyzer.sla.latest()
    if report is None:
        lines.append("no analysis windows yet")
    else:
        start_s = report.window_start_ns / 1e9
        end_s = report.window_end_ns / 1e9
        lines.append(f"analysis window {start_s:.0f}s - {end_s:.0f}s")
        lines.append(render_sla_window(report.cluster))
        if report.service.probes_total:
            lines.append(render_sla_window(report.service))
    recent = analyzer.problems[-problem_limit:]
    if recent:
        lines.append("-" * 72)
        lines.append(f"recent problems (last {len(recent)}):")
        lines.extend("  " + render_problem(p) for p in recent)
    # INT fusion tallies, when an in-band telemetry provider is attached.
    fusion = getattr(analyzer, "fusion", None)
    if fusion is not None and getattr(analyzer, "int_provider",
                                      None) is not None:
        lines.append(f"int fusion: sharpened={fusion.sharpened} "
                     f"annotated={fusion.annotated} added={fusion.added} "
                     f"ties_broken={fusion.ties_broken}")
    verdict = "INNOCENT" if analyzer.network_innocent() else "SUSPECT"
    lines.append("-" * 72)
    lines.append(f"service-network verdict: {verdict}")
    lines.append("=" * 72)
    return "\n".join(lines)


def render_control_plane(system: "RPingmesh", *,
                         endpoint_limit: int = 12) -> str:
    """Management-network health: per-endpoint counters + upload channels.

    Endpoints with drops, retries, or timeouts sort first so a degraded
    control plane is visible even on large clusters.
    """
    net = system.network
    lines = ["=" * 72,
             f"control plane: sent={net.messages_sent} "
             f"delivered={net.messages_delivered} "
             f"dropped={net.messages_dropped}"]
    analyzer = system.analyzer
    lines.append(f"analyzer ingest: accepted={analyzer.ingest_accepted} "
                 f"dropped={analyzer.ingest_dropped} "
                 f"queued={analyzer.ingest_backlog}")
    # Sharded deployments: the ingest bound is per shard, so one hot pod
    # can drop batches while the totals above look healthy.
    for shard in getattr(analyzer, "shards", []):
        lines.append(f"  shard{shard.shard_index}: "
                     f"accepted={shard.ingest_accepted} "
                     f"dropped={shard.ingest_dropped} "
                     f"queued={shard.ingest_backlog} "
                     f"windows={len(shard.windows)}")
    for name, backend in sorted(system.backends.items()):
        cost = backend.cost()
        lines.append(f"  backend {name:<9} "
                     f"verdicts={len(backend.verdicts()):<4} "
                     f"probe_bytes={cost.probe_bytes:<9} "
                     f"telemetry_bytes={cost.telemetry_bytes}")

    def unhealth(name: str) -> tuple:
        s = net.stats_for(name)
        return (s.dropped + s.retries + s.request_timeouts, s.sent)

    names = sorted(net.endpoints(), key=unhealth, reverse=True)
    shown = names[:endpoint_limit]
    for name in shown:
        s = net.stats_for(name)
        line = (f"  {name:<20} sent={s.sent:<6} recv={s.received:<6} "
                f"drop={s.dropped:<4} retry={s.retries:<4} "
                f"timeout={s.request_timeouts:<4} "
                f"lat={s.avg_latency_ns() / 1000:.1f}us")
        lines.append(line)
    if len(names) > len(shown):
        lines.append(f"  ... {len(names) - len(shown)} more endpoints")

    obs = system.obs
    if obs.metrics_enabled:
        snap = obs.metrics.snapshot()
        interesting = [k for k in snap
                       if k.startswith("repro_controlplane_")
                       and "{" not in k]
        if interesting:
            lines.append("  registry: "
                         + " ".join(f"{k.removeprefix('repro_controlplane_')}"
                                    f"={snap[k]}" for k in interesting))

    backlogged = [(name, agent.uploads) for name, agent in
                  sorted(system.agents.items())
                  if agent.uploads.backlog or agent.uploads.retries
                  or agent.uploads.dropped_overflow
                  or agent.uploads.dropped_crash or agent.uploads.rejected]
    if backlogged:
        lines.append("-" * 72)
        lines.append("upload channels with pressure:")
        for name, ch in backlogged[:endpoint_limit]:
            lines.append(
                f"  {name:<20} backlog={ch.backlog:<4} "
                f"acked={ch.acked:<6} retries={ch.retries:<4} "
                f"rejected={ch.rejected:<4} "
                f"lost={ch.dropped_overflow + ch.dropped_crash}")
    lines.append("=" * 72)
    return "\n".join(lines)


def render_fleet(scorecard, *, scenario_limit: int = 12) -> str:
    """One-page view of a merged fleet sweep.

    Accepts a :class:`~repro.fleet.merge.FleetScorecard` or its
    ``as_dict()`` / JSON-artifact form (duck-typed, so the core layer
    does not import the fleet package).
    """
    data = (scorecard.as_dict() if hasattr(scorecard, "as_dict")
            else dict(scorecard))
    sweep = data.get("sweep", {})
    det = data.get("determinism", {})
    lines = ["=" * 72,
             f"fleet sweep: jobs={sweep.get('unique_jobs', '?')} "
             f"runs={sweep.get('runs_merged', '?')} "
             f"scenarios={sweep.get('scenarios', '?')}"]
    verdict = "CONSISTENT" if det.get("consistent", True) else "MISMATCH"
    lines.append(f"determinism: {verdict} "
                 f"(checked={det.get('checked_jobs', 0)} "
                 f"duplicated={det.get('duplicated_jobs', 0)})")
    for mismatch in det.get("mismatches", []):
        lines.append(f"  !! {mismatch['scenario']} seed={mismatch['seed']} "
                     f"digests={len(mismatch['digests'])}")
    lines.append("-" * 72)
    scenarios = data.get("scenarios", {})
    for label in sorted(scenarios)[:scenario_limit]:
        entry = scenarios[label]
        d = entry["detection"]
        lines.append(f"{label}")
        lines.append(f"  seeds={entry['seeds']} "
                     f"recall={d['recall']:.3f} precision={d['precision']:.3f} "
                     f"detected={d['faults_detected']}/{d['faults_total']} "
                     f"localized={d['faults_localized']}")
        ttd = d.get("time_to_detect_ms")
        if ttd:
            lines.append(f"  time-to-detect ms: min={ttd['min']} "
                         f"mean={ttd['mean']} max={ttd['max']}")
        for metric, band in sorted(entry.get("sla_bands", {}).items()):
            lines.append(f"  {metric:<20} min={band['min']:<12} "
                         f"mean={band['mean']:<12} max={band['max']}")
    if len(scenarios) > scenario_limit:
        lines.append(f"  ... {len(scenarios) - scenario_limit} "
                     f"more scenarios")
    totals = data.get("metrics_totals", {})
    if totals:
        lines.append("-" * 72)
        lines.append("fleet-wide totals:")
        lines.extend(f"  {series} = {value}"
                     for series, value in sorted(totals.items()))
    lines.append("=" * 72)
    return "\n".join(lines)


def render_observability(obs: "Observability", *, series_limit: int = 24,
                         profile_top: int = 10) -> str:
    """One-page view of the observability layer itself.

    Shows whichever sub-systems are on: tracer span bookkeeping, the
    most load-bearing metric series (drops, then totals), and the
    profiler's hottest callback sites.
    """
    lines = ["=" * 72]
    if obs.tracing:
        summary = obs.tracer.summary()
        lines.append("tracer: " + " ".join(f"{k}={v}"
                                           for k, v in summary.items()))
    if obs.metrics_enabled:
        snap = obs.metrics.snapshot()
        drops = [k for k in snap if "_drop" in k and snap[k]]
        rest = [k for k in snap
                if "_bucket" not in k and k not in drops]
        chosen = (drops + rest)[:series_limit]
        lines.append(f"metrics: {len(snap)} series")
        lines.extend(f"  {k} = {snap[k]}" for k in chosen)
        if len(snap) > len(chosen):
            lines.append(f"  ... {len(snap) - len(chosen)} more series")
    if obs.profiling and obs.profiler is not None:
        lines.append(obs.profiler.render(top=profile_top))
    if len(lines) == 1:
        lines.append("observability: everything off (default)")
    lines.append("=" * 72)
    return "\n".join(lines)
