"""Text dashboards for SLA reports and problem feeds.

The production system feeds Grafana-style dashboards; the reproduction
renders the same content as fixed-width text, used by the CLI and handy in
tests and examples.
"""

from __future__ import annotations

from typing import Optional

from repro.core.analyzer import Analyzer
from repro.core.records import Problem
from repro.core.sla import SlaWindow


def _fmt_us(ns: Optional[float]) -> str:
    return "-" if ns is None else f"{ns / 1000:8.1f}us"


def render_sla_window(window: SlaWindow) -> str:
    """One scope's SLA block."""
    lines = [f"[{window.scope}] probes={window.probes_total} "
             f"ok={window.probes_ok} "
             f"rnic_drop={window.rnic_drop_rate:.4f} "
             f"switch_drop={window.switch_drop_rate:.4f}"
             + ("" if window.reliable else "  (UNRELIABLE: few samples)")]
    rtt = window.rtt_percentiles()
    if rtt:
        lines.append(
            f"  rtt   p50={_fmt_us(rtt['p50'])} p90={_fmt_us(rtt['p90'])} "
            f"p99={_fmt_us(rtt['p99'])} p999={_fmt_us(rtt['p999'])}")
    proc = window.processing_percentiles()
    if proc:
        lines.append(
            f"  proc  p50={_fmt_us(proc['p50'])} p90={_fmt_us(proc['p90'])} "
            f"p99={_fmt_us(proc['p99'])} p999={_fmt_us(proc['p999'])}")
    return "\n".join(lines)


def render_problem(problem: Problem) -> str:
    """One problem line."""
    priority = problem.priority.value if problem.priority else "??"
    origin = "service-tracing" if problem.from_service_tracing \
        else "cluster-monitoring"
    return (f"[{priority}] {problem.category.value:<24} {problem.locus:<28} "
            f"evidence={problem.evidence_count:<5} via {origin}")


def render_analyzer_state(analyzer: Analyzer, *,
                          problem_limit: int = 10) -> str:
    """The operator's one-page view: latest SLA + recent problems."""
    lines = ["=" * 72]
    report = analyzer.sla.latest()
    if report is None:
        lines.append("no analysis windows yet")
    else:
        start_s = report.window_start_ns / 1e9
        end_s = report.window_end_ns / 1e9
        lines.append(f"analysis window {start_s:.0f}s - {end_s:.0f}s")
        lines.append(render_sla_window(report.cluster))
        if report.service.probes_total:
            lines.append(render_sla_window(report.service))
    recent = analyzer.problems[-problem_limit:]
    if recent:
        lines.append("-" * 72)
        lines.append(f"recent problems (last {len(recent)}):")
        lines.extend("  " + render_problem(p) for p in recent)
    verdict = "INNOCENT" if analyzer.network_innocent() else "SUSPECT"
    lines.append("-" * 72)
    lines.append(f"service-network verdict: {verdict}")
    lines.append("=" * 72)
    return "\n".join(lines)
