"""Record types flowing between Agent, Controller, and Analyzer."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.host.rnic import CommInfo
from repro.net.addresses import FiveTuple
from repro.net.traceroute import PathRecord


class ProbeKind(Enum):
    """Which probing function issued a probe (§3.2)."""

    TOR_MESH = "tor_mesh"
    INTER_TOR = "inter_tor"
    SERVICE_TRACING = "service_tracing"

    @property
    def is_cluster_monitoring(self) -> bool:
        """ToR-mesh and inter-ToR probing belong to Cluster Monitoring."""
        return self in (ProbeKind.TOR_MESH, ProbeKind.INTER_TOR)


@dataclass(frozen=True, slots=True)
class PinglistEntry:
    """One probing target handed to an Agent.

    ``src_port`` fixes the outer 5-tuple (and therefore the ECMP path); for
    service tracing it equals the traced service flow's source port.
    """

    kind: ProbeKind
    target_rnic: str           # topology/RNIC name (for bookkeeping)
    target: CommInfo           # ip + gid + probe-QP QPN
    src_port: int


@dataclass(slots=True)
class ProbeResult:
    """One completed (or timed-out) probe, as uploaded to the Analyzer.

    Timestamps follow Figure 4's numbering; all `*_ns` delays are computed
    on the Agent, each from a single clock, so no entry here depends on any
    cross-clock synchronisation.
    """

    kind: ProbeKind
    seq: int
    prober_rnic: str
    prober_host: str
    target_rnic: str
    target_ip: str
    target_qpn: int            # QPN the probe addressed (QPN-reset evidence)
    five_tuple: FiveTuple
    issued_at_ns: int          # simulation time the probe was posted
    completed_at_ns: Optional[int] = None
    timeout: bool = False
    # SLA metrics (None on timeout):
    network_rtt_ns: Optional[int] = None
    prober_processing_ns: Optional[int] = None
    responder_processing_ns: Optional[int] = None
    # Freshest traced paths for this 5-tuple and its ACK (None if untraced):
    probe_path: Optional[PathRecord] = None
    ack_path: Optional[PathRecord] = None

    @property
    def success(self) -> bool:
        """Probe completed inside the timeout."""
        return not self.timeout


@dataclass(slots=True)
class AgentUpload:
    """One 5-second batch of probe results from one Agent (§5)."""

    host: str
    uploaded_at_ns: int
    results: list[ProbeResult] = field(default_factory=list)


class ProblemCategory(Enum):
    """Analyzer verdict categories (§4.3)."""

    HOST_DOWN = "host_down"               # non-network
    QPN_RESET = "qpn_reset"               # probe noise
    AGENT_CPU_NOISE = "agent_cpu_noise"   # Figure 6-right false positives
    RNIC_PROBLEM = "rnic_problem"
    SWITCH_NETWORK_PROBLEM = "switch_network_problem"
    HIGH_RTT = "high_rtt"                 # congestion / bottleneck signal
    HIGH_PROCESSING_DELAY = "high_processing_delay"


class Priority(Enum):
    """Service impact priorities (§2.4)."""

    P0 = "P0"   # severe service impact: resolve immediately
    P1 = "P1"   # in the service network, impact tolerable: fix on benefit
    P2 = "P2"   # outside the service network


@dataclass(slots=True)
class Problem:
    """A detected-and-located problem, as reported by the Analyzer."""

    category: ProblemCategory
    locus: str                  # device or link name (or host)
    detected_at_ns: int
    window_start_ns: int
    evidence_count: int
    from_service_tracing: bool
    priority: Optional[Priority] = None
    detail: str = ""

    def key(self) -> tuple[str, str]:
        """Dedup key used when tracking problems across windows."""
        return (self.category.value, self.locus)
