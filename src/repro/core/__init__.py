"""R-Pingmesh core: Agent, Controller, Analyzer, and supporting math."""

from repro.core.agent import Agent
from repro.core.analyzer import Analyzer, ServiceMonitor, WindowAnalysis
from repro.core.config import RPingmeshConfig
from repro.core.controller import Controller
from repro.core.coverage import (expected_paths_covered, miss_probability,
                                 required_tuples)
from repro.core.localization import (Localization, detect_abnormal_links,
                                     detect_abnormal_switches, localize)
from repro.core.records import (AgentUpload, PinglistEntry, Priority,
                                ProbeKind, ProbeResult, Problem,
                                ProblemCategory)
from repro.core.aggregation import HierarchicalAggregator, TierAggregate
from repro.core.audit import CoverageReport, ProbeCoverageAuditor
from repro.core.dashboard import render_analyzer_state
from repro.core.railprobe import OneWayResult, RailProber
from repro.core.remediation import (RemediationAction, RemediationPolicy,
                                    Remediator)
from repro.core.rootcause import Diagnosis, Hypothesis, RootCauseAdvisor
from repro.core.sla import (MIN_SAMPLES_FOR_AGGREGATION, SlaHistory,
                            SlaReport, SlaWindow)
from repro.core.system import RPingmesh
from repro.core.tracker import ProblemTracker, Ticket, TicketState

__all__ = [
    "RPingmesh",
    "Agent",
    "Controller",
    "Analyzer",
    "ServiceMonitor",
    "WindowAnalysis",
    "RPingmeshConfig",
    "required_tuples",
    "miss_probability",
    "expected_paths_covered",
    "Localization",
    "detect_abnormal_links",
    "detect_abnormal_switches",
    "localize",
    "ProbeKind",
    "ProbeResult",
    "PinglistEntry",
    "AgentUpload",
    "Problem",
    "ProblemCategory",
    "Priority",
    "SlaHistory",
    "SlaReport",
    "SlaWindow",
    "MIN_SAMPLES_FOR_AGGREGATION",
    "HierarchicalAggregator",
    "TierAggregate",
    "render_analyzer_state",
    "RailProber",
    "OneWayResult",
    "Remediator",
    "RemediationPolicy",
    "RemediationAction",
    "RootCauseAdvisor",
    "Diagnosis",
    "Hypothesis",
    "ProblemTracker",
    "Ticket",
    "TicketState",
    "ProbeCoverageAuditor",
    "CoverageReport",
]
