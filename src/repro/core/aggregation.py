"""Hierarchical SLA aggregation (paper §7.4).

Cluster Monitoring aggregates probe results at multiple tiers — per
server, per ToR switch, per cluster — to evaluate SLAs at each level.  The
paper warns that doing the same in Service Tracing misleads: a service may
put only two servers under a ToR, and one failing server then reads as a
"50% ToR drop rate".  The root cause is aggregating too few samples, so:

* Cluster Monitoring aggregates at every tier (dense, uniform probing);
* Service Tracing aggregates only per server and for the whole service
  network;
* every aggregate carries its sample count and a ``reliable`` flag
  (>= MIN_SAMPLES_FOR_AGGREGATION samples), and consumers are expected to
  ignore unreliable cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cluster import Cluster
from repro.core.records import ProbeKind, ProbeResult
from repro.core.sla import (MIN_SAMPLES_FOR_AGGREGATION, Tracker,
                            TrackerFactory)
from repro.sim.stats import PercentileTracker


@dataclass
class TierAggregate:
    """Drop-rate/RTT aggregate for one entity at one tier."""

    tier: str                 # "server" | "tor" | "cluster" | "service"
    entity: str
    probes: int = 0
    timeouts: int = 0
    rtt: Tracker = field(default_factory=PercentileTracker)

    @property
    def drop_rate(self) -> float:
        return self.timeouts / self.probes if self.probes else 0.0

    @property
    def reliable(self) -> bool:
        """Whether this cell has enough samples to be trusted (§7.4)."""
        return self.probes >= MIN_SAMPLES_FOR_AGGREGATION

    def rtt_p99(self) -> Optional[float]:
        # Both tracker shapes answer None on empty (the shared contract).
        return self.rtt.p99()


class HierarchicalAggregator:
    """Builds per-tier aggregates from a window's probe results.

    ``tracker`` selects the percentile store per cell (exact tracker by
    default, sketches under ``sla_sketch`` configs).
    """

    def __init__(self, cluster: Cluster,
                 tracker: TrackerFactory = PercentileTracker):
        self.cluster = cluster
        self._tracker = tracker

    def _feed(self, aggregate: TierAggregate, result: ProbeResult) -> None:
        aggregate.probes += 1
        if result.timeout:
            aggregate.timeouts += 1
        elif result.network_rtt_ns is not None:
            aggregate.rtt.add(float(result.network_rtt_ns))

    def aggregate_cluster_monitoring(
            self, results: Iterable[ProbeResult]
            ) -> dict[str, dict[str, TierAggregate]]:
        """Server, ToR, and cluster tiers for Cluster Monitoring results.

        Each probe is attributed to its *target*: the entity whose health
        the probe tests.
        """
        tiers: dict[str, dict[str, TierAggregate]] = {
            "server": defaultdict_tier("server", self._tracker),
            "tor": defaultdict_tier("tor", self._tracker),
            "cluster": defaultdict_tier("cluster", self._tracker),
        }
        for result in results:
            if not result.kind.is_cluster_monitoring:
                continue
            host = self.cluster.host_of_rnic(result.target_rnic).name
            tor = self.cluster.tor_of(result.target_rnic)
            self._feed(tiers["server"][host], result)
            self._feed(tiers["tor"][tor], result)
            self._feed(tiers["cluster"]["cluster"], result)
        return {name: dict(table) for name, table in tiers.items()}

    def aggregate_service_tracing(
            self, results: Iterable[ProbeResult]
            ) -> dict[str, dict[str, TierAggregate]]:
        """Server tier + whole-service tier ONLY (§7.4's lesson)."""
        tiers: dict[str, dict[str, TierAggregate]] = {
            "server": defaultdict_tier("server", self._tracker),
            "service": defaultdict_tier("service", self._tracker),
        }
        for result in results:
            if result.kind != ProbeKind.SERVICE_TRACING:
                continue
            host = self.cluster.host_of_rnic(result.target_rnic).name
            self._feed(tiers["server"][host], result)
            self._feed(tiers["service"]["service"], result)
        return {name: dict(table) for name, table in tiers.items()}

    def misleading_tor_aggregates(
            self, results: Iterable[ProbeResult]
            ) -> list[TierAggregate]:
        """What per-ToR aggregation of Service Tracing *would* produce.

        Exists to demonstrate §7.4's trap: cells here routinely show
        extreme drop rates from a handful of samples.  Production code
        must not consume this; the test suite asserts the `reliable` flag
        exposes the problem.
        """
        table = defaultdict_tier("tor", self._tracker)
        for result in results:
            if result.kind != ProbeKind.SERVICE_TRACING:
                continue
            tor = self.cluster.tor_of(result.target_rnic)
            self._feed(table[tor], result)
        return list(table.values())


def defaultdict_tier(tier: str,
                     tracker: TrackerFactory = PercentileTracker
                     ) -> "_TierDict":
    """A dict creating TierAggregates labelled with ``tier`` on demand."""
    return _TierDict(tier, tracker)


class _TierDict(dict):
    """dict that materialises TierAggregate cells on first access."""

    def __init__(self, tier: str, tracker: TrackerFactory = PercentileTracker):
        super().__init__()
        self._tier = tier
        self._tracker = tracker

    def __missing__(self, key: str) -> TierAggregate:
        cell = TierAggregate(tier=self._tier, entity=key, rtt=self._tracker())
        self[key] = cell
        return cell
