"""Problem lifecycle tracking: dedup, open/resolve, ticket export.

The Analyzer emits a verdict per 20-second window, so a persistent fault
re-appears in every window it spans.  Operations counts *problems*, not
window verdicts — the paper's "207 problems in one month" is a deduped
figure.  The tracker folds window verdicts into tickets:

* a verdict for a (category, locus) pair with no open ticket **opens** one;
* further verdicts for the same pair refresh the ticket (last_seen,
  evidence accumulation, priority escalation — P2 may become P0 when the
  service starts using the device);
* a ticket with no verdict for ``resolve_after_windows`` windows is
  **resolved** (the fault cleared or was repaired).

Tickets serialise to plain dicts for export to JSON lines, which is what
an operator pipeline would ingest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.core.analyzer import Analyzer, WindowAnalysis
from repro.core.records import Priority, Problem, ProblemCategory

_PRIORITY_RANK = {Priority.P0: 0, Priority.P1: 1, Priority.P2: 2}


class TicketState(Enum):
    """Lifecycle states."""

    OPEN = "open"
    RESOLVED = "resolved"


@dataclass
class Ticket:
    """One deduplicated problem across its lifetime."""

    ticket_id: int
    category: ProblemCategory
    locus: str
    opened_at_ns: int
    last_seen_ns: int
    state: TicketState = TicketState.OPEN
    resolved_at_ns: Optional[int] = None
    windows_seen: int = 0
    total_evidence: int = 0
    worst_priority: Optional[Priority] = None
    from_service_tracing: bool = False

    def absorb(self, problem: Problem) -> None:
        """Fold one window verdict into the ticket."""
        self.last_seen_ns = problem.detected_at_ns
        self.windows_seen += 1
        self.total_evidence += problem.evidence_count
        self.from_service_tracing |= problem.from_service_tracing
        if problem.priority is not None:
            if (self.worst_priority is None
                    or _PRIORITY_RANK[problem.priority]
                    < _PRIORITY_RANK[self.worst_priority]):
                self.worst_priority = problem.priority

    @property
    def duration_ns(self) -> int:
        """Open duration (to resolution, or to last sighting if open)."""
        end = self.resolved_at_ns if self.resolved_at_ns is not None \
            else self.last_seen_ns
        return max(0, end - self.opened_at_ns)

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "ticket_id": self.ticket_id,
            "category": self.category.value,
            "locus": self.locus,
            "state": self.state.value,
            "opened_at_s": self.opened_at_ns / 1e9,
            "last_seen_s": self.last_seen_ns / 1e9,
            "resolved_at_s": (self.resolved_at_ns / 1e9
                              if self.resolved_at_ns is not None else None),
            "windows_seen": self.windows_seen,
            "total_evidence": self.total_evidence,
            "worst_priority": (self.worst_priority.value
                               if self.worst_priority else None),
            "from_service_tracing": self.from_service_tracing,
        }


class ProblemTracker:
    """Folds Analyzer windows into deduplicated tickets."""

    # Verdict categories that warrant a ticket (noise categories don't).
    TICKETED = {ProblemCategory.RNIC_PROBLEM,
                ProblemCategory.SWITCH_NETWORK_PROBLEM,
                ProblemCategory.HOST_DOWN,
                ProblemCategory.HIGH_RTT,
                ProblemCategory.HIGH_PROCESSING_DELAY}

    def __init__(self, *, resolve_after_windows: int = 3):
        if resolve_after_windows < 1:
            raise ValueError("resolve_after_windows must be >= 1")
        self.resolve_after_windows = resolve_after_windows
        self.tickets: list[Ticket] = []
        self._open: dict[tuple[str, str], Ticket] = {}
        self._quiet_counts: dict[tuple[str, str], int] = {}
        self._next_id = 1

    def observe_window(self, window: WindowAnalysis) -> list[Ticket]:
        """Process one window; returns tickets opened by this window."""
        opened: list[Ticket] = []
        seen_keys: set[tuple[str, str]] = set()
        for problem in window.problems:
            if problem.category not in self.TICKETED:
                continue
            key = problem.key()
            seen_keys.add(key)
            ticket = self._open.get(key)
            if ticket is None:
                ticket = Ticket(
                    ticket_id=self._next_id, category=problem.category,
                    locus=problem.locus,
                    opened_at_ns=problem.detected_at_ns,
                    last_seen_ns=problem.detected_at_ns)
                self._next_id += 1
                self._open[key] = ticket
                self.tickets.append(ticket)
                opened.append(ticket)
            ticket.absorb(problem)
            self._quiet_counts[key] = 0

        # Age out tickets that stayed quiet.
        for key, ticket in list(self._open.items()):
            if key in seen_keys:
                continue
            self._quiet_counts[key] = self._quiet_counts.get(key, 0) + 1
            if self._quiet_counts[key] >= self.resolve_after_windows:
                ticket.state = TicketState.RESOLVED
                ticket.resolved_at_ns = window.window_end_ns
                del self._open[key]
                del self._quiet_counts[key]
        return opened

    def attach(self, analyzer: Analyzer) -> None:
        """Auto-observe every future window of an Analyzer."""
        analyzer.add_window_listener(self.observe_window)

    # -- queries -----------------------------------------------------------------

    def open_tickets(self) -> list[Ticket]:
        """Currently open tickets."""
        return [t for t in self.tickets if t.state == TicketState.OPEN]

    def resolved_tickets(self) -> list[Ticket]:
        """Resolved tickets."""
        return [t for t in self.tickets if t.state == TicketState.RESOLVED]

    def ticket_count(self) -> int:
        """Total deduplicated problems — the paper's '207' style figure."""
        return len(self.tickets)

    def export_jsonl(self) -> str:
        """All tickets as JSON lines (operator-pipeline format)."""
        return "\n".join(json.dumps(t.to_dict()) for t in self.tickets)
