"""Automated mitigation of located problems (paper §7.5 directions 2-3).

The paper lists three future-work directions for minimising the impact of
hardware failures; this module implements the two that operate at the
network/service layer:

* **Port isolation** — when a switch port drops packets anomalously,
  decide whether to isolate it *based on impact* (§7.5 #2): isolating a
  port removes capacity and briefly perturbs routing, so it is worth doing
  only for a P0/P1 problem, or for a persistent P2.  Isolation here means
  marking the cable ``routed_around`` so ECMP stops offering it (the
  simulated analogue of shutting the port).
* **RNIC isolation in the service** (§7.5 #3) — when an RNIC goes down or
  drops packets during training, remove its connections from the job
  without restarting the task, so the barrel effect stops being paced by
  the dead flow.

Both actions are reversible and logged, so operators can audit what the
automation did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster import Cluster
from repro.core.records import Priority, Problem, ProblemCategory
from repro.services.dml import DmlJob


@dataclass
class RemediationAction:
    """One action the remediator took (or declined)."""

    time_ns: int
    kind: str                  # isolate_link | isolate_rnic | declined
    target: str
    reason: str


@dataclass
class RemediationPolicy:
    """When isolation is worth its cost (§7.5 #2: 'based on the impact')."""

    # Always isolate service-affecting (P0/P1) switch problems.
    isolate_service_affecting: bool = True
    # Isolate a P2 problem only after it persists this many windows.
    p2_persistence_windows: int = 3
    # Never isolate below this evidence count (transient blips).
    min_evidence: int = 5


class Remediator:
    """Consumes Analyzer problems and applies isolations."""

    def __init__(self, cluster: Cluster,
                 policy: Optional[RemediationPolicy] = None):
        self.cluster = cluster
        self.policy = policy or RemediationPolicy()
        self.actions: list[RemediationAction] = []
        self._p2_sightings: dict[str, int] = {}
        self._isolated_links: set[str] = set()

    # -- switch-port isolation (§7.5 #2) ------------------------------------

    def consider(self, problem: Problem) -> Optional[RemediationAction]:
        """Decide on one located problem; apply isolation if warranted."""
        if problem.category != ProblemCategory.SWITCH_NETWORK_PROBLEM:
            return None
        if "->" not in problem.locus:
            return self._decline(problem, "unlocalized problem")
        if problem.evidence_count < self.policy.min_evidence:
            return self._decline(problem, "insufficient evidence")
        if problem.locus in self._isolated_links:
            return None  # already handled

        if problem.priority in (Priority.P0, Priority.P1):
            if self.policy.isolate_service_affecting:
                return self._isolate_link(problem,
                                          "service-affecting drop source")
            return self._decline(problem, "policy: no auto-isolation")

        # P2: isolate only when persistent — fixing it costs a routing
        # perturbation but prevents future service placements on a bad
        # link (the paper's 'anomalous device should be isolated or
        # repaired to prevent service performance degradation').
        sightings = self._p2_sightings.get(problem.locus, 0) + 1
        self._p2_sightings[problem.locus] = sightings
        if sightings >= self.policy.p2_persistence_windows:
            return self._isolate_link(problem,
                                      f"persistent for {sightings} windows")
        return self._decline(problem,
                             f"P2 seen {sightings}x, waiting for "
                             f"{self.policy.p2_persistence_windows}")

    def _isolate_link(self, problem: Problem,
                      reason: str) -> RemediationAction:
        a, b = problem.locus.split("->")
        pair = self.cluster.topology.link_pair(a, b)
        pair.routed_around = True
        self.cluster.topology.invalidate_routes()
        self._isolated_links.add(problem.locus)
        self._isolated_links.add(f"{b}->{a}")
        action = RemediationAction(
            time_ns=self.cluster.sim.now, kind="isolate_link",
            target=problem.locus, reason=reason)
        self.actions.append(action)
        return action

    def _decline(self, problem: Problem, reason: str) -> RemediationAction:
        action = RemediationAction(
            time_ns=self.cluster.sim.now, kind="declined",
            target=problem.locus, reason=reason)
        self.actions.append(action)
        return action

    def deisolate(self, locus: str) -> None:
        """Operator repaired the device: restore the link to ECMP."""
        if "->" not in locus:
            raise ValueError(f"not a link locus: {locus}")
        a, b = locus.split("->")
        self.cluster.topology.link_pair(a, b).routed_around = False
        self.cluster.topology.invalidate_routes()
        self._isolated_links.discard(locus)
        self._isolated_links.discard(f"{b}->{a}")

    @property
    def isolated_links(self) -> set[str]:
        """Currently isolated directed-link names."""
        return set(self._isolated_links)

    # -- in-service RNIC isolation (§7.5 #3) -----------------------------------

    def isolate_rnic_in_job(self, job: DmlJob,
                            rnic_name: str) -> RemediationAction:
        """Drop a bad RNIC's connections from a running job, no restart.

        The job loses that rank's bandwidth contribution but its remaining
        connections stop being paced by the dead flow — training continues
        instead of failing.
        """
        removed = 0
        for conn in job.connections:
            if rnic_name in (conn.src_rnic, conn.dst_rnic) \
                    and not conn.broken:
                conn.broken = True
                removed += 1
        action = RemediationAction(
            time_ns=self.cluster.sim.now, kind="isolate_rnic",
            target=rnic_name,
            reason=f"removed {removed} connections from the job")
        self.actions.append(action)
        return action
