"""R-Pingmesh Analyzer (paper §4.3, §5).

Every 20 seconds the Analyzer processes the probe results uploaded in the
last window through a strict classification pipeline:

1. **Host down** (§4.3.1) — a host silent for more than one window is down;
   timeouts targeting its RNICs are non-network.
2. **QPN reset** (§4.3.1) — a timeout probe whose target QPN disagrees with
   the Controller registry is probe noise from an Agent restart.
3. **Anomalous RNICs** (§4.3.2) — ToR-mesh probes involve only two links,
   so an RNIC implicated by >10% anomalous ToR-mesh probes is itself
   anomalous.  Detection is iterative (strongest suspect first, its probes
   filtered, repeat) so one broken prober does not implicate its healthy
   targets.  Detected RNICs are quarantined for 1 minute: every timeout to
   or from them is attributed to the RNIC, not the fabric.
4. **Agent-CPU false positives** (§6, Figure 6 right) — multiple RNICs of
   one host going "anomalous" simultaneously is overwhelmingly the service
   starving the Agent, not independent hardware failures; abnormally high
   responder processing delay corroborates.  With the filter enabled these
   become noise instead of RNIC problems.
5. **Switch network problems** (§4.3.3) — every timeout that survives the
   filters is fabric-caused; Algorithm 1 votes over the traced paths of
   those probes and their ACKs.  Cluster Monitoring and Service Tracing
   anomalies are localised separately.
6. **High RTT / high processing delay** — successful probes over the
   thresholds mark congestion and host bottlenecks.
7. **SLA aggregation** and **priority assessment** (§4.3.4).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.cluster import Cluster
from repro.controlplane.clients import ANALYZER_ENDPOINT
from repro.controlplane.endpoint import Endpoint
from repro.controlplane.transport import ManagementNetwork
from repro.core.config import RPingmeshConfig
from repro.core.controller import Controller
from repro.core.localization import Localization, localize
from repro.core.records import (AgentUpload, Priority, Problem,
                                ProbeKind, ProbeResult, ProblemCategory)
from repro.core.sla import SlaHistory, SlaReport, tracker_factory
from repro.diagnosis.fusion import FusionReport, fuse_window


class ServiceMonitor(Protocol):
    """What the Analyzer needs from the service team's metric feed."""

    def degraded(self) -> bool:
        """Whether the service metric currently breaches its threshold."""
        ...


@dataclass
class WindowAnalysis:
    """Everything the Analyzer concluded for one window (test surface)."""

    window_start_ns: int
    window_end_ns: int
    results_processed: int = 0
    down_hosts: set[str] = field(default_factory=set)
    qpn_reset_timeouts: int = 0
    anomalous_rnics: set[str] = field(default_factory=set)
    cpu_noise_hosts: set[str] = field(default_factory=set)
    problems: list[Problem] = field(default_factory=list)
    cluster_localization: Optional[Localization] = None
    service_localization: Optional[Localization] = None

    def problem_categories(self) -> Counter:
        """Histogram of problem categories in this window."""
        return Counter(p.category for p in self.problems)


class Analyzer:
    """The 20-second analysis loop.

    ``endpoint_name`` names the upload endpoint this instance binds —
    per-pod :class:`~repro.core.sharding.AnalyzerShard` instances each
    bind their own; the default is the classic single ``"analyzer"``.
    """

    def __init__(self, cluster: Cluster, controller: Controller,
                 config: RPingmeshConfig, *,
                 endpoint_name: str = ANALYZER_ENDPOINT):
        self.cluster = cluster
        self.controller = controller
        self.config = config
        self.endpoint_name = endpoint_name
        self.service_monitor: Optional[ServiceMonitor] = None
        self.endpoint: Optional[Endpoint] = None
        # Probe-lifecycle tracing (repro.obs): the Analyzer annotates each
        # probe's (already closed) span with its classification verdict
        # and, for fabric-caused timeouts, the Algorithm-1 vote.
        self.tracer = cluster.obs.tracer

        self._pending: list[AgentUpload] = []
        self._upload_listeners: list = []
        self._window_listeners: list = []
        self._last_upload_ns: dict[str, int] = {}
        self._quarantined_until: dict[str, int] = {}
        # Rolling service-network membership from service-tracing paths.
        self._service_members: dict[str, int] = {}  # name -> last seen ns

        self.sla = SlaHistory()
        self._tracker = tracker_factory(config)
        self.windows: list[WindowAnalysis] = []
        self.problems: list[Problem] = []
        self.category_counts: Counter = Counter()
        # INT evidence provider (repro.diagnosis.inband.IntBackend), set
        # by attach_int_evidence when the "int" backend is deployed; None
        # skips fusion entirely — the default pipeline is untouched.
        self.int_provider = None
        self.fusion = FusionReport()
        # Ingest accounting: batches accepted into / refused by the bounded
        # queue since start (part of the control-plane metrics surface).
        self.ingest_accepted = 0
        self.ingest_dropped = 0
        self._started = False

    # -- wiring -----------------------------------------------------------------

    def bind(self, network: ManagementNetwork) -> Endpoint:
        """Attach the Analyzer's endpoint; uploads are acked requests."""
        self.endpoint = (
            Endpoint(self.endpoint_name, network)
            .on("upload", self._handle_upload))
        return self.endpoint

    def _handle_upload(self, batch) -> dict:
        return {"accepted": self.receive_upload(batch)}

    def attach_service_monitor(self, monitor: ServiceMonitor) -> None:
        """Plug in the service team's degradation signal (§4.3.4)."""
        self.service_monitor = monitor

    def add_upload_listener(self, listener) -> None:
        """Tap the raw upload stream (dashboards, experiment capture)."""
        self._upload_listeners.append(listener)

    def add_window_listener(self, listener) -> None:
        """Be called with each completed WindowAnalysis (trackers etc.)."""
        self._window_listeners.append(listener)

    def attach_int_evidence(self, provider) -> None:
        """Enable INT fusion (provider: per-window link evidence maps).

        ``provider.link_evidence(window_end_ns)`` must return the
        per-directed-link :class:`~repro.diagnosis.inband.IntLinkEvidence`
        for the window closing at that tick; the IntBackend closes its
        window before ``analyze()`` runs (it is started first, and equal
        timestamps preserve schedule order), so the map is always ready.
        """
        self.int_provider = provider

    def receive_upload(self, batch: AgentUpload) -> bool:
        """Agent upload entry point (5-second batches).

        Returns whether the batch was accepted.  The ingest queue is
        bounded (``analyzer_ingest_capacity`` batches per window): beyond
        it arrivals are refused and counted, which the upload channel
        surfaces as a NACK rather than retrying forever.  Even a refused
        batch proves the host is alive, so the silence clock still resets.
        """
        self._last_upload_ns[batch.host] = batch.uploaded_at_ns
        if len(self._pending) >= self.config.analyzer_ingest_capacity:
            self.ingest_dropped += 1
            return False
        self._pending.append(batch)
        self.ingest_accepted += 1
        for listener in self._upload_listeners:
            listener(batch)
        return True

    @property
    def ingest_backlog(self) -> int:
        """Batches queued for the next analysis window."""
        return len(self._pending)

    def start(self) -> None:
        """Begin the periodic analysis loop."""
        if self._started:
            return
        self._started = True
        self.cluster.sim.every(self.config.analysis_period_ns, self.analyze)

    # -- the analysis pipeline -----------------------------------------------------

    def analyze(self) -> WindowAnalysis:
        """Process everything uploaded since the previous window."""
        now = self.cluster.sim.now
        window = WindowAnalysis(
            window_start_ns=now - self.config.analysis_period_ns,
            window_end_ns=now)
        uploads, self._pending = self._pending, []
        results = [r for batch in uploads for r in batch.results]
        window.results_processed = len(results)

        window.down_hosts = self._down_hosts(now)
        classification = self._classify(results, window, now)
        self._emit_problems(results, classification, window, now)
        if self.int_provider is not None:
            self._fuse_int(window)
        self._aggregate_sla(results, classification, window)
        self._update_service_membership(results, now)
        self._assign_priorities(window)
        if self.tracer.enabled:
            self._trace_verdicts(results, classification, window)

        self.windows.append(window)
        self.problems.extend(window.problems)
        self.category_counts.update(p.category for p in window.problems)
        for listener in self._window_listeners:
            listener(window)
        return window

    # -- steps 1-4: timeout classification -------------------------------------------

    def _down_hosts(self, now: int) -> set[str]:
        """Hosts whose Agent has stopped uploading (§5)."""
        down = set()
        for host, last in self._last_upload_ns.items():
            if now - last > self.config.host_down_silence_ns:
                down.add(host)
        return down

    def _host_of_target(self, result: ProbeResult) -> str:
        return self.cluster.host_of_rnic(result.target_rnic).name

    def _classify(self, results: list[ProbeResult], window: WindowAnalysis,
                  now: int) -> dict[int, ProblemCategory]:
        """Map result seq -> category for every timeout."""
        classification: dict[int, ProblemCategory] = {}

        # Step 1: host down.
        for result in results:
            if not result.timeout:
                continue
            if self._host_of_target(result) in window.down_hosts:
                classification[result.seq] = ProblemCategory.HOST_DOWN

        # Step 2: QPN reset noise.
        for result in results:
            if not result.timeout or result.seq in classification:
                continue
            current = self.controller.current_qpn(result.target_rnic)
            if current is not None and result.target_qpn != current:
                classification[result.seq] = ProblemCategory.QPN_RESET
                window.qpn_reset_timeouts += 1

        # Step 3: anomalous RNICs from ToR-mesh probing (iterative).
        # (The ablation switch reproduces Pingmesh-style analysis where
        # RNIC and switch drops interfere during troubleshooting, §2.4.)
        if self.config.tor_mesh_rnic_filter_enabled:
            anomalous = self._detect_anomalous_rnics(results, classification)
        else:
            anomalous = set()

        # Step 4: agent-CPU false-positive filters (§6).
        if self.config.cpu_fp_filter_enabled:
            anomalous = self._filter_cpu_noise(anomalous, results, window)
        window.anomalous_rnics = anomalous
        for rnic in anomalous:
            self._quarantined_until[rnic] = max(
                self._quarantined_until.get(rnic, 0),
                now + self.config.rnic_quarantine_ns)

        # Quarantine attribution: timeouts to/from quarantined RNICs are
        # RNIC problems for this window and the next minute (§5).
        for result in results:
            if not result.timeout or result.seq in classification:
                continue
            for rnic in (result.prober_rnic, result.target_rnic):
                if self._quarantined_until.get(rnic, 0) >= result.issued_at_ns:
                    classification[result.seq] = ProblemCategory.RNIC_PROBLEM
                    break
        # CPU-noise hosts: their residual timeouts are noise, not fabric.
        for result in results:
            if not result.timeout or result.seq in classification:
                continue
            if self._host_of_target(result) in window.cpu_noise_hosts:
                classification[result.seq] = ProblemCategory.AGENT_CPU_NOISE

        # §6's simultaneity rule applied to the residual pool as well: a
        # starved Agent freezes probing *and* responding, so essentially
        # every surviving timeout involves that ONE host (as prober or as
        # target) and the host's processing delay is abnormal.  A genuine
        # fabric fault spreads its victims over many prober/target hosts,
        # so the concentration guard keeps real switch evidence intact.
        if self.config.cpu_fp_filter_enabled:
            remaining = [r for r in results
                         if r.timeout and r.seq not in classification]
            involvement: dict[str, int] = defaultdict(int)
            involved_rnics: dict[str, set[str]] = defaultdict(set)
            for r in remaining:
                hosts = {r.prober_host, self._host_of_target(r)}
                for host in sorted(hosts):
                    involvement[host] += 1
                for rnic in (r.prober_rnic, r.target_rnic):
                    involved_rnics[self.cluster.host_of_rnic(rnic)
                                   .name].add(rnic)
            for host, count in involvement.items():
                if count < 0.8 * len(remaining) or count < 3:
                    continue
                # Either delay evidence convicts the CPU, or (with total
                # starvation leaving too few samples) the paper's primary
                # rule does: several RNICs of the same host failing at
                # once is not independent hardware.
                multi_rnic = (len(involved_rnics[host])
                              >= self.config.cpu_fp_min_rnics)
                if not (self._host_processing_abnormal(host, results)
                        or multi_rnic):
                    continue
                window.cpu_noise_hosts.add(host)
                for r in remaining:
                    if host in (r.prober_host, self._host_of_target(r)):
                        classification[r.seq] = \
                            ProblemCategory.AGENT_CPU_NOISE

        # Step 5: everything else is the switch network's fault.
        for result in results:
            if result.timeout and result.seq not in classification:
                classification[result.seq] = \
                    ProblemCategory.SWITCH_NETWORK_PROBLEM
        return classification

    def _detect_anomalous_rnics(
            self, results: list[ProbeResult],
            classification: dict[int, ProblemCategory]) -> set[str]:
        """Iterative §4.3.2 detection over this window's ToR-mesh probes.

        Repeatedly pick the RNIC with the highest anomaly rate above the
        threshold, then drop all probes involving it before re-scoring, so
        a single broken RNIC doesn't smear its healthy ToR neighbours.
        """
        pool = [r for r in results
                if r.kind == ProbeKind.TOR_MESH
                and r.seq not in classification]
        anomalous: set[str] = set()
        while True:
            involved: dict[str, list[ProbeResult]] = defaultdict(list)
            for result in pool:
                involved[result.prober_rnic].append(result)
                involved[result.target_rnic].append(result)
            best_rnic, best_score = None, (0.0, 0)
            for rnic, probes in involved.items():
                timeouts = sum(1 for p in probes if p.timeout)
                rate = timeouts / len(probes)
                # ">10%" per §5 is strict; ties break toward the RNIC with
                # more anomalous probes (a broken device is implicated by
                # both its own failed probes and its peers').
                score = (rate, timeouts)
                if rate > self.config.rnic_timeout_threshold \
                        and score > best_score:
                    best_rnic, best_score = rnic, score
            if best_rnic is None:
                return anomalous
            anomalous.add(best_rnic)
            pool = [r for r in pool
                    if best_rnic not in (r.prober_rnic, r.target_rnic)]

    def _filter_cpu_noise(self, anomalous: set[str],
                          results: list[ProbeResult],
                          window: WindowAnalysis) -> set[str]:
        """§6 false-positive filters: multi-RNIC simultaneity first, then
        the responder-processing-delay corroboration."""
        by_host: dict[str, set[str]] = defaultdict(set)
        for rnic in sorted(anomalous):
            by_host[self.cluster.host_of_rnic(rnic).name].add(rnic)

        keep = set(anomalous)
        for host, rnics in by_host.items():
            noisy = False
            if len(rnics) >= self.config.cpu_fp_min_rnics:
                # Independent simultaneous failures of several RNICs on one
                # host are wildly unlikely; blame the Agent's CPU.
                noisy = True
            elif self._host_processing_abnormal(host, results):
                noisy = True
            if noisy:
                window.cpu_noise_hosts.add(host)
                keep -= rnics
        return keep

    def _host_processing_abnormal(self, host: str,
                                  results: list[ProbeResult]) -> bool:
        """Whether ``host`` shows abnormal processing delay.

        Uses both responder-side samples (probes answered by the host) and
        prober-side samples (probes the host's own Agent sent): during a
        starvation episode the responder samples largely *disappear* into
        timeouts, while the host's prober-side samples remain plentiful
        and inflated — they are what reliably convicts the CPU.
        """
        samples = [r.responder_processing_ns for r in results
                   if r.responder_processing_ns is not None
                   and self._host_of_target(r) == host]
        samples += [r.prober_processing_ns for r in results
                    if r.prober_processing_ns is not None
                    and r.prober_host == host]
        if len(samples) < 5:
            return False
        samples.sort()
        p90 = samples[max(0, int(len(samples) * 0.9) - 1)]
        return p90 > self.config.high_processing_delay_ns

    # -- steps 5-6: problem emission -----------------------------------------------------

    def _emit_problems(self, results: list[ProbeResult],
                       classification: dict[int, ProblemCategory],
                       window: WindowAnalysis, now: int) -> None:
        by_seq = {r.seq: r for r in results}

        # Host-down problems (non-network but reportable, Table 2 #4).
        for host in sorted(window.down_hosts):
            window.problems.append(Problem(
                category=ProblemCategory.HOST_DOWN, locus=host,
                detected_at_ns=now, window_start_ns=window.window_start_ns,
                evidence_count=sum(
                    1 for s, c in classification.items()
                    if c == ProblemCategory.HOST_DOWN
                    and self._host_of_target(by_seq[s]) == host),
                from_service_tracing=False))

        # RNIC problems.
        for rnic in sorted(window.anomalous_rnics):
            evidence = [by_seq[s] for s, c in classification.items()
                        if c == ProblemCategory.RNIC_PROBLEM
                        and rnic in (by_seq[s].prober_rnic,
                                     by_seq[s].target_rnic)]
            window.problems.append(Problem(
                category=ProblemCategory.RNIC_PROBLEM, locus=rnic,
                detected_at_ns=now, window_start_ns=window.window_start_ns,
                evidence_count=len(evidence),
                from_service_tracing=any(
                    r.kind == ProbeKind.SERVICE_TRACING for r in evidence)))

        # Switch network problems: localise cluster and service anomalies
        # separately (§4.3.3 "Analyzer analyzes them individually").
        for service_side in (False, True):
            anomalies = [
                by_seq[s] for s, c in classification.items()
                if c == ProblemCategory.SWITCH_NETWORK_PROBLEM
                and (by_seq[s].kind == ProbeKind.SERVICE_TRACING)
                == service_side]
            if len(anomalies) < self.config.min_anomalies_for_localization:
                continue
            loc = localize([r.probe_path for r in anomalies],
                           [r.ack_path for r in anomalies])
            if service_side:
                window.service_localization = loc
            else:
                window.cluster_localization = loc
            suspects = loc.suspects[:3] or ["unlocalized"]
            for suspect in suspects:
                window.problems.append(Problem(
                    category=ProblemCategory.SWITCH_NETWORK_PROBLEM,
                    locus=suspect, detected_at_ns=now,
                    window_start_ns=window.window_start_ns,
                    evidence_count=len(anomalies),
                    from_service_tracing=service_side,
                    detail=f"votes={loc.votes.get(suspect, 0)}"))

        self._emit_latency_problems(results, window, now)

    def _emit_latency_problems(self, results: list[ProbeResult],
                               window: WindowAnalysis, now: int) -> None:
        """High-RTT (congestion) and high-processing-delay (bottleneck)."""
        high_rtt = [r for r in results
                    if r.network_rtt_ns is not None
                    and r.network_rtt_ns > self.config.high_rtt_threshold_ns]
        for service_side in (False, True):
            side = [r for r in high_rtt
                    if (r.kind == ProbeKind.SERVICE_TRACING) == service_side]
            if len(side) < self.config.min_anomalies_for_localization:
                continue
            # ToR-mesh high-RTT concentrating on one RNIC is an RNIC-side
            # bottleneck (PFC storm toward it, Figure 8 right).
            tor_targets = Counter(r.target_rnic for r in side
                                  if r.kind == ProbeKind.TOR_MESH)
            localized_rnic = None
            if tor_targets:
                rnic, count = tor_targets.most_common(1)[0]
                if count >= self.config.min_anomalies_for_localization:
                    localized_rnic = rnic
            if localized_rnic is not None:
                window.problems.append(Problem(
                    category=ProblemCategory.HIGH_RTT, locus=localized_rnic,
                    detected_at_ns=now,
                    window_start_ns=window.window_start_ns,
                    evidence_count=tor_targets[localized_rnic],
                    from_service_tracing=service_side))
            loc = localize([r.probe_path for r in side],
                           [r.ack_path for r in side])
            for suspect in loc.suspects[:1]:
                window.problems.append(Problem(
                    category=ProblemCategory.HIGH_RTT, locus=suspect,
                    detected_at_ns=now,
                    window_start_ns=window.window_start_ns,
                    evidence_count=len(side),
                    from_service_tracing=service_side,
                    detail=f"votes={loc.votes.get(suspect, 0)}"))

        # Host processing-delay bottlenecks (Figure 8 left).
        by_host: dict[str, list[int]] = defaultdict(list)
        for r in results:
            if r.responder_processing_ns is not None:
                by_host[self._host_of_target(r)].append(
                    r.responder_processing_ns)
            if r.prober_processing_ns is not None:
                by_host[r.prober_host].append(r.prober_processing_ns)
        for host, samples in sorted(by_host.items()):
            if len(samples) < 5:
                continue
            samples.sort()
            p90 = samples[max(0, int(len(samples) * 0.9) - 1)]
            if p90 > self.config.high_processing_delay_ns:
                window.problems.append(Problem(
                    category=ProblemCategory.HIGH_PROCESSING_DELAY,
                    locus=host, detected_at_ns=now,
                    window_start_ns=window.window_start_ns,
                    evidence_count=len(samples),
                    from_service_tracing=False,
                    detail=f"p90={p90}ns"))

    # -- INT fusion (repro.diagnosis, paper §7.4) ------------------------------------------------

    def _fuse_int(self, window: WindowAnalysis) -> None:
        """Fuse this window's INT link evidence into its problem list.

        Strictly additive (see :mod:`repro.diagnosis.fusion`): sharpens
        vote-based loci to the INT directed link, breaks Algorithm-1 vote
        ties, attributes congestion cause, and adds INT-origin problems
        for hot links nothing else named.  Runs before priority
        assignment so INT-origin problems are prioritised like any other.
        """
        links = self.int_provider.link_evidence(window.window_end_ns)
        if not links:
            return
        self.fusion.merge(fuse_window(
            window, links,
            threshold_ns=self.config.high_rtt_threshold_ns,
            min_evidence=self.config.min_anomalies_for_localization))

    # -- step 7: SLA -------------------------------------------------------------------------

    def _aggregate_sla(self, results: list[ProbeResult],
                       classification: dict[int, ProblemCategory],
                       window: WindowAnalysis) -> None:
        report = SlaReport(window.window_start_ns, window.window_end_ns,
                           tracker=self._tracker)
        for result in results:
            scope = (report.service
                     if result.kind == ProbeKind.SERVICE_TRACING
                     else report.cluster)
            scope.probes_total += 1
            if result.timeout:
                category = classification.get(result.seq)
                if category == ProblemCategory.RNIC_PROBLEM:
                    scope.timeouts_rnic += 1
                elif category == ProblemCategory.SWITCH_NETWORK_PROBLEM:
                    scope.timeouts_switch += 1
                else:
                    scope.timeouts_non_network += 1
            else:
                scope.probes_ok += 1
                if result.network_rtt_ns is not None:
                    scope.rtt.add(float(result.network_rtt_ns))
                if result.responder_processing_ns is not None:
                    scope.processing.add(float(result.responder_processing_ns))
                if result.prober_processing_ns is not None:
                    scope.processing.add(float(result.prober_processing_ns))
        self.sla.append(report)

    # -- step 8: service-network membership + priority (§4.3.4) ---------------------------------

    def _update_service_membership(self, results: list[ProbeResult],
                                   now: int) -> None:
        for result in results:
            if result.kind != ProbeKind.SERVICE_TRACING:
                continue
            members = [result.prober_rnic, result.target_rnic,
                       result.prober_host, self._host_of_target(result)]
            for path in (result.probe_path, result.ack_path):
                if path is None:
                    continue
                members.extend(h for h in path.hops if h is not None)
                members.extend(f"{a}->{b}" for a, b in path.known_links())
            for member in members:
                self._service_members[member] = now

    def in_service_network(self, locus: str, now: Optional[int] = None) -> bool:
        """Whether a device/link was part of the service network recently."""
        if now is None:
            now = self.cluster.sim.now
        seen = self._service_members.get(locus)
        if seen is None:
            return False
        return now - seen <= 3 * self.config.analysis_period_ns

    def _assign_priorities(self, window: WindowAnalysis) -> None:
        degraded = (self.service_monitor.degraded()
                    if self.service_monitor is not None else False)
        for problem in window.problems:
            affects_service = (problem.from_service_tracing
                               or self.in_service_network(
                                   problem.locus, window.window_end_ns))
            if affects_service:
                problem.priority = Priority.P0 if degraded else Priority.P1
            else:
                problem.priority = Priority.P2

    # -- observability (repro.obs) ---------------------------------------------------------------

    def _trace_verdicts(self, results: list[ProbeResult],
                        classification: dict[int, ProblemCategory],
                        window: WindowAnalysis) -> None:
        """Annotate each probe's span with this window's verdict.

        The Analyzer only sees a probe one upload batch after the Agent
        recorded its result, so these land on already-closed spans — the
        tracer treats them as post-close annotations by design.  For
        fabric-caused timeouts the Algorithm-1 top suspect and its vote
        count ride along.
        """
        now = window.window_end_ns
        for result in results:
            category = classification.get(result.seq)
            fields: dict = {
                "verdict": "ok" if category is None else category.value}
            if category == ProblemCategory.SWITCH_NETWORK_PROBLEM:
                loc = (window.service_localization
                       if result.kind == ProbeKind.SERVICE_TRACING
                       else window.cluster_localization)
                if loc is not None and loc.suspects:
                    suspect = loc.suspects[0]
                    fields["suspect"] = suspect
                    fields["votes"] = loc.votes.get(suspect, 0)
            self.tracer.event(result.seq, now, "analyzer.verdict", **fields)

    # -- footprint (DESIGN.md §11) ---------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Deterministic estimate of this Analyzer's retained state.

        Covers the ingest backlog (raw ProbeResults awaiting a window),
        the per-window analysis records, and the SLA history — where
        exact-mode percentile trackers retain every sample forever, the
        unbounded-growth term the sketch + shard-retention path bounds.
        """
        pending = sum(256 * len(batch.results) for batch in self._pending)
        windows = sum(512 + 128 * len(w.problems) for w in self.windows)
        return 1024 + pending + windows + self.sla.memory_bytes()

    # -- verdict helpers (§7.2) ----------------------------------------------------------------

    def network_innocent(self) -> bool:
        """§4.3.4: if no P0/P1 problems were detected in the latest window,
        the (service) network is innocent."""
        if not self.windows:
            return True
        return all(p.priority == Priority.P2
                   for p in self.windows[-1].problems)

    def distinct_problems(self) -> dict[tuple[str, str], list[Problem]]:
        """Problems grouped by (category, locus) across all windows."""
        grouped: dict[tuple[str, str], list[Problem]] = defaultdict(list)
        for problem in self.problems:
            grouped[problem.key()].append(problem)
        return dict(grouped)
