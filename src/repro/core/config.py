"""Operating parameters of R-Pingmesh.

Defaults reproduce §5 of the paper exactly:

* probe timeout 500 ms; probe/ACK payload 50 B;
* Agent uploads results every 5 s; pulls service-target comm info every 5 min;
* Controller refreshes pinglists every 5 min, rotates 20% of inter-ToR
  5-tuples every hour;
* ToR-mesh probing at 10 pps per RNIC; inter-ToR frequency sized so every
  link above the ToRs carries >10 probes/s per direction;
* Service Tracing probes every 10 ms;
* Analyzer period 20 s; an RNIC with >10% ToR-mesh timeouts is anomalous
  and quarantined for 1 minute; a host silent for >20 s is down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MILLISECOND, MINUTE, SECOND, HOUR, MICROSECOND


@dataclass
class RPingmeshConfig:
    """All tunables, paper defaults."""

    # Agent (§5)
    probe_timeout_ns: int = 500 * MILLISECOND
    probe_payload_bytes: int = 50
    upload_interval_ns: int = 5 * SECOND
    comm_info_refresh_ns: int = 5 * MINUTE
    tor_mesh_pps: float = 10.0
    service_probe_interval_ns: int = 10 * MILLISECOND
    trace_interval_ns: int = 10 * SECOND       # per-5-tuple traceroute cadence

    # Controller (§4.1, §5)
    pinglist_refresh_ns: int = 5 * MINUTE
    rotation_interval_ns: int = 1 * HOUR
    rotation_fraction: float = 0.20
    coverage_probability: float = 0.99         # P in Equation 1
    target_link_pps: float = 10.0              # per inter-ToR link direction

    # Analyzer (§5, §4.3)
    analysis_period_ns: int = 20 * SECOND
    host_down_silence_ns: int = 20 * SECOND
    rnic_timeout_threshold: float = 0.10       # ToR-mesh anomaly cut
    rnic_quarantine_ns: int = 1 * MINUTE
    min_anomalies_for_localization: int = 3
    # High-RTT / high-processing-delay anomaly cuts.  RoCE RTT is normally
    # tens of microseconds; congestion pushes tails far beyond.
    high_rtt_threshold_ns: int = 200 * MICROSECOND
    high_processing_delay_ns: int = 200 * MICROSECOND
    # Figure-6 false-positive filters (§6 "Localization accuracy"):
    cpu_fp_filter_enabled: bool = True
    # multi-RNIC rule: >= this many simultaneously-anomalous RNICs on one
    # host is implausible as independent hardware failure.
    cpu_fp_min_rnics: int = 2

    # Control plane / management network (§4.2.3).  The zero defaults make
    # the transport deliver inline with no RNG draws, reproducing direct
    # in-process calls bit-for-bit; raise them to exercise control-plane
    # degradation (slow registrations, lost uploads, stale pinglists).
    control_latency_ns: int = 0
    control_jitter_ns: int = 0
    control_loss_prob: float = 0.0
    # Agent upload path: ack expiry before a resend (doubling up to the
    # cap) and the bounded resend buffer of unacked 5-second batches.
    upload_ack_timeout_ns: int = 1 * SECOND
    upload_backoff_max_ns: int = 16 * SECOND
    upload_resend_buffer: int = 64
    # Analyzer ingest queue bound (batches per analysis window); arrivals
    # beyond it are dropped and accounted, not silently absorbed.  In the
    # sharded deployment the bound applies *per shard*.
    analyzer_ingest_capacity: int = 4096

    # Scale-out control plane (DESIGN.md §11).  ``shards`` > 1 deploys
    # per-pod ControllerShard/AnalyzerShard pairs under a RootController /
    # RootAnalyzer; 1 (default) keeps the single-pair wiring bit-for-bit
    # identical to the pre-sharding system.
    shards: int = 1
    # SLA percentile storage: False = exact PercentileTracker retention
    # (every sample kept per window); True = fixed-memory mergeable
    # QuantileSketch at ``sketch_relative_accuracy``.
    sla_sketch: bool = False
    sketch_relative_accuracy: float = 0.01
    # Incremental pinglist maintenance: registry deltas patch only the
    # affected ToR-mesh entries and push only the affected agents, instead
    # of regenerating and re-pushing every pinglist.  Off by default (the
    # full-regeneration RNG draw sequence is golden-digest locked).
    incremental_pinglists: bool = False
    # How many analysed windows / SLA reports an AnalyzerShard retains
    # locally after shipping its summary to the RootAnalyzer.
    shard_window_retention: int = 8

    # Diagnosis backends (repro.diagnosis, DESIGN.md §14) deployed with
    # the system.  The default ("probe",) is the paper's pipeline viewed
    # through the backend protocol — pure observation, byte-identical to
    # a build without the subsystem.  Add "int" for in-band telemetry
    # (+ Analyzer fusion) or "pingmesh" for the TCP baseline (which
    # injects real probe traffic and so perturbs replay digests).
    backends: tuple = ("probe",)

    # Ablation switches (both True in the paper's design; turning them off
    # reproduces the failure modes §4.2.3/§4.3.2 argue against):
    # ToR-mesh anomalous-RNIC detection + quarantine before localisation.
    tor_mesh_rnic_filter_enabled: bool = True
    # Continuous path tracing (False = trace only when a probe fails,
    # observing post-failure rehashed/truncated paths).
    continuous_path_tracing: bool = True

    def tor_mesh_interval_ns(self) -> int:
        """Per-RNIC ToR-mesh probing interval."""
        return round(SECOND / self.tor_mesh_pps)

    def validate(self) -> None:
        """Sanity-check parameter combinations."""
        if self.probe_timeout_ns <= 0:
            raise ValueError("probe timeout must be positive")
        if not 0.0 < self.rnic_timeout_threshold < 1.0:
            raise ValueError("rnic timeout threshold must be in (0,1)")
        if not 0.0 < self.rotation_fraction <= 1.0:
            raise ValueError("rotation fraction must be in (0,1]")
        if self.analysis_period_ns < self.upload_interval_ns:
            raise ValueError("analysis period must cover >=1 upload interval")
        if self.control_latency_ns < 0 or self.control_jitter_ns < 0:
            raise ValueError("control latency/jitter must be non-negative")
        if not 0.0 <= self.control_loss_prob < 1.0:
            raise ValueError("control loss probability must be in [0,1)")
        if self.upload_ack_timeout_ns <= 0:
            raise ValueError("upload ack timeout must be positive")
        if self.upload_backoff_max_ns < self.upload_ack_timeout_ns:
            raise ValueError("upload backoff cap must cover one ack timeout")
        if self.upload_resend_buffer < 1:
            raise ValueError("upload resend buffer must hold >=1 batch")
        if self.analyzer_ingest_capacity < 1:
            raise ValueError("analyzer ingest capacity must be >=1")
        if self.shards < 1:
            raise ValueError("shards must be >=1")
        if not 0.0 < self.sketch_relative_accuracy < 1.0:
            raise ValueError("sketch relative accuracy must be in (0,1)")
        if self.shard_window_retention < 1:
            raise ValueError("shard window retention must be >=1")
        if len(set(self.backends)) != len(self.backends):
            raise ValueError(f"duplicate backends: {self.backends}")
        from repro.diagnosis.backend import available_backends
        known = set(available_backends())
        unknown = [b for b in self.backends if b not in known]
        if unknown:
            raise ValueError(
                f"unknown backends {unknown}; available: {sorted(known)}")
