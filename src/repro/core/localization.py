"""Switch-network problem localisation — Algorithm 1 (paper §4.3.3).

Given the traced paths of anomalous probes (and their ACKs), vote on every
directed link traversed; links with the most votes are the most suspicious.
The idea is binary network tomography: the common element of many bad paths
is the likely culprit.  Replacing links with switches gives the switch
variant (paper footnote 5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.net.traceroute import PathRecord


@dataclass
class Localization:
    """Voting outcome: the arg-max set plus the full tally."""

    suspects: list[str] = field(default_factory=list)
    votes: Counter = field(default_factory=Counter)
    paths_considered: int = 0

    @property
    def confident(self) -> bool:
        """A unique arg-max is a far stronger signal than a tie."""
        return len(self.suspects) == 1

    def top(self, n: int = 5) -> list[tuple[str, int]]:
        """The n most-voted elements."""
        return self.votes.most_common(n)


def _link_names(path: PathRecord) -> Iterable[str]:
    for a, b in path.known_links():
        yield f"{a}->{b}"


def detect_abnormal_links(paths: list[PathRecord]) -> Localization:
    """Algorithm 1 verbatim: vote per directed link, return the arg-max.

    Unknown hops (rate-limited traceroute responders) contribute no links
    across the gap, which only lowers a suspect's tally — never creates a
    false vote.
    """
    votes: Counter = Counter()
    considered = 0
    for path in paths:
        considered += 1
        for link_name in _link_names(path):
            votes[link_name] += 1
    return _argmax(votes, considered)


def detect_abnormal_switches(paths: list[PathRecord]) -> Localization:
    """Footnote-5 variant: vote per switch instead of per link."""
    votes: Counter = Counter()
    considered = 0
    for path in paths:
        considered += 1
        for switch in path.known_switches():
            votes[switch] += 1
    return _argmax(votes, considered)


def _argmax(votes: Counter, considered: int) -> Localization:
    if not votes:
        return Localization(paths_considered=considered)
    best = max(votes.values())
    suspects = sorted(name for name, count in votes.items() if count == best)
    return Localization(suspects=suspects, votes=votes,
                        paths_considered=considered)


def localize(probe_paths: list[Optional[PathRecord]],
             ack_paths: list[Optional[PathRecord]]) -> Localization:
    """Vote over both directions of every anomalous probe (§4.3.3).

    The probe may have died on the forward path or its ACK on the reverse
    path; Analyzer traverses "the paths of these probes and their ACKs one
    by one", so both directions vote.
    """
    paths = [p for p in list(probe_paths) + list(ack_paths) if p is not None]
    return detect_abnormal_links(paths)
