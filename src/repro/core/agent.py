"""R-Pingmesh Agent (paper §4.2).

One Agent runs per RoCE host.  Per RNIC it keeps a single **UD QP** used
both to probe and to respond (§4.2.1); per-RNIC "threads" (periodic tasks)
run ToR-mesh probing, inter-ToR probing, service-tracing probing, and the
shared responder logic.

The probing exchange implements Figure 4 precisely:

=====  =======================  ==========================================
 mark  clock                    meaning
=====  =======================  ==========================================
  ①    prober HOST clock        application posts the probe
  ②    prober RNIC clock        probe send CQE (wire departure; UD only)
  ③    responder RNIC clock     probe recv CQE
  ④    responder RNIC clock     first-ACK send CQE
  ⑤    prober RNIC clock        first-ACK recv CQE
  ⑥    prober HOST clock        application has processed the first ACK
=====  =======================  ==========================================

* responder processing delay = ④ − ③ (carried to the prober in the
  *second* ACK, because ④ only exists after the first ACK is sent),
* network RTT = (⑤ − ②) − (④ − ③),
* prober processing delay = (⑥ − ①) − (⑤ − ②).

Every subtraction pairs same-clock timestamps, so the math holds with the
wildly desynchronised clocks the simulation gives each device.

Service tracing (§4.2.2): the Agent subscribes to the host's eBPF QP
tracer; each established RC connection contributes a pinglist entry with
the *same 5-tuple source port*, so the probes ride the service's ECMP
paths.  The service pinglist is shuffled every probing round (§7.3) so
hotspot paths are sampled at random phases of the DML cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Optional

from repro.cluster import Cluster
from repro.controlplane.clients import ControllerClient, UploadChannel
from repro.controlplane.endpoint import Endpoint
from repro.controlplane.transport import ManagementNetwork
from repro.core.config import RPingmeshConfig
from repro.core.records import (AgentUpload, PinglistEntry, ProbeKind,
                                ProbeResult)
from repro.host.ebpf import QpEvent, QpEventKind
from repro.host.host import Host
from repro.host.rnic import (CommInfo, Cqe, CqeKind, LocalSendError, QPType,
                             QueuePair, Rnic)
from repro.net.addresses import FiveTuple, roce_five_tuple
from repro.net.traceroute import PathRecord
from repro.sim.engine import EventHandle, PeriodicTask
from repro.sim.rng import RngStream


def agent_endpoint_name(host_name: str) -> str:
    """Control-plane endpoint name of a host's Agent."""
    return f"agent.{host_name}"


@dataclass
class _Outstanding:
    """Book-keeping for one in-flight probe on the prober side."""

    seq: int
    entry: PinglistEntry
    issued_at_ns: int
    t1_host: int
    t2_rnic: Optional[int] = None
    t5_rnic: Optional[int] = None
    t6_host: Optional[int] = None
    responder_delay_ns: Optional[int] = None
    timeout_handle: Optional[EventHandle] = None


@dataclass
class _RnicAgentState:
    """Everything the Agent keeps per RNIC."""

    rnic: Rnic
    qp: QueuePair
    tor_mesh: list[PinglistEntry] = field(default_factory=list)
    inter_tor: list[PinglistEntry] = field(default_factory=list)
    # (local service QPN) -> entry; values also drive the probing round.
    service: dict[int, PinglistEntry] = field(default_factory=dict)
    # Service QPNs seen RTS and not yet destroyed.  IP resolution goes over
    # the management network, so its reply may arrive *after* the service
    # connection died; only QPNs still in this set accept the answer.
    service_live: set[int] = field(default_factory=set)
    service_round: list[PinglistEntry] = field(default_factory=list)
    rr_index: dict[ProbeKind, int] = field(default_factory=dict)
    outstanding: dict[int, _Outstanding] = field(default_factory=dict)
    # wr_id -> ("probe", seq) or ("ack1", responder context dict)
    send_roles: dict[int, tuple[str, Any]] = field(default_factory=dict)
    path_cache: dict[FiveTuple, PathRecord] = field(default_factory=dict)
    tasks: list[PeriodicTask] = field(default_factory=list)


class Agent:
    """The per-host R-Pingmesh agent."""

    def __init__(self, host: Host, cluster: Cluster,
                 network: ManagementNetwork, config: RPingmeshConfig,
                 rng: RngStream, *,
                 controller_endpoint: Optional[str] = None,
                 analyzer_endpoint: Optional[str] = None):
        self.host = host
        self.cluster = cluster
        self.config = config
        self.rng = rng
        # Control-plane wiring: one endpoint per Agent, a client shim for
        # the Controller RPCs, and the reliable upload channel (§4.2.3).
        # In a sharded deployment the endpoints name the host's pod shard
        # pair instead of the classic "controller"/"analyzer" singletons.
        self.endpoint = Endpoint(agent_endpoint_name(host.name), network)
        self.endpoint.on("set_pinglists", self._handle_set_pinglists)
        client_kwargs = ({"controller": controller_endpoint}
                         if controller_endpoint is not None else {})
        self.client = ControllerClient(self.endpoint, config,
                                       is_alive=self.host.is_up,
                                       **client_kwargs)
        upload_kwargs = ({"analyzer": analyzer_endpoint}
                         if analyzer_endpoint is not None else {})
        self.uploads = UploadChannel(self.endpoint, config,
                                     is_alive=self.host.is_up,
                                     **upload_kwargs)
        # Probe-lifecycle tracing (repro.obs): the Agent owns the span —
        # it opens one per probe sent and closes it exactly once, in
        # _record, which both the success and the timeout paths reach.
        self.tracer = cluster.obs.tracer
        self.states: dict[str, _RnicAgentState] = {}
        self._results: list[ProbeResult] = []
        self._upload_task: Optional[PeriodicTask] = None
        self._started = False
        self.restarts = 0
        # Overhead accounting (Figure 7)
        self.probes_sent = 0
        self.acks_sent = 0
        self.results_buffered_peak = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Create probe QPs, register with the Controller, start tasks."""
        if self._started:
            return
        self._started = True
        comm_infos: dict[str, CommInfo] = {}
        for rnic in self.host.rnics:
            state = self._init_rnic_state(rnic)
            self.states[rnic.name] = state
            comm_infos[rnic.name] = rnic.comm_info(state.qp.qpn)
        self.client.register(self.host.name, self.endpoint.name, comm_infos)
        self.host.tracer.attach(self._on_qp_event)

        sim = self.cluster.sim
        self._upload_task = sim.every(self.config.upload_interval_ns,
                                      self._upload)
        sim.every(self.config.comm_info_refresh_ns,
                  self._refresh_service_targets)
        sim.every(self.config.trace_interval_ns, self._trace_paths,
                  jitter=self.config.trace_interval_ns // 4)

    def _init_rnic_state(self, rnic: Rnic) -> _RnicAgentState:
        state = _RnicAgentState(rnic=rnic, qp=None)  # type: ignore[arg-type]
        state.qp = self.host.verbs.create_qp(
            rnic, QPType.UD,
            on_cqe=partial(self._on_cqe, state))
        sim = self.cluster.sim
        cfg = self.config
        state.tasks.append(sim.every(
            cfg.tor_mesh_interval_ns(),
            partial(self._probe_next, state, ProbeKind.TOR_MESH),
            jitter=cfg.tor_mesh_interval_ns() // 4))
        state.tasks.append(sim.every(
            cfg.tor_mesh_interval_ns(),  # retimed when pinglists arrive
            partial(self._probe_next, state, ProbeKind.INTER_TOR),
            jitter=cfg.tor_mesh_interval_ns() // 4))
        state.tasks.append(sim.every(
            cfg.service_probe_interval_ns,
            partial(self._probe_next_service, state),
            jitter=cfg.service_probe_interval_ns // 4))
        return state

    def restart(self) -> None:
        """Agent restart (host reboot path): all probe QPNs change (§4.1).

        Peers keep probing the *old* QPNs until the Controller's next
        pinglist refresh — the QPN-reset probe noise of §4.3.1.
        """
        self.restarts += 1
        comm_infos: dict[str, CommInfo] = {}
        for name, state in self.states.items():
            for out in list(state.outstanding.values()):
                if out.timeout_handle is not None:
                    out.timeout_handle.cancel()
            state.outstanding.clear()
            state.send_roles.clear()
            self.host.verbs.destroy_qp(state.rnic, state.qp)
            state.qp = self.host.verbs.create_qp(
                state.rnic, QPType.UD,
                on_cqe=partial(self._on_cqe, state))
            comm_infos[name] = state.rnic.comm_info(state.qp.qpn)
        for name, info in comm_infos.items():
            self.client.update_comm_info(name, info)

    # -- pinglists ---------------------------------------------------------------

    def _handle_set_pinglists(self, payload: dict) -> None:
        self.set_cluster_pinglists(
            payload["rnic"],
            tor_mesh=payload["tor_mesh"],
            inter_tor=payload["inter_tor"],
            tor_mesh_interval_ns=payload["tor_mesh_interval_ns"],
            inter_tor_interval_ns=payload["inter_tor_interval_ns"])

    def set_cluster_pinglists(self, rnic_name: str, *,
                              tor_mesh: list[PinglistEntry],
                              inter_tor: list[PinglistEntry],
                              tor_mesh_interval_ns: int,
                              inter_tor_interval_ns: int) -> None:
        """Controller push: replace Cluster Monitoring pinglists."""
        state = self.states[rnic_name]
        state.tor_mesh = list(tor_mesh)
        state.inter_tor = list(inter_tor)
        state.tasks[0].set_interval(tor_mesh_interval_ns)
        state.tasks[1].set_interval(inter_tor_interval_ns)

    def pinglist(self, rnic_name: str, kind: ProbeKind) -> list[PinglistEntry]:
        """Current pinglist of one kind for one RNIC (introspection)."""
        state = self.states[rnic_name]
        if kind == ProbeKind.TOR_MESH:
            return list(state.tor_mesh)
        if kind == ProbeKind.INTER_TOR:
            return list(state.inter_tor)
        return list(state.service.values())

    # -- service tracing (§4.2.2) ---------------------------------------------------

    def _on_qp_event(self, event: QpEvent) -> None:
        if event.qp_type != QPType.RC:
            return  # our services use RC; UD/UC QPs are not service flows
        state = self.states.get(event.rnic_name)
        if state is None:
            return
        if event.kind == QpEventKind.MODIFY_TO_RTS:
            assert event.five_tuple is not None and event.remote_ip is not None
            qpn = event.local_qpn
            src_port = event.five_tuple.src_port
            state.service_live.add(qpn)
            self.client.resolve_ip(
                event.remote_ip,
                partial(self._on_service_resolved, state, qpn, src_port))
        elif event.kind == QpEventKind.DESTROY:
            state.service_live.discard(event.local_qpn)
            state.service.pop(event.local_qpn, None)
            state.service_round = [e for e in state.service_round
                                   if e.kind != ProbeKind.SERVICE_TRACING
                                   or e in state.service.values()]

    def _on_service_resolved(self, state: _RnicAgentState, qpn: int,
                             src_port: int, resolved) -> None:
        if resolved is None:
            return  # peer outside the cluster; nothing to probe
        if qpn not in state.service_live:
            return  # connection died while the lookup was in flight
        target_rnic, info = resolved
        state.service[qpn] = PinglistEntry(
            kind=ProbeKind.SERVICE_TRACING, target_rnic=target_rnic,
            target=info, src_port=src_port)

    def _refresh_service_targets(self) -> None:
        """5-minute pull of fresh comm info for service targets (§5)."""
        if not self.host.up:
            return
        for state in self.states.values():
            for qpn, entry in list(state.service.items()):
                self.client.resolve_ip(
                    entry.target.ip,
                    partial(self._on_service_refreshed, state, qpn, entry))

    def _on_service_refreshed(self, state: _RnicAgentState, qpn: int,
                              entry: PinglistEntry, resolved) -> None:
        if resolved is None or qpn not in state.service:
            return
        target_rnic, info = resolved
        state.service[qpn] = PinglistEntry(
            kind=entry.kind, target_rnic=target_rnic, target=info,
            src_port=entry.src_port)

    def has_service_entries(self) -> bool:
        """Whether Service Tracing is currently active on this host."""
        return any(state.service for state in self.states.values())

    # -- probing -------------------------------------------------------------------

    def _probe_next(self, state: _RnicAgentState, kind: ProbeKind) -> None:
        entries = (state.tor_mesh if kind == ProbeKind.TOR_MESH
                   else state.inter_tor)
        if not entries or not self.host.up:
            return
        index = state.rr_index.get(kind, 0) % len(entries)
        state.rr_index[kind] = index + 1
        self._probe(state, entries[index])

    def _probe_next_service(self, state: _RnicAgentState) -> None:
        """Service Tracing is paused while no connections exist (§4.2.2)."""
        if not self.host.up or not state.service:
            return
        if not state.service_round:
            # New round: shuffle so every path is sampled at random phases
            # of the service's compute/communicate cycle (§7.3).
            state.service_round = self.rng.shuffled(state.service.values())
        self._probe(state, state.service_round.pop())

    def _probe(self, state: _RnicAgentState, entry: PinglistEntry) -> None:
        seq = next(self.cluster.probe_seqs)
        now = self.cluster.sim.now
        out = _Outstanding(seq=seq, entry=entry, issued_at_ns=now,
                           t1_host=self.host.read_clock())
        state.outstanding[seq] = out
        out.timeout_handle = self.cluster.sim.call_later(
            self.config.probe_timeout_ns,
            partial(self._on_timeout, state, seq))
        if self.tracer.enabled:
            self.tracer.open_span(
                seq, now, kind=entry.kind.value,
                prober_rnic=state.rnic.name, prober_host=self.host.name,
                target_rnic=entry.target_rnic, target_ip=entry.target.ip,
                target_qpn=entry.target.qpn, src_port=entry.src_port)
            self.tracer.event(seq, now, "agent.send", mark="t1",
                              host_clock_ns=out.t1_host)
        try:
            wr_id = self.host.verbs.post_send(
                state.rnic, state.qp, entry.target,
                src_port=entry.src_port,
                payload={"t": "probe", "seq": seq},
                payload_bytes=self.config.probe_payload_bytes)
        except LocalSendError as exc:
            # Unreachable locally (down/flapping/misconfigured RNIC): the
            # probe never leaves; it will be reported at the timeout tick
            # exactly like a probe lost in the network.
            if self.tracer.enabled:
                self.tracer.event(seq, now, "agent.local_send_error",
                                  reason=exc.reason)
            return
        state.send_roles[wr_id] = ("probe", seq)
        self.probes_sent += 1
        self._ensure_traced(state, entry)

    # -- CQE dispatch -----------------------------------------------------------------

    def _on_cqe(self, state: _RnicAgentState, cqe: Cqe) -> None:
        if cqe.kind == CqeKind.SEND:
            self._on_send_cqe(state, cqe)
        else:
            kind = cqe.payload.get("t")
            if kind == "probe":
                self._respond(state, cqe)
            elif kind == "ack1":
                self._on_ack1(state, cqe)
            elif kind == "ack2":
                self._on_ack2(state, cqe)
        # Every handler above copies what it keeps; hand the CQE storage
        # back to the RNIC for reuse (no-op when pooling is off).
        state.rnic.release_cqe(cqe)

    def _on_send_cqe(self, state: _RnicAgentState, cqe: Cqe) -> None:
        role = state.send_roles.pop(cqe.wr_id, None)
        if role is None:
            return
        tag, context = role
        if tag == "probe":
            out = state.outstanding.get(context)
            if out is not None:
                out.t2_rnic = cqe.rnic_timestamp_ns     # ② wire departure
        elif tag == "ack1":
            # ④: the first ACK hit the wire; its delay vs ③ is the
            # responder processing delay, shipped in the second ACK.
            responder_delay = cqe.rnic_timestamp_ns - context["t3"]
            self._send_ack(state, context["reply_to"], context["src_port"],
                           {"t": "ack2", "seq": context["seq"],
                            "responder_delay": responder_delay})

    # -- responder role (steps 2-3 of Figure 4) --------------------------------------

    def _respond(self, state: _RnicAgentState, cqe: Cqe) -> None:
        if not self.host.up:
            return
        t3 = cqe.rnic_timestamp_ns                      # ③ probe recv CQE
        reply_to = CommInfo(ip=cqe.src_ip, gid=cqe.src_gid, qpn=cqe.src_qpn)
        seq = cqe.payload["seq"]
        src_port = cqe.src_port  # copy now: the CQE is recycled on return
        # Userspace handling cost before the first ACK is posted: normal
        # CPU processing plus any Agent starvation stall (Figure 6 right).
        now = self.cluster.sim.now
        delay = self.host.cpu.processing_delay_ns()
        delay += self.host.cpu.starvation_stall_ns(now)
        if self.tracer.enabled:
            self.tracer.event(seq, now, "responder.recv",
                              host=self.host.name, rnic=state.rnic.name,
                              cpu_delay_ns=delay)
        self.cluster.sim.schedule(
            delay,
            partial(self._post_ack1, state, reply_to, src_port, seq, t3))

    def _post_ack1(self, state: _RnicAgentState, reply_to: CommInfo,
                   src_port: int, seq: int, t3: int) -> None:
        wr_id = self._send_ack(state, reply_to, src_port,
                               {"t": "ack1", "seq": seq})
        if wr_id is not None:
            state.send_roles[wr_id] = ("ack1", {
                "t3": t3, "reply_to": reply_to, "src_port": src_port,
                "seq": seq})

    def _send_ack(self, state: _RnicAgentState, reply_to: CommInfo,
                  src_port: int, payload: dict) -> Optional[int]:
        """ACKs echo the probe's source port, mimicking RC hardware ACKs
        so they ride the same ECMP path class (§5)."""
        try:
            wr_id = self.host.verbs.post_send(
                state.rnic, state.qp, reply_to, src_port=src_port,
                payload=payload,
                payload_bytes=self.config.probe_payload_bytes)
        except LocalSendError:
            return None
        self.acks_sent += 1
        return wr_id

    # -- prober completion (steps 4-5 of Figure 4) --------------------------------------

    def _on_ack1(self, state: _RnicAgentState, cqe: Cqe) -> None:
        out = state.outstanding.get(cqe.payload["seq"])
        if out is None:
            return  # late ACK after timeout: drop on the floor
        out.t5_rnic = cqe.rnic_timestamp_ns             # ⑤ ACK1 recv CQE
        # The prober thread lives in the same Agent process as the
        # responder: when the service starves the Agent's CPU, probes
        # *from* this host stall here past the timeout as well — the other
        # half of the Figure 6 (right) signature.
        now = self.cluster.sim.now
        delay = self.host.cpu.processing_delay_ns()
        delay += self.host.cpu.starvation_stall_ns(now)
        if self.tracer.enabled:
            self.tracer.event(out.seq, now, "prober.ack1_processing",
                              host=self.host.name, cpu_delay_ns=delay)
        self.cluster.sim.schedule(
            delay, partial(self._stamp_t6, state, out.seq))

    def _stamp_t6(self, state: _RnicAgentState, seq: int) -> None:
        out = state.outstanding.get(seq)
        if out is None:
            return
        out.t6_host = self.host.read_clock()            # ⑥ app-level done
        if self.tracer.enabled:
            self.tracer.event(seq, self.cluster.sim.now, "agent.done",
                              mark="t6", host_clock_ns=out.t6_host)
        self._maybe_complete(state, out)

    def _on_ack2(self, state: _RnicAgentState, cqe: Cqe) -> None:
        out = state.outstanding.get(cqe.payload["seq"])
        if out is None:
            return
        out.responder_delay_ns = cqe.payload["responder_delay"]
        self._maybe_complete(state, out)

    def _maybe_complete(self, state: _RnicAgentState,
                        out: _Outstanding) -> None:
        if (out.t2_rnic is None or out.t5_rnic is None
                or out.t6_host is None or out.responder_delay_ns is None):
            return
        state.outstanding.pop(out.seq, None)
        if out.timeout_handle is not None:
            out.timeout_handle.cancel()

        rtt_plus_remote = out.t5_rnic - out.t2_rnic         # (⑤-②)
        network_rtt = rtt_plus_remote - out.responder_delay_ns
        prober_processing = (out.t6_host - out.t1_host) - rtt_plus_remote
        self._record(state, out, timeout=False,
                     network_rtt_ns=network_rtt,
                     prober_processing_ns=prober_processing,
                     responder_processing_ns=out.responder_delay_ns)

    def _on_timeout(self, state: _RnicAgentState, seq: int) -> None:
        out = state.outstanding.pop(seq, None)
        if out is None:
            return
        self._record(state, out, timeout=True)

    def _record(self, state: _RnicAgentState, out: _Outstanding, *,
                timeout: bool, network_rtt_ns: Optional[int] = None,
                prober_processing_ns: Optional[int] = None,
                responder_processing_ns: Optional[int] = None) -> None:
        entry = out.entry
        five_tuple = roce_five_tuple(state.rnic.ip, entry.target.ip,
                                     entry.src_port)
        if not self.config.continuous_path_tracing and timeout:
            # Ablation: on-demand tracing observes the path only AFTER the
            # failure — truncated or rehashed, exactly the mislocalisation
            # §4.2.3 warns about.
            self._trace_tuple(state, five_tuple)
        result = ProbeResult(
            kind=entry.kind, seq=out.seq, prober_rnic=state.rnic.name,
            prober_host=self.host.name, target_rnic=entry.target_rnic,
            target_ip=entry.target.ip, target_qpn=entry.target.qpn,
            five_tuple=five_tuple, issued_at_ns=out.issued_at_ns,
            completed_at_ns=self.cluster.sim.now, timeout=timeout,
            network_rtt_ns=network_rtt_ns,
            prober_processing_ns=prober_processing_ns,
            responder_processing_ns=responder_processing_ns,
            probe_path=state.path_cache.get(five_tuple),
            ack_path=state.path_cache.get(five_tuple.reversed()))
        if self.tracer.enabled:
            now = self.cluster.sim.now
            if timeout:
                self.tracer.event(out.seq, now, "agent.result",
                                  timeout=True)
            else:
                self.tracer.event(out.seq, now, "agent.result",
                                  timeout=False,
                                  network_rtt_ns=network_rtt_ns,
                                  prober_processing_ns=prober_processing_ns,
                                  responder_processing_ns=
                                  responder_processing_ns)
            self.tracer.close_span(out.seq, now,
                                   "timeout" if timeout else "ok")
        obs = self.cluster.obs
        if obs.metrics_enabled:
            obs.metrics.counter("repro_agent_probes_total",
                                kind=entry.kind.value,
                                result="timeout" if timeout
                                else "ok").inc()
            if network_rtt_ns is not None:
                obs.metrics.histogram("repro_agent_network_rtt_ns") \
                    .observe(network_rtt_ns)
        self._results.append(result)
        self.results_buffered_peak = max(self.results_buffered_peak,
                                         len(self._results))

    # -- path tracing (§4.2.3) ------------------------------------------------------------

    def _ensure_traced(self, state: _RnicAgentState,
                       entry: PinglistEntry) -> None:
        """First sight of a 5-tuple: trace it immediately so the path is
        known *before* any failure (the continuous-tracing rationale)."""
        if not self.config.continuous_path_tracing:
            return  # ablation: trace only on demand, after failures
        five_tuple = roce_five_tuple(state.rnic.ip, entry.target.ip,
                                     entry.src_port)
        if five_tuple not in state.path_cache:
            self._trace_tuple(state, five_tuple)

    def _trace_tuple(self, state: _RnicAgentState,
                     five_tuple: FiveTuple) -> None:
        tracer = self.cluster.traceroute
        dst_port_node = self.cluster.fabric.port_for_ip(five_tuple.dst_ip)
        if dst_port_node is None:
            return
        forward = tracer.trace(five_tuple, state.rnic.name, dst_port_node)
        self._cache_path(state, five_tuple, forward)
        # The ACK direction is traced symmetrically (in deployment, by the
        # peer Agent; the Analyzer joins both sides).
        reverse = tracer.trace(five_tuple.reversed(), dst_port_node,
                               state.rnic.name)
        self._cache_path(state, five_tuple.reversed(), reverse)

    @staticmethod
    def _cache_path(state: _RnicAgentState, five_tuple: FiveTuple,
                    record: PathRecord) -> None:
        """Keep the freshest *useful* path per 5-tuple.

        A trace truncated by an in-progress failure would erase the guilty
        link from the cached path — exactly the mislocalisation continuous
        tracing exists to avoid (§4.2.3) — so an incomplete trace never
        overwrites a previously traced full path.
        """
        existing = state.path_cache.get(five_tuple)
        if existing is not None and existing.reached and not record.reached:
            return
        state.path_cache[five_tuple] = record

    def _trace_paths(self) -> None:
        """Periodic refresh of every active 5-tuple's path."""
        if not self.host.up or not self.config.continuous_path_tracing:
            return
        for state in self.states.values():
            entries = (state.tor_mesh + state.inter_tor
                       + list(state.service.values()))
            for entry in entries:
                five_tuple = roce_five_tuple(
                    state.rnic.ip, entry.target.ip, entry.src_port)
                self._trace_tuple(state, five_tuple)
            # Evict cache entries for 5-tuples no longer probed.
            live = {roce_five_tuple(state.rnic.ip, e.target.ip, e.src_port)
                    for e in entries}
            live |= {ft.reversed() for ft in live}
            for cached in list(state.path_cache):
                if cached not in live:
                    del state.path_cache[cached]

    # -- upload (§4.2.3) -------------------------------------------------------------------

    def _upload(self) -> None:
        """5-second batch upload to the Analyzer over the TCP management
        network.  A down host uploads nothing — that silence is itself the
        Analyzer's host-down signal — and neither does an idle one: an
        empty batch would refresh the Analyzer's liveness clock while
        carrying no data, masking exactly the signal silence encodes.
        Batches ride the :class:`UploadChannel`, which acks, retries with
        backoff, and bounds the resend buffer."""
        if not self.host.up or not self._results:
            return
        batch = AgentUpload(host=self.host.name,
                            uploaded_at_ns=self.cluster.sim.now,
                            results=self._results)
        self._results = []
        self.uploads.submit(batch)

    # -- overhead model (Figure 7) ------------------------------------------------------------

    def probe_rate_pps(self) -> float:
        """Current aggregate probe send rate across this host's RNICs."""
        total = 0.0
        for state in self.states.values():
            if state.tor_mesh:
                total += 1e9 / state.tasks[0].interval
            if state.inter_tor:
                total += 1e9 / state.tasks[1].interval
            if state.service:
                total += 1e9 / state.tasks[2].interval
        return total

    def overhead_estimate(self) -> dict[str, float]:
        """CPU (fraction of one core) and memory (MB) cost model.

        Calibrated to the paper's Figure 7 operating point: an 8-RNIC host
        at default rates consumes ~3% of a core and ~18.5 MB.  CPU scales
        with packet handling (probes, ACKs as responder, CQE polling);
        memory with the per-RNIC pinglists plus the 5-second result buffer.
        """
        pps = self.probe_rate_pps()
        # Each probe costs the prober ~2 sends + 3 CQEs; responding costs a
        # similar amount, and every RNIC also answers its peers' probes.
        handled_pps = pps * 2.0 * 2.0
        cpu_cores = 4e-5 * handled_pps + 0.002 * len(self.states)
        entries = sum(len(s.tor_mesh) + len(s.inter_tor) + len(s.service)
                      for s in self.states.values())
        buffered = self.results_buffered_peak
        memory_mb = 8.0 + 1.0 * len(self.states) + 0.004 * entries \
            + 0.0015 * buffered
        return {"cpu_cores": cpu_cores, "memory_mb": memory_mb}
