"""R-Pingmesh Controller (paper §4.1).

Three responsibilities:

1. **Registry** — store the latest communication info (GID/QPN) for every
   managed RNIC.  QPNs change whenever an Agent (re)starts, so Agents
   re-register on start and pull fresh info periodically; the Analyzer
   compares probe QPNs against this registry to spot QPN-reset noise.
2. **Pinglists** — a ToR-mesh pinglist (all RNICs under the same ToR) and
   an inter-ToR pinglist per RNIC.  Inter-ToR 5-tuple counts come from
   Equation 1 so that all parallel paths between ToRs are covered with
   probability ``P``; 20% of the 5-tuples rotate every hour to catch
   problems only certain 5-tuples trigger.
3. **Service-tracing lookups** — Agents resolve a service peer's IP to its
   probe-QP comm info before probing the service path.

All three run over the management network (§4.2.3): the Controller binds
the ``"controller"`` endpoint, Agents register and resolve through RPCs,
and pinglists are pushed as one-way messages — which may be delayed or
lost under a degraded control plane, leaving Agents probing from their
cached (stale) pinglists.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster import Cluster
from repro.controlplane.clients import CONTROLLER_ENDPOINT
from repro.controlplane.endpoint import Endpoint
from repro.controlplane.transport import ManagementNetwork
from repro.core.config import RPingmeshConfig
from repro.core.coverage import required_tuples
from repro.core.records import PinglistEntry, ProbeKind
from repro.host.rnic import CommInfo
from repro.net.addresses import MAX_SRC_PORT, MIN_SRC_PORT
from repro.net.clos import ClosFabricPlan
from repro.net.rail import RailFabricPlan
from repro.sim.rng import RngStream
from repro.sim.units import SECOND


class Controller:
    """Central registry + pinglist generator.

    ``scope`` restricts pinglist *ownership* to a subset of ToR switches —
    the per-pod slice a :class:`~repro.core.sharding.ControllerShard`
    serves.  A scoped controller generates tuples only for its own ToRs
    (remote picks still range over the whole fabric, so inter-pod paths
    are covered by the owning shard of each source ToR) but keeps a full
    replicated registry for cross-pod target resolution.  ``scope=None``
    (default) owns everything: the original single-controller behaviour,
    draw-for-draw.
    """

    def __init__(self, cluster: Cluster, config: RPingmeshConfig,
                 rng: RngStream, *,
                 endpoint_name: str = CONTROLLER_ENDPOINT,
                 scope: Optional[Sequence[str]] = None):
        self.cluster = cluster
        self.config = config
        self.rng = rng
        self.endpoint_name = endpoint_name
        self._scope_tors = sorted(scope) if scope is not None else None
        self._registry: dict[str, CommInfo] = {}      # rnic name -> comm info
        self._by_ip: dict[str, str] = {}              # ip -> rnic name
        self._agent_endpoints: dict[str, str] = {}    # host -> endpoint name
        self._host_rnics: dict[str, list[str]] = {}   # host -> rnic names
        self.endpoint: Optional[Endpoint] = None
        # Persistent inter-ToR tuple choices: (src_rnic, dst_rnic, src_port).
        self._inter_tor_tuples: list[tuple[str, str, int]] = []
        self._started = False
        self.pinglist_pushes = 0
        self.delta_pushes = 0
        self.rotations = 0

    # -- management-network wiring ------------------------------------------------

    def bind(self, network: ManagementNetwork) -> Endpoint:
        """Attach the Controller's endpoint and its RPC handlers."""
        self.endpoint = (
            Endpoint(self.endpoint_name, network)
            .on("register", self._handle_register)
            .on("update_comm_info", self._handle_update_comm_info)
            .on("resolve_ip", self.resolve_ip))
        return self.endpoint

    def owned_tors(self) -> list[str]:
        """The ToR switches whose pinglists this controller generates."""
        if self._scope_tors is not None:
            return list(self._scope_tors)
        return self.cluster.tors()

    def _handle_update_comm_info(self, payload) -> None:
        self.update_comm_info(*payload)

    def _handle_register(self, payload: dict) -> dict:
        self.register_host(payload["host"], payload["endpoint"],
                           payload["comm_infos"])
        return {"ok": True}

    # -- registry --------------------------------------------------------------

    def register_host(self, host: str, agent_endpoint: str,
                      comm_infos: dict[str, CommInfo]) -> None:
        """An Agent reports the probe-QP comm info of all its RNICs."""
        self._agent_endpoints[host] = agent_endpoint
        self._host_rnics[host] = list(comm_infos)
        for rnic_name, info in comm_infos.items():
            self._registry[rnic_name] = info
            self._by_ip[info.ip] = rnic_name
        if self._started:
            # Late registration (slow management network): refresh so the
            # newcomer gets pinglists — and appears in its ToR peers' —
            # without waiting for the 5-minute cycle.  Incrementally when
            # enabled (only the affected agents), else everyone.
            if self.config.incremental_pinglists:
                self._push_delta(sorted(comm_infos))
            else:
                self.push_pinglists()

    def remove_host(self, host: str) -> None:
        """Topology delta: a host left (decommission/failure domain drain).

        Drops its RNICs from the registry so peers stop targeting them at
        the next push; with incremental pinglists the affected agents are
        re-pushed immediately.
        """
        rnics = self._host_rnics.pop(host, [])
        self._agent_endpoints.pop(host, None)
        for rnic_name in rnics:
            info = self._registry.pop(rnic_name, None)
            if info is not None:
                self._by_ip.pop(info.ip, None)
        if self._started and rnics:
            if self.config.incremental_pinglists:
                self._push_delta(sorted(rnics))
            else:
                self.push_pinglists()

    def update_comm_info(self, rnic_name: str, info: CommInfo) -> None:
        """Refresh one RNIC's comm info (Agent restart path)."""
        self._registry[rnic_name] = info
        self._by_ip[info.ip] = rnic_name

    def comm_info(self, rnic_name: str) -> CommInfo:
        """Latest registered comm info for an RNIC."""
        try:
            return self._registry[rnic_name]
        except KeyError:
            raise KeyError(f"RNIC not registered: {rnic_name}") from None

    def current_qpn(self, rnic_name: str) -> Optional[int]:
        """The registry's QPN for an RNIC (None if unregistered)."""
        info = self._registry.get(rnic_name)
        return info.qpn if info else None

    def resolve_ip(self, ip: str) -> Optional[tuple[str, CommInfo]]:
        """Service-tracing lookup: peer IP -> (rnic name, comm info)."""
        rnic_name = self._by_ip.get(ip)
        if rnic_name is None:
            return None
        return rnic_name, self._registry[rnic_name]

    def registered_rnics(self) -> list[str]:
        """All registered RNIC names, sorted."""
        return sorted(self._registry)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Generate initial pinglists and start refresh/rotation cycles."""
        if self._started:
            return
        self._started = True
        self._generate_inter_tor_tuples()
        self.push_pinglists()
        sim = self.cluster.sim
        sim.every(self.config.pinglist_refresh_ns, self.push_pinglists)
        sim.every(self.config.rotation_interval_ns, self.rotate_tuples)

    # -- pinglist construction ------------------------------------------------------

    def parallel_paths(self) -> int:
        """N for Equation 1: equal-cost paths between ToR-tier switches."""
        plan = self.cluster.plan
        if isinstance(plan, ClosFabricPlan):
            return plan.parallel_paths_between_tors()
        if isinstance(plan, RailFabricPlan):
            return plan.parallel_paths_cross_rail()
        raise TypeError(f"unknown plan type: {type(plan).__name__}")

    def tuples_per_tor(self) -> int:
        """k from Equation 1 at the configured coverage probability."""
        return required_tuples(self.parallel_paths(),
                               self.config.coverage_probability)

    def _random_port(self) -> int:
        return self.rng.randint(MIN_SRC_PORT, MAX_SRC_PORT)

    def _generate_inter_tor_tuples(self) -> None:
        """Choose k cross-ToR (src, dst, port) triples per *owned* ToR.

        Remote picks range over the whole fabric: a scoped shard owns the
        tuples sourced in its pod, including the inter-pod slice.
        """
        k = self.tuples_per_tor()
        tuples: list[tuple[str, str, int]] = []
        tors = self.cluster.tors()
        for tor in self.owned_tors():
            local = self.cluster.rnics_under_tor(tor)
            remote = [r for other in tors if other != tor
                      for r in self.cluster.rnics_under_tor(other)]
            if not local or not remote:
                continue
            for _ in range(k):
                tuples.append((self.rng.choice(local),
                               self.rng.choice(remote),
                               self._random_port()))
        self._inter_tor_tuples = tuples

    def rotate_tuples(self) -> None:
        """Replace ``rotation_fraction`` of inter-ToR tuples (hourly, §5).

        Rotation re-rolls both the destination and the source port, so
        5-tuple-specific problems (silent drops) eventually get triggered.
        """
        if not self._inter_tor_tuples:
            return
        self.rotations += 1
        n = max(1, round(len(self._inter_tor_tuples)
                         * self.config.rotation_fraction))
        indices = self.rng.sample(range(len(self._inter_tor_tuples)), n)
        tors = self.cluster.tors()
        for i in indices:
            src, _dst, _port = self._inter_tor_tuples[i]
            src_tor = self.cluster.tor_of(src)
            remote = [r for other in tors if other != src_tor
                      for r in self.cluster.rnics_under_tor(other)]
            if not remote:
                continue
            self._inter_tor_tuples[i] = (src, self.rng.choice(remote),
                                         self._random_port())
        self.push_pinglists()

    def _tor_mesh_entries(self, rnic_name: str) -> list[PinglistEntry]:
        tor = self.cluster.tor_of(rnic_name)
        entries = []
        for peer in self.cluster.rnics_under_tor(tor):
            if peer == rnic_name or peer not in self._registry:
                continue
            entries.append(PinglistEntry(
                kind=ProbeKind.TOR_MESH, target_rnic=peer,
                target=self._registry[peer], src_port=self._random_port()))
        return entries

    def _inter_tor_entries(self) -> dict[str, list[PinglistEntry]]:
        by_src: dict[str, list[PinglistEntry]] = {}
        for src, dst, port in self._inter_tor_tuples:
            if dst not in self._registry:
                continue
            by_src.setdefault(src, []).append(PinglistEntry(
                kind=ProbeKind.INTER_TOR, target_rnic=dst,
                target=self._registry[dst], src_port=port))
        return by_src

    def inter_tor_interval_ns(self, entry_count: int) -> int:
        """Per-RNIC inter-ToR probing interval.

        Sized so each link above the ToRs sees >= ``target_link_pps`` per
        direction: with k tuples spread over N parallel paths, a given
        fabric link expects ~k/N of the tuples, so each tuple must fire at
        ``target_link_pps * N / k`` pps.  An Agent round-robins its entries,
        so its thread interval is ``1 / (rate_per_tuple * entries)``.
        """
        if entry_count <= 0:
            return self.config.pinglist_refresh_ns  # idle placeholder
        n = self.parallel_paths()
        k = max(1, self.tuples_per_tor())
        rate_per_tuple = self.config.target_link_pps * n / k
        interval = SECOND / (rate_per_tuple * entry_count)
        return max(1_000, round(interval))

    def push_pinglists(self) -> None:
        """Build fresh pinglists from the registry and push to every Agent.

        This is the 5-minute refresh of §5; it is also what eventually
        replaces outdated QPNs after an Agent restart.  Pushes are one-way
        messages: on a degraded management network they may be delayed or
        lost, and the Agent simply keeps probing from its cached pinglists.
        """
        assert self.endpoint is not None, "Controller not bound to a network"
        self.pinglist_pushes += 1
        inter = self._inter_tor_entries()
        for host, agent_endpoint in self._agent_endpoints.items():
            self._push_host(host, agent_endpoint, inter)

    def _push_host(self, host: str, agent_endpoint: str,
                   inter: dict[str, list[PinglistEntry]]) -> None:
        """Send fresh pinglists for every RNIC of one host."""
        for rnic_name in self._host_rnics[host]:
            tor_entries = self._tor_mesh_entries(rnic_name)
            inter_entries = inter.get(rnic_name, [])
            self.endpoint.send(agent_endpoint, "set_pinglists", {
                "rnic": rnic_name,
                "tor_mesh": tor_entries,
                "inter_tor": inter_entries,
                "tor_mesh_interval_ns":
                    self.config.tor_mesh_interval_ns(),
                "inter_tor_interval_ns": self.inter_tor_interval_ns(
                    len(inter_entries)),
            })

    # -- incremental maintenance (DESIGN.md §11) -----------------------------------

    def _push_delta(self, changed_rnics: list[str]) -> None:
        """Patch pinglists after a registry delta, pushing only the agents
        whose lists actually changed.

        A registration/removal of ``changed_rnics`` affects exactly:

        * agents with an RNIC under a changed RNIC's ToR (their ToR-mesh
          gained/lost those peers — and the newcomer itself needs its
          initial lists);
        * agents sourcing an inter-ToR tuple whose destination is a
          changed RNIC (the entry was filtered while unregistered, or
          must be filtered now).

        Tuple *choices* never change here: ``_generate_inter_tor_tuples``
        draws from the topology, not the registry, so a registry delta
        only re-filters existing tuples.  That is what makes the patched
        result provably identical (ports aside) to a full regeneration.
        """
        assert self.endpoint is not None, "Controller not bound to a network"
        changed = set(changed_rnics)
        changed_tors = {self.cluster.tor_of(r) for r in changed_rnics}
        affected_hosts: set[str] = set()
        for host, rnics in self._host_rnics.items():
            if any(self.cluster.tor_of(r) in changed_tors for r in rnics):
                affected_hosts.add(host)
        for src, dst, _port in self._inter_tor_tuples:
            if dst in changed:
                owner = self.cluster.host_of_rnic(src).name
                if owner in self._host_rnics:
                    affected_hosts.add(owner)
        if not affected_hosts:
            return
        self.delta_pushes += 1
        inter = self._inter_tor_entries()
        for host in sorted(affected_hosts):
            self._push_host(host, self._agent_endpoints[host], inter)
