"""Two-tier sharded control plane (DESIGN.md §11).

The paper's deployment spans tens of thousands of RNICs; one Controller /
Analyzer pair holding every probe result in RAM caps how far scenarios
scale.  This module splits both along the fabric's natural seam — the pod:

* :class:`ControllerShard` — a scoped :class:`~repro.core.controller.
  Controller` owning registration, CommInfo, and pinglist generation for
  the ToRs of one pod group, plus the inter-pod tuple slice sourced
  there.  Registrations replicate through the :class:`RootController` so
  every shard can resolve cross-pod targets.
* :class:`AnalyzerShard` — a scoped :class:`~repro.core.analyzer.
  Analyzer` ingesting its pod's uploads locally and running the full
  classification / Algorithm-1 pipeline on pod-local evidence.  After
  each window it ships a :class:`ShardWindowSummary` — mergeable plain
  data (vote tallies, SLA counts, quantile-sketch states), never raw
  ``ProbeResult``s — to the :class:`RootAnalyzer`, then trims its local
  retention to ``shard_window_retention`` windows.
* :class:`RootAnalyzer` — collects summaries per window, fuses them into
  cluster-wide verdicts (vote Counters merge across pods; fused switch
  suspects replace the shards' pod-local ones) and cluster SLAs (sketch
  merges in sorted shard order — byte-stable by construction), and
  broadcasts fused cluster state (down hosts, quarantines) back to the
  shards, which apply it from the next window on (one-window lag).

Everything crosses the simulated management network as messages; with the
default inline transport the sharded system stays fully deterministic.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass
from functools import partial
from typing import Any, Optional

from repro.cluster import Cluster
from repro.controlplane.clients import ANALYZER_ENDPOINT, CONTROLLER_ENDPOINT
from repro.controlplane.endpoint import Endpoint
from repro.controlplane.transport import ManagementNetwork
from repro.core.analyzer import Analyzer, ServiceMonitor, WindowAnalysis
from repro.core.config import RPingmeshConfig
from repro.core.controller import Controller
from repro.core.localization import Localization, localize
from repro.core.records import (Priority, ProbeKind, Problem,
                                ProblemCategory)
from repro.core.sla import SlaHistory, SlaReport, SlaWindow
from repro.diagnosis.fusion import FusionReport, fuse_window
from repro.diagnosis.inband import merge_link_evidence, slice_links
from repro.host.rnic import CommInfo
from repro.sim.sketch import QuantileSketch


def controller_shard_endpoint(index: int) -> str:
    """Management-network endpoint name of one controller shard."""
    return f"controller.shard{index}"


def analyzer_shard_endpoint(index: int) -> str:
    """Management-network endpoint name of one analyzer shard."""
    return f"analyzer.shard{index}"


# -- pod partitioning ----------------------------------------------------------


def pod_of_tor(tor: str) -> str:
    """The pod group a ToR-tier switch belongs to.

    Clos switches are named ``pod{p}-tor{t}`` so the prefix is the pod;
    rail switches (``rail{r}``) have no pod tier and each forms its own
    group, which degrades gracefully to per-switch sharding.
    """
    return tor.split("-", 1)[0] if "-" in tor else tor


@dataclass(frozen=True, slots=True)
class PodMap:
    """Assignment of ToR switches to shards (pods never split)."""

    shard_tors: tuple[tuple[str, ...], ...]

    @classmethod
    def build(cls, cluster: Cluster, shard_count: int) -> "PodMap":
        """Group ToRs by pod, then deal pod groups round-robin.

        Requesting more shards than pods yields one shard per pod — a
        shard with no ToRs would be dead weight.
        """
        pods: dict[str, list[str]] = {}
        for tor in cluster.tors():  # sorted by Topology.switches
            pods.setdefault(pod_of_tor(tor), []).append(tor)
        groups = [tuple(pods[name]) for name in sorted(pods)]
        count = max(1, min(shard_count, len(groups)))
        assigned: list[list[str]] = [[] for _ in range(count)]
        for i, group in enumerate(groups):
            assigned[i % count].extend(group)
        return cls(tuple(tuple(tors) for tors in assigned))

    @property
    def shard_count(self) -> int:
        return len(self.shard_tors)

    def shard_of_tor(self, tor: str) -> int:
        """Which shard owns a ToR."""
        for index, tors in enumerate(self.shard_tors):
            if tor in tors:
                return index
        raise KeyError(f"no shard owns ToR {tor!r}")

    def shard_of_host(self, cluster: Cluster, host_name: str) -> int:
        """Which shard serves a host (by its first RNIC's ToR)."""
        host = cluster.hosts[host_name]
        return self.shard_of_tor(cluster.tor_of(host.rnics[0].name))


# -- mergeable shard summaries -------------------------------------------------


@dataclass(frozen=True, slots=True)
class ScopeSlaSummary:
    """One scope's SLA numbers as mergeable plain data.

    Counts are exact integers (sums merge them); percentile distributions
    travel as :meth:`QuantileSketch.state` forms, whose bucket-wise merge
    is order-independent.
    """

    probes_total: int
    probes_ok: int
    timeouts_rnic: int
    timeouts_switch: int
    timeouts_non_network: int
    rtt_sketch: tuple[tuple[str, Any], ...]
    processing_sketch: tuple[tuple[str, Any], ...]


@dataclass(frozen=True, slots=True)
class ShardWindowSummary:
    """Everything one AnalyzerShard concluded for one window, as data.

    This is the *only* thing shards ship upward — bounded size regardless
    of probe volume, unlike the raw ``ProbeResult`` stream.
    """

    shard: int
    window_start_ns: int
    window_end_ns: int
    results_processed: int
    down_hosts: tuple[str, ...]
    qpn_reset_timeouts: int
    anomalous_rnics: tuple[str, ...]
    cpu_noise_hosts: tuple[str, ...]
    quarantined: tuple[tuple[str, int], ...]   # rnic -> quarantined-until ns
    problems: tuple[Problem, ...]              # pod-local verdicts (copies)
    cluster_votes: tuple[tuple[str, int], ...]
    cluster_paths: int
    cluster_anomalies: int
    service_votes: tuple[tuple[str, int], ...]
    service_paths: int
    service_anomalies: int
    service_members: tuple[str, ...]
    cluster_sla: ScopeSlaSummary
    service_sla: ScopeSlaSummary
    # This shard's pod-owned slice of the window's INT link evidence
    # (repro.diagnosis.inband.IntLinkEvidence records) — bounded by the
    # collector's top-K, disjoint across shards, merged at the root.
    int_links: tuple = ()


def _sketch_state(tracker, accuracy: float) -> tuple[tuple[str, Any], ...]:
    """A tracker's distribution as canonical sketch state items.

    Sketch-mode trackers export directly; exact trackers are folded into
    a sketch first (the shard keeps exactness locally, the wire format is
    always the mergeable sketch).
    """
    if isinstance(tracker, QuantileSketch):
        state = tracker.state()
    else:
        sketch = QuantileSketch(accuracy)
        sketch.extend(tracker.samples())
        state = sketch.state()
    return tuple(sorted(state.items()))


def _scope_summary(window: SlaWindow, accuracy: float) -> ScopeSlaSummary:
    return ScopeSlaSummary(
        probes_total=window.probes_total,
        probes_ok=window.probes_ok,
        timeouts_rnic=window.timeouts_rnic,
        timeouts_switch=window.timeouts_switch,
        timeouts_non_network=window.timeouts_non_network,
        rtt_sketch=_sketch_state(window.rtt, accuracy),
        processing_sketch=_sketch_state(window.processing, accuracy))


def _loc_items(loc: Optional[Localization]
               ) -> tuple[tuple[tuple[str, int], ...], int]:
    if loc is None:
        return (), 0
    return tuple(sorted(loc.votes.items())), loc.paths_considered


# -- controller tier -----------------------------------------------------------


class ControllerShard(Controller):
    """A Controller scoped to one pod group's ToRs.

    Owns its pod's registrations, ToR-mesh pinglists, and the inter-ToR
    tuples *sourced* in its pod (destinations range over the whole
    fabric, so inter-pod paths stay covered).  Registry writes replicate
    through the root so peer shards can resolve cross-pod targets.
    """

    def __init__(self, cluster: Cluster, config: RPingmeshConfig, rng,
                 shard_index: int, tors: tuple[str, ...], *,
                 root_endpoint: str = CONTROLLER_ENDPOINT):
        super().__init__(cluster, config, rng,
                         endpoint_name=controller_shard_endpoint(shard_index),
                         scope=tors)
        self.shard_index = shard_index
        self._root_endpoint = root_endpoint

    def bind(self, network: ManagementNetwork) -> Endpoint:
        endpoint = super().bind(network)
        endpoint.on("registry_delta", self._handle_registry_delta)
        return endpoint

    def register_host(self, host: str, agent_endpoint: str,
                      comm_infos: dict[str, CommInfo]) -> None:
        super().register_host(host, agent_endpoint, comm_infos)
        assert self.endpoint is not None
        self.endpoint.send(self._root_endpoint, "replicate_registry", {
            "shard": self.shard_index, "comm_infos": dict(comm_infos)})

    def update_comm_info(self, rnic_name: str, info: CommInfo) -> None:
        super().update_comm_info(rnic_name, info)
        if self.endpoint is not None:
            self.endpoint.send(self._root_endpoint, "replicate_registry", {
                "shard": self.shard_index, "comm_infos": {rnic_name: info}})

    def _handle_registry_delta(self, payload: dict) -> None:
        """Peer-pod registry entries relayed by the root.

        Merged without taking ownership (no agent endpoint here); a
        late-arriving cross-pod registration still refreshes this shard's
        pinglists so inter-pod tuples targeting the newcomer un-filter —
        the sharded analogue of the single controller's late-registration
        refresh.
        """
        comm_infos: dict[str, CommInfo] = payload["comm_infos"]
        fresh = []
        for rnic_name in sorted(comm_infos):
            info = comm_infos[rnic_name]
            if rnic_name not in self._registry:
                fresh.append(rnic_name)
            self._registry[rnic_name] = info
            self._by_ip[info.ip] = rnic_name
        if self._started and fresh:
            if self.config.incremental_pinglists:
                self._push_delta(fresh)
            else:
                self.push_pinglists()


class RootController:
    """The thin root of the controller tier.

    Holds the fused registry, relays registry deltas between shards, and
    answers ``resolve_ip`` on the legacy ``"controller"`` endpoint for
    anything not wired to a shard.  It generates no pinglists itself —
    that work is entirely sharded.
    """

    def __init__(self, cluster: Cluster, config: RPingmeshConfig,
                 shards: list[ControllerShard]):
        self.cluster = cluster
        self.config = config
        self.shards = shards
        self.endpoint: Optional[Endpoint] = None
        self._registry: dict[str, CommInfo] = {}
        self._by_ip: dict[str, str] = {}
        self._started = False

    # -- wiring -----------------------------------------------------------------

    def bind(self, network: ManagementNetwork) -> Endpoint:
        """Attach the root endpoint and bind every shard."""
        self.endpoint = (
            Endpoint(CONTROLLER_ENDPOINT, network)
            .on("replicate_registry", self._handle_replicate)
            .on("resolve_ip", self.resolve_ip))
        for shard in self.shards:
            shard.bind(network)
        return self.endpoint

    def start(self) -> None:
        """Start every shard's pinglist generation (root has no loop)."""
        if self._started:
            return
        self._started = True
        for shard in self.shards:
            shard.start()

    def _handle_replicate(self, payload: dict) -> None:
        comm_infos: dict[str, CommInfo] = payload["comm_infos"]
        for rnic_name in sorted(comm_infos):
            info = comm_infos[rnic_name]
            self._registry[rnic_name] = info
            self._by_ip[info.ip] = rnic_name
        assert self.endpoint is not None
        for shard in self.shards:
            if shard.shard_index != payload["shard"]:
                self.endpoint.send(shard.endpoint_name, "registry_delta",
                                   {"comm_infos": comm_infos})

    # -- Controller-compatible read surface --------------------------------------

    def comm_info(self, rnic_name: str) -> CommInfo:
        """Latest replicated comm info for an RNIC."""
        try:
            return self._registry[rnic_name]
        except KeyError:
            raise KeyError(f"RNIC not registered: {rnic_name}") from None

    def current_qpn(self, rnic_name: str) -> Optional[int]:
        """The fused registry's QPN for an RNIC (None if unregistered)."""
        info = self._registry.get(rnic_name)
        return info.qpn if info else None

    def resolve_ip(self, ip: str) -> Optional[tuple[str, CommInfo]]:
        """Service-tracing lookup against the fused registry."""
        rnic_name = self._by_ip.get(ip)
        if rnic_name is None:
            return None
        return rnic_name, self._registry[rnic_name]

    def registered_rnics(self) -> list[str]:
        """All replicated RNIC names, sorted."""
        return sorted(self._registry)

    def push_pinglists(self) -> None:
        """Force a full refresh on every shard."""
        for shard in self.shards:
            shard.push_pinglists()

    @property
    def pinglist_pushes(self) -> int:
        return sum(s.pinglist_pushes for s in self.shards)

    @property
    def delta_pushes(self) -> int:
        return sum(s.delta_pushes for s in self.shards)

    @property
    def rotations(self) -> int:
        return sum(s.rotations for s in self.shards)


# -- analyzer tier -------------------------------------------------------------


class AnalyzerShard(Analyzer):
    """An Analyzer scoped to one pod group's uploads.

    Runs the unmodified classification pipeline on pod-local evidence,
    augmented by the root's fused cluster state (remote down hosts and
    quarantines, applied with a one-window lag), ships a summary upward
    after every window, and trims local retention."""

    def __init__(self, cluster: Cluster, controller: Controller,
                 config: RPingmeshConfig, shard_index: int, *,
                 root_endpoint: str = ANALYZER_ENDPOINT):
        super().__init__(cluster, controller, config,
                         endpoint_name=analyzer_shard_endpoint(shard_index))
        self.shard_index = shard_index
        self._root_endpoint = root_endpoint
        self._remote_down: set[str] = set()
        # Per-side (cluster/service) localization evidence for the window
        # being analysed, WITHOUT the min-anomalies gate: Algorithm-1
        # votes are additive over disjoint anomaly sets, so shipping the
        # ungated tallies lets the root reproduce the unsharded vote
        # exactly and apply the threshold to the cluster-wide sum.
        self._side_evidence: dict[bool, tuple[Optional[Localization], int]]
        self._side_evidence = {}
        # INT evidence source for summary slicing.  Deliberately NOT the
        # base class's int_provider: fusion must run exactly once per
        # window, at the root, on the merged cluster-wide evidence —
        # shard-local fusion would duplicate INT-origin problems upward.
        self._int_source = None

    def attach_int_evidence(self, provider) -> None:
        """Slice INT evidence into summaries; the root fuses."""
        self._int_source = provider

    def bind(self, network: ManagementNetwork) -> Endpoint:
        endpoint = super().bind(network)
        endpoint.on("cluster_state", self._handle_cluster_state)
        return endpoint

    def _handle_cluster_state(self, payload: dict) -> None:
        """Root broadcast after each fused window: cross-pod evidence."""
        self._remote_down = set(payload["down_hosts"])
        for rnic, until in payload["quarantined"]:
            if self._quarantined_until.get(rnic, 0) < until:
                self._quarantined_until[rnic] = until

    def _down_hosts(self, now: int) -> set[str]:
        """Pod-local silence detection plus the root's fused verdicts.

        A shard only hears uploads from its own pod, so cross-pod down
        hosts (targets of this pod's inter-ToR probes) come from the
        root's previous fusion round."""
        down = super()._down_hosts(now)
        return down | {h for h in self._remote_down
                       if h not in self._last_upload_ns}

    def analyze(self) -> WindowAnalysis:
        window = super().analyze()
        assert self.endpoint is not None
        self.endpoint.send(self._root_endpoint, "shard_summary",
                           self._summarize(window))
        self._trim_retention()
        return window

    def _emit_problems(self, results, classification, window, now) -> None:
        super()._emit_problems(results, classification, window, now)
        # Capture the ungated per-side vote tallies for the summary (the
        # base class only localizes above min_anomalies_for_localization;
        # the root needs every shard's votes to reproduce the cluster-wide
        # tally and apply that gate to the summed count).
        by_seq = {r.seq: r for r in results}
        self._side_evidence = {}
        for service_side in (False, True):
            anomalies = [
                by_seq[s] for s, c in classification.items()
                if c == ProblemCategory.SWITCH_NETWORK_PROBLEM
                and (by_seq[s].kind == ProbeKind.SERVICE_TRACING)
                == service_side]
            loc = (localize([r.probe_path for r in anomalies],
                            [r.ack_path for r in anomalies])
                   if anomalies else None)
            self._side_evidence[service_side] = (loc, len(anomalies))

    def _summarize(self, window: WindowAnalysis) -> ShardWindowSummary:
        accuracy = self.config.sketch_relative_accuracy
        report = self.sla.latest()
        assert report is not None  # analyze() always appends one
        cluster_loc, cluster_n = self._side_evidence.get(False, (None, 0))
        service_loc, service_n = self._side_evidence.get(True, (None, 0))
        cluster_votes, cluster_paths = _loc_items(cluster_loc)
        service_votes, service_paths = _loc_items(service_loc)
        cls = ProblemCategory.SWITCH_NETWORK_PROBLEM
        int_links: tuple = ()
        if self._int_source is not None:
            summary = self._int_source.window_summary(window.window_end_ns)
            if summary is not None:
                scope = getattr(self.controller, "_scope_tors", None) or ()
                pods = {pod_of_tor(tor) for tor in scope}
                int_links = slice_links(
                    summary.links, pods,
                    include_unowned=self.shard_index == 0)
        return ShardWindowSummary(
            shard=self.shard_index,
            window_start_ns=window.window_start_ns,
            window_end_ns=window.window_end_ns,
            results_processed=window.results_processed,
            down_hosts=tuple(sorted(window.down_hosts)),
            qpn_reset_timeouts=window.qpn_reset_timeouts,
            anomalous_rnics=tuple(sorted(window.anomalous_rnics)),
            cpu_noise_hosts=tuple(sorted(window.cpu_noise_hosts)),
            quarantined=tuple(sorted(self._quarantined_until.items())),
            # Copies: the root re-prioritises fused problems; aliasing the
            # shard's Problem objects would let that mutation leak back.
            problems=tuple(dataclasses.replace(p) for p in window.problems
                           if p.category != cls),
            cluster_votes=cluster_votes,
            cluster_paths=cluster_paths,
            cluster_anomalies=cluster_n,
            service_votes=service_votes,
            service_paths=service_paths,
            service_anomalies=service_n,
            service_members=tuple(sorted(self._service_members)),
            cluster_sla=_scope_summary(report.cluster, accuracy),
            service_sla=_scope_summary(report.service, accuracy),
            int_links=int_links)

    def _trim_retention(self) -> None:
        """Drop windows/reports already summarised to the root."""
        keep = self.config.shard_window_retention
        if len(self.windows) > keep:
            del self.windows[:-keep]
            cutoff = self.windows[0].window_start_ns
            self.problems = [p for p in self.problems
                             if p.window_start_ns >= cutoff]
        if len(self.sla.reports) > keep:
            del self.sla.reports[:-keep]


class RootAnalyzer:
    """Fuses per-pod shard summaries into cluster-wide conclusions.

    Exposes the same read surface as :class:`Analyzer` (``windows``,
    ``problems``, ``sla``, ``network_innocent`` …) so dashboards, replay
    digests, and experiments consume fused output unchanged."""

    def __init__(self, cluster: Cluster, config: RPingmeshConfig,
                 shards: list[AnalyzerShard]):
        self.cluster = cluster
        self.config = config
        self.shards = shards
        self.service_monitor: Optional[ServiceMonitor] = None
        self.endpoint: Optional[Endpoint] = None
        self.sla = SlaHistory()
        self.windows: list[WindowAnalysis] = []
        self.problems: list[Problem] = []
        self.category_counts: Counter = Counter()
        self.fusions = 0
        self.int_provider = None
        self.fusion = FusionReport()
        # window_end_ns -> shard index -> summary, fused once complete.
        self._pending: dict[int, dict[int, ShardWindowSummary]] = {}
        self._service_members: dict[str, int] = {}
        self._started = False

    # -- wiring -----------------------------------------------------------------

    def bind(self, network: ManagementNetwork) -> Endpoint:
        """Attach the root endpoint and bind every shard."""
        self.endpoint = (
            Endpoint(ANALYZER_ENDPOINT, network)
            .on("shard_summary", self._receive_summary))
        for shard in self.shards:
            shard.bind(network)
        return self.endpoint

    def start(self) -> None:
        """Start every shard's analysis loop (fusion is arrival-driven)."""
        if self._started:
            return
        self._started = True
        for shard in self.shards:
            shard.start()

    def attach_service_monitor(self, monitor: ServiceMonitor) -> None:
        """Feed the degradation signal to the root and every shard."""
        self.service_monitor = monitor
        for shard in self.shards:
            shard.attach_service_monitor(monitor)

    def add_upload_listener(self, listener) -> None:
        """Tap the raw upload stream on every shard."""
        for shard in self.shards:
            shard.add_upload_listener(listener)

    def attach_int_evidence(self, provider) -> None:
        """Enable INT fusion: shards slice evidence, the root fuses it."""
        self.int_provider = provider
        for shard in self.shards:
            shard.attach_int_evidence(provider)

    # -- summary ingestion & fusion ----------------------------------------------

    def _receive_summary(self, summary: ShardWindowSummary) -> None:
        bucket = self._pending.setdefault(summary.window_end_ns, {})
        bucket[summary.shard] = summary
        if len(bucket) == len(self.shards):
            # Straggler discipline: a complete window also flushes any
            # older partial ones (a dead/partitioned shard must not wedge
            # fusion forever).
            for end in sorted(self._pending):
                if end <= summary.window_end_ns:
                    self._fuse(end, self._pending.pop(end))

    def _fuse(self, window_end_ns: int,
              summaries: dict[int, ShardWindowSummary]) -> None:
        """Merge one window's shard summaries into cluster conclusions."""
        self.fusions += 1
        ordered = [summaries[i] for i in sorted(summaries)]
        window = WindowAnalysis(
            window_start_ns=min(s.window_start_ns for s in ordered),
            window_end_ns=window_end_ns)
        window.results_processed = sum(s.results_processed for s in ordered)
        window.qpn_reset_timeouts = sum(s.qpn_reset_timeouts
                                        for s in ordered)
        for s in ordered:
            window.down_hosts.update(s.down_hosts)
            window.anomalous_rnics.update(s.anomalous_rnics)
            window.cpu_noise_hosts.update(s.cpu_noise_hosts)
            for member in s.service_members:
                self._service_members[member] = window_end_ns

        # Pod-local problems (RNIC/latency verdicts) pass through; switch
        # problems are re-derived from the *merged* votes so a fault on a
        # spine seen from several pods localises once, with the combined
        # tally.  HOST_DOWN merges by host: once the cluster-state
        # broadcast marks a host down, every pod probing it reports the
        # same verdict, and the fused evidence is the sum of each pod's
        # timeouts against it — one problem, cluster-wide evidence.
        host_down: dict[str, Problem] = {}
        for s in ordered:
            for p in s.problems:
                if p.category != ProblemCategory.HOST_DOWN:
                    window.problems.append(p)
                elif p.locus in host_down:
                    host_down[p.locus].evidence_count += p.evidence_count
                else:
                    host_down[p.locus] = p
        window.problems.extend(host_down[h] for h in sorted(host_down))
        for service_side in (False, True):
            loc, anomalies = self._merge_localization(ordered, service_side)
            # Same gate as the unsharded path, applied to the cluster-wide
            # sum: votes merge additively over the pods' disjoint anomaly
            # sets, so tally and threshold match the single Analyzer.
            if anomalies < self.config.min_anomalies_for_localization:
                continue
            if service_side:
                window.service_localization = loc
            else:
                window.cluster_localization = loc
            suspects = loc.suspects[:3] or ["unlocalized"]
            for suspect in suspects:
                window.problems.append(Problem(
                    category=ProblemCategory.SWITCH_NETWORK_PROBLEM,
                    locus=suspect, detected_at_ns=window_end_ns,
                    window_start_ns=window.window_start_ns,
                    evidence_count=anomalies,
                    from_service_tracing=service_side,
                    detail=f"votes={loc.votes.get(suspect, 0)}"))

        # INT fusion over the merged per-shard evidence slices — exactly
        # once per window, after the fused vote problems exist, so the
        # sharded and single-analyzer paths sharpen the same loci.
        merged_int = merge_link_evidence(s.int_links for s in ordered)
        if merged_int:
            self.fusion.merge(fuse_window(
                window, merged_int,
                threshold_ns=self.config.high_rtt_threshold_ns,
                min_evidence=self.config.min_anomalies_for_localization))

        self._fuse_sla(window, ordered)
        self._assign_priorities(window)
        self.windows.append(window)
        self.problems.extend(window.problems)
        self.category_counts.update(p.category for p in window.problems)
        self._broadcast_cluster_state(window, ordered)

    def _merge_localization(self, ordered: list[ShardWindowSummary],
                            service_side: bool
                            ) -> tuple[Localization, int]:
        """Cluster-wide Algorithm-1 tally from per-pod partial tallies.

        Mirrors :func:`~repro.core.localization._argmax` on the merged
        Counter — including the all-paths-unknown case, where the result
        carries no suspects and the caller reports "unlocalized"."""
        votes: Counter = Counter()
        paths = 0
        anomalies = 0
        for s in ordered:
            items = s.service_votes if service_side else s.cluster_votes
            votes.update(dict(items))
            paths += s.service_paths if service_side else s.cluster_paths
            anomalies += (s.service_anomalies if service_side
                          else s.cluster_anomalies)
        if not votes:
            return Localization(paths_considered=paths), anomalies
        best = max(votes.values())
        suspects = sorted(name for name, count in votes.items()
                          if count == best)
        return Localization(suspects=suspects, votes=votes,
                            paths_considered=paths), anomalies

    def _fuse_sla(self, window: WindowAnalysis,
                  ordered: list[ShardWindowSummary]) -> None:
        report = SlaReport(
            window.window_start_ns, window.window_end_ns,
            tracker=partial(QuantileSketch,
                            self.config.sketch_relative_accuracy))
        for scope_name in ("cluster", "service"):
            scope: SlaWindow = getattr(report, scope_name)
            for s in ordered:  # sorted shard order: deterministic fold
                part: ScopeSlaSummary = getattr(s, f"{scope_name}_sla")
                scope.probes_total += part.probes_total
                scope.probes_ok += part.probes_ok
                scope.timeouts_rnic += part.timeouts_rnic
                scope.timeouts_switch += part.timeouts_switch
                scope.timeouts_non_network += part.timeouts_non_network
                scope.rtt.merge(QuantileSketch.from_state(
                    dict(part.rtt_sketch)))
                scope.processing.merge(QuantileSketch.from_state(
                    dict(part.processing_sketch)))
        self.sla.append(report)

    def _broadcast_cluster_state(
            self, window: WindowAnalysis,
            ordered: list[ShardWindowSummary]) -> None:
        """Push the fused cross-pod evidence back down to every shard."""
        assert self.endpoint is not None
        quarantined: dict[str, int] = {}
        for s in ordered:
            for rnic, until in s.quarantined:
                if quarantined.get(rnic, 0) < until:
                    quarantined[rnic] = until
        payload = {
            "window_end_ns": window.window_end_ns,
            "down_hosts": tuple(sorted(window.down_hosts)),
            "quarantined": tuple(sorted(quarantined.items())),
        }
        for shard in self.shards:
            self.endpoint.send(shard.endpoint_name, "cluster_state", payload)

    # -- Analyzer-compatible read surface -----------------------------------------

    def in_service_network(self, locus: str,
                           now: Optional[int] = None) -> bool:
        """Whether a device/link was in the service network recently."""
        if now is None:
            now = self.cluster.sim.now
        seen = self._service_members.get(locus)
        if seen is None:
            return False
        return now - seen <= 3 * self.config.analysis_period_ns

    def _assign_priorities(self, window: WindowAnalysis) -> None:
        degraded = (self.service_monitor.degraded()
                    if self.service_monitor is not None else False)
        for problem in window.problems:
            affects_service = (problem.from_service_tracing
                               or self.in_service_network(
                                   problem.locus, window.window_end_ns))
            if affects_service:
                problem.priority = Priority.P0 if degraded else Priority.P1
            else:
                problem.priority = Priority.P2

    def network_innocent(self) -> bool:
        """§4.3.4 over the latest *fused* window."""
        if not self.windows:
            return True
        return all(p.priority == Priority.P2
                   for p in self.windows[-1].problems)

    def distinct_problems(self) -> dict[tuple[str, str], list[Problem]]:
        """Fused problems grouped by (category, locus)."""
        grouped: dict[tuple[str, str], list[Problem]] = {}
        for problem in self.problems:
            grouped.setdefault(problem.key(), []).append(problem)
        return grouped

    @property
    def ingest_accepted(self) -> int:
        return sum(s.ingest_accepted for s in self.shards)

    @property
    def ingest_dropped(self) -> int:
        return sum(s.ingest_dropped for s in self.shards)

    @property
    def ingest_backlog(self) -> int:
        return sum(s.ingest_backlog for s in self.shards)

    def memory_bytes(self) -> int:
        """Whole analyzer tier: fused state plus every shard's retention."""
        windows = sum(512 + 128 * len(w.problems) for w in self.windows)
        own = 1024 + windows + self.sla.memory_bytes()
        return own + sum(s.memory_bytes() for s in self.shards)
