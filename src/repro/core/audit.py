"""Probe-coverage auditing.

§5 of the paper sizes inter-ToR probing so that "each link above ToR
switches sends more than 10 probes per second per direction".  The
Controller computes rates analytically (Equation 1 + the per-tuple rate);
this auditor *measures* what actually happened, so deployments can verify
the guarantee instead of trusting the math — and tests can assert it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core.analyzer import Analyzer
from repro.core.records import AgentUpload


@dataclass
class CoverageReport:
    """Measured probe rates per directed fabric link."""

    duration_s: float
    probes_per_link: dict[str, int] = field(default_factory=dict)
    fabric_links: set[str] = field(default_factory=set)

    def rate(self, link: str) -> float:
        """Measured probes/second for one directed link."""
        return self.probes_per_link.get(link, 0) / self.duration_s

    def uncovered_links(self, min_pps: float = 0.0) -> list[str]:
        """Fabric links below ``min_pps`` (or never probed)."""
        return sorted(l for l in self.fabric_links
                      if self.rate(l) <= min_pps)

    def min_rate(self) -> float:
        """The slowest-probed fabric link's rate."""
        if not self.fabric_links:
            return 0.0
        return min(self.rate(l) for l in self.fabric_links)

    @property
    def coverage(self) -> float:
        """Fraction of fabric links that saw at least one probe."""
        if not self.fabric_links:
            return 1.0
        covered = sum(1 for l in self.fabric_links
                      if self.probes_per_link.get(l, 0) > 0)
        return covered / len(self.fabric_links)


class ProbeCoverageAuditor:
    """Counts cluster-monitoring probes per fabric link from uploads.

    Attach before the measurement window; each uploaded probe result
    contributes its traced path's links (probe direction only — the ACK
    covers the reverse direction and is counted via the ack path).
    """

    def __init__(self, cluster: Cluster, analyzer: Analyzer):
        self.cluster = cluster
        self._counts: dict[str, int] = defaultdict(int)
        self._started_at_ns = cluster.sim.now
        analyzer.add_upload_listener(self._on_upload)

    def _on_upload(self, batch: AgentUpload) -> None:
        for result in batch.results:
            if not result.kind.is_cluster_monitoring:
                continue
            for record in (result.probe_path, result.ack_path):
                if record is None:
                    continue
                for a, b in record.known_links():
                    self._counts[f"{a}->{b}"] += 1

    def reset(self) -> None:
        """Start a fresh measurement window at the current time."""
        self._counts.clear()
        self._started_at_ns = self.cluster.sim.now

    def report(self) -> CoverageReport:
        """Snapshot the measured rates."""
        duration_ns = self.cluster.sim.now - self._started_at_ns
        fabric = {l.name for l in self.cluster.topology.switch_links()}
        return CoverageReport(
            duration_s=max(duration_ns / 1e9, 1e-9),
            probes_per_link=dict(self._counts),
            fabric_links=fabric)
