"""Agent-side shims over the management network.

:class:`ControllerClient` wraps the Controller RPCs the Agent issues
(register, comm-info update, service-peer IP resolution).  Lookups are
callback-shaped because the reply may arrive later on a lossy/slow
transport; with the default inline transport the callback fires before
the call returns, preserving the direct-call sequencing.

:class:`UploadChannel` is the §4.2.3 result-upload path: each 5-second
batch is sent as a request, acknowledged by the Analyzer, and resent with
exponential backoff until acked.  Unacked batches live in a bounded
resend buffer — overflow drops the *oldest* batch (the freshest data is
the most valuable to the 20-second analysis window) and is accounted, as
is a crash of the host (an Agent's RAM buffer does not survive reboots).
"""

from __future__ import annotations

from collections import OrderedDict
from functools import partial
from typing import Callable, Optional

from repro.controlplane.endpoint import Endpoint, ReplyCallback
from repro.core.config import RPingmeshConfig
from repro.core.records import AgentUpload
from repro.host.rnic import CommInfo

CONTROLLER_ENDPOINT = "controller"
ANALYZER_ENDPOINT = "analyzer"


def _always_alive() -> bool:
    """Default liveness probe (module-level so client graphs pickle)."""
    return True


def _discard_reply(reply) -> None:
    """Fire-and-forget reply sink for acked requests."""


class ControllerClient:
    """The Agent's view of the Controller over the management network.

    ``register`` and ``update_comm_info`` are acked requests retried with
    the upload channel's backoff schedule: a lost registration would
    otherwise strand the host forever (no pinglists, no probing, and —
    because an idle Agent stays silent — not even a host-down verdict).
    Registration is idempotent on the Controller, so a duplicate caused
    by a lost *ack* is harmless.
    """

    def __init__(self, endpoint: Endpoint, config: RPingmeshConfig,
                 controller: str = CONTROLLER_ENDPOINT, *,
                 is_alive: Callable[[], bool] = _always_alive):
        self._endpoint = endpoint
        self._config = config
        self._controller = controller
        self._is_alive = is_alive
        self.retries = 0

    def register(self, host: str, agent_endpoint: str,
                 comm_infos: dict[str, CommInfo]) -> None:
        """Report the probe-QP comm info of all the host's RNICs."""
        self._request_acked("register", {
            "host": host, "endpoint": agent_endpoint,
            "comm_infos": comm_infos})

    def update_comm_info(self, rnic_name: str, info: CommInfo) -> None:
        """Refresh one RNIC's comm info (Agent restart path)."""
        self._request_acked("update_comm_info", (rnic_name, info))

    def _request_acked(self, method: str, payload, attempt: int = 0) -> None:
        base = self._config.upload_ack_timeout_ns
        timeout = min(base << min(attempt, 16),
                      self._config.upload_backoff_max_ns)
        self._endpoint.request(
            self._controller, method, payload,
            on_reply=_discard_reply,
            timeout_ns=timeout,
            on_timeout=partial(self._on_timeout, method, payload, attempt))

    def _on_timeout(self, method: str, payload, attempt: int) -> None:
        if not self._is_alive():
            return  # the host (and its Agent) is gone; restart re-registers
        self.retries += 1
        self._endpoint.network.note_retry(self._endpoint.name)
        self._request_acked(method, payload, attempt + 1)

    def resolve_ip(self, ip: str, on_reply: ReplyCallback) -> None:
        """Service-tracing lookup; ``on_reply`` gets
        ``(rnic_name, CommInfo)`` or ``None``."""
        self._endpoint.request(self._controller, "resolve_ip", ip,
                               on_reply=on_reply)


class UploadChannel:
    """Reliable-enough Agent → Analyzer upload path (§4.2.3)."""

    def __init__(self, endpoint: Endpoint, config: RPingmeshConfig, *,
                 analyzer: str = ANALYZER_ENDPOINT,
                 is_alive: Callable[[], bool] = _always_alive):
        self._endpoint = endpoint
        self._config = config
        self._analyzer = analyzer
        self._is_alive = is_alive
        self._buffer: "OrderedDict[int, AgentUpload]" = OrderedDict()
        self._next_uid = 1
        # Metrics surface:
        self.submitted = 0
        self.acked = 0
        self.rejected = 0          # delivered but refused (ingest overflow)
        self.retries = 0
        self.dropped_overflow = 0  # resend buffer overflow (oldest batch)
        self.dropped_crash = 0     # buffered batches lost to a host crash

    @property
    def backlog(self) -> int:
        """Batches buffered awaiting an ack."""
        return len(self._buffer)

    def submit(self, batch: AgentUpload) -> None:
        """Queue one result batch for upload (and send it now)."""
        uid = self._next_uid
        self._next_uid += 1
        self._buffer[uid] = batch
        self.submitted += 1
        while len(self._buffer) > self._config.upload_resend_buffer:
            self._buffer.popitem(last=False)
            self.dropped_overflow += 1
        self._send(uid, attempt=0)

    def _ack_timeout_ns(self, attempt: int) -> int:
        base = self._config.upload_ack_timeout_ns
        return min(base << min(attempt, 16), self._config.upload_backoff_max_ns)

    def _send(self, uid: int, attempt: int) -> None:
        batch = self._buffer.get(uid)
        if batch is None:
            return  # dropped from the buffer while a retry was pending
        self._endpoint.request(
            self._analyzer, "upload", batch,
            on_reply=partial(self._on_ack, uid),
            timeout_ns=self._ack_timeout_ns(attempt),
            on_timeout=partial(self._on_timeout, uid, attempt))

    def _on_ack(self, uid: int, reply: Optional[dict]) -> None:
        if self._buffer.pop(uid, None) is None:
            return
        if reply is not None and reply.get("accepted"):
            self.acked += 1
        else:
            self.rejected += 1  # Analyzer ingest dropped it; do not resend

    def _on_timeout(self, uid: int, attempt: int) -> None:
        if uid not in self._buffer:
            return
        if not self._is_alive():
            # The host is down: its Agent (and RAM resend buffer) is gone.
            self.dropped_crash += len(self._buffer)
            self._buffer.clear()
            return
        self.retries += 1
        self._endpoint.network.note_retry(self._endpoint.name)
        self._send(uid, attempt + 1)
