"""Message envelopes carried by the management network.

Three wire shapes cover every Agent ↔ Controller ↔ Analyzer interaction:

* **REQUEST** — expects a REPLY (register, resolve_ip, result upload);
* **REPLY** — carries the handler's return value back, keyed by
  ``reply_to``;
* **ONEWAY** — fire-and-forget (comm-info refresh, pinglist push).

Payloads are the record dataclasses of :mod:`repro.core.records` (plus
:class:`~repro.host.rnic.CommInfo`), so an envelope is serializable with
:func:`dataclasses.asdict` — :meth:`Envelope.to_wire` demonstrates the
flattening the production system would feed to its codec.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional


class MessageKind(Enum):
    """Envelope shapes on the management network."""

    REQUEST = "request"
    REPLY = "reply"
    ONEWAY = "oneway"


@dataclass(frozen=True, slots=True)
class Envelope:
    """One message in flight on the management network.

    Frozen: envelopes cross the simulated network, so mutating one after
    send would retroactively change what the receiver observes (detlint
    DET006).
    """

    kind: MessageKind
    src: str                    # sender endpoint name
    dst: str                    # receiver endpoint name
    method: str                 # handler selector ("upload", "resolve_ip"...)
    payload: Any                # record dataclasses / plain values
    msg_id: int                 # unique per ManagementNetwork
    reply_to: Optional[int] = None   # REPLY: msg_id of the request
    sent_at_ns: int = 0

    def reply(self, payload: Any, *, msg_id: int, sent_at_ns: int) -> "Envelope":
        """Build the REPLY envelope answering this REQUEST."""
        if self.kind != MessageKind.REQUEST:
            raise ValueError(f"cannot reply to a {self.kind.value} envelope")
        return Envelope(kind=MessageKind.REPLY, src=self.dst, dst=self.src,
                        method=self.method, payload=payload, msg_id=msg_id,
                        reply_to=self.msg_id, sent_at_ns=sent_at_ns)

    def to_wire(self) -> dict:
        """Flatten to a plain dict (nested dataclasses included)."""

        def flatten(value: Any) -> Any:
            if dataclasses.is_dataclass(value) and not isinstance(value, type):
                return {f.name: flatten(getattr(value, f.name))
                        for f in dataclasses.fields(value)}
            if isinstance(value, Enum):
                return value.value
            if isinstance(value, dict):
                return {k: flatten(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [flatten(v) for v in value]
            return value

        return {
            "kind": self.kind.value, "src": self.src, "dst": self.dst,
            "method": self.method, "msg_id": self.msg_id,
            "reply_to": self.reply_to, "sent_at_ns": self.sent_at_ns,
            "payload": flatten(self.payload),
        }
