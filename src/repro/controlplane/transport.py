"""The simulated TCP management network (§4.2.3).

:class:`ManagementNetwork` moves :class:`~repro.controlplane.messages.Envelope`
objects between named endpoints.  Each (src, dst) pair resolves to a
:class:`LinkProfile` — latency, jitter, loss — and any endpoint can be
*partitioned* (cut off in both directions), which is how control-plane
fault drills model an Agent that keeps probing the RoCE data plane while
its uploads silently die.

Determinism contract: with the default ideal profile (zero latency, zero
jitter, zero loss) delivery is **inline** — no simulator events are
scheduled and no RNG draws are made — so a default-configured deployment
is bit-for-bit identical to direct in-process method calls.  Non-ideal
profiles draw from a dedicated RNG stream, leaving every other stream's
sequence untouched.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional

from repro.controlplane.messages import Envelope
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream

DeliverFn = Callable[[Envelope], None]


@dataclass(frozen=True)
class LinkProfile:
    """Transport behaviour of one directed control-plane link."""

    latency_ns: int = 0
    jitter_ns: int = 0
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ns < 0 or self.jitter_ns < 0:
            raise ValueError("latency/jitter must be non-negative")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")

    @property
    def ideal(self) -> bool:
        """Whether this profile delivers inline with no randomness."""
        return (self.latency_ns == 0 and self.jitter_ns == 0
                and self.loss_prob == 0.0)


class EndpointStats:
    """Per-endpoint message counters (the control-plane metrics surface).

    Historically a plain dataclass of ints; now a façade over
    :class:`~repro.obs.metrics.MetricsRegistry` counters named
    ``repro_controlplane_<field>_total{endpoint="<name>"}`` so the same
    numbers surface in metric snapshots, Prometheus-style exports, and
    the legacy attribute reads (``stats.sent``, ``stats.dropped_loss``
    …) without double bookkeeping.  The field names — and therefore the
    keys of :meth:`as_dict` — are unchanged.
    """

    # Field -> one-line meaning (doubles as the counter help text).
    _FIELDS: dict[str, str] = {
        "sent": "envelopes this endpoint put on the wire",
        "delivered": "of those, how many reached their dst",
        "received": "envelopes delivered *to* this endpoint",
        "dropped_loss": "sent but lost to the loss profile",
        "dropped_partition": "sent but blocked by a partition",
        "dropped_unroutable": "sent to an unknown endpoint",
        "retries": "client resends (upload channel)",
        "request_timeouts": "requests that expired unanswered",
        "latency_total_ns": "summed delivery delay of received msgs",
    }

    __slots__ = ("_counters",)

    def __init__(self, registry: MetricsRegistry, endpoint: str):
        object.__setattr__(self, "_counters", {
            name: registry.counter(self._series_name(name),
                                   help=self._FIELDS[name],
                                   endpoint=endpoint)
            for name in self._FIELDS})

    @staticmethod
    def _series_name(fld: str) -> str:
        if fld.endswith("_total_ns"):  # latency_total_ns, avoid _total_ns_total
            fld = fld.replace("_total_ns", "_ns")
        return f"repro_controlplane_{fld}_total"

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        try:
            return counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: int) -> None:
        counters = object.__getattribute__(self, "_counters")
        if name not in counters:
            raise AttributeError(f"EndpointStats has no field {name!r}")
        counters[name].value = value

    # The __setattr__ override would reject the default slot-state
    # restore path, so pickling spells the round-trip out explicitly.
    def __getstate__(self):
        return object.__getattribute__(self, "_counters")

    def __setstate__(self, counters) -> None:
        object.__setattr__(self, "_counters", counters)

    @property
    def dropped(self) -> int:
        """All sends that never reached the destination."""
        return (self.dropped_loss + self.dropped_partition
                + self.dropped_unroutable)

    def avg_latency_ns(self) -> float:
        """Mean delivery delay of messages received by this endpoint."""
        return self.latency_total_ns / self.received if self.received else 0.0

    def as_dict(self) -> dict[str, int]:
        """The legacy dict shape (field name -> count), plus ``dropped``.

        Deprecated in favour of reading the endpoint's series from
        ``MetricsRegistry.snapshot()``; kept because dashboards and
        older callers still expect these exact keys.
        """
        out = {name: getattr(self, name) for name in self._FIELDS}
        out["dropped"] = self.dropped
        return out


@dataclass
class _Attachment:
    deliver: DeliverFn
    stats: EndpointStats


class ManagementNetwork:
    """Simulated control-plane transport between named endpoints."""

    def __init__(self, sim: Simulator, rng: RngStream,
                 default_profile: Optional[LinkProfile] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.rng = rng
        self.default_profile = default_profile or LinkProfile()
        # Endpoint counters live in a metrics registry; callers that want
        # the numbers in their own snapshot (RPingmesh with metrics
        # enabled) pass theirs, everyone else gets a private one.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._links: dict[tuple[str, str], LinkProfile] = {}
        self._attached: dict[str, _Attachment] = {}
        self._partitioned: set[str] = set()
        self._msg_ids = itertools.count(1)
        # Network-wide totals (endpoint stats hold the breakdown).
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, name: str, deliver: DeliverFn) -> EndpointStats:
        """Register an endpoint; returns its (live) stats object."""
        if name in self._attached:
            raise ValueError(f"endpoint already attached: {name}")
        attachment = _Attachment(deliver, EndpointStats(self.metrics, name))
        self._attached[name] = attachment
        return attachment.stats

    def detach(self, name: str) -> None:
        """Remove an endpoint (its in-flight messages become unroutable)."""
        self._attached.pop(name, None)

    def endpoints(self) -> list[str]:
        """All attached endpoint names, sorted."""
        return sorted(self._attached)

    def stats_for(self, name: str) -> EndpointStats:
        """Metrics of one endpoint."""
        return self._attached[name].stats

    def next_msg_id(self) -> int:
        """Allocate a network-unique message id."""
        return next(self._msg_ids)

    # -- link profiles -----------------------------------------------------------

    def set_link_profile(self, src: str, dst: str, profile: LinkProfile, *,
                         symmetric: bool = True) -> None:
        """Override the profile of one link (both directions by default)."""
        self._links[(src, dst)] = profile
        if symmetric:
            self._links[(dst, src)] = profile

    def profile(self, src: str, dst: str) -> LinkProfile:
        """Effective profile for one directed link."""
        return self._links.get((src, dst), self.default_profile)

    # -- partitions -----------------------------------------------------------------

    def partition(self, name: str) -> None:
        """Cut an endpoint off from the control plane (both directions)."""
        self._partitioned.add(name)

    def heal(self, name: str) -> None:
        """Reconnect a partitioned endpoint."""
        self._partitioned.discard(name)

    def is_partitioned(self, name: str) -> bool:
        """Whether an endpoint is currently cut off."""
        return name in self._partitioned

    # -- metrics hooks ---------------------------------------------------------------

    def note_retry(self, name: str) -> None:
        """Record a client-level resend on an endpoint's stats."""
        if name in self._attached:
            self._attached[name].stats.retries += 1

    def note_request_timeout(self, name: str) -> None:
        """Record an expired request on an endpoint's stats."""
        if name in self._attached:
            self._attached[name].stats.request_timeouts += 1

    # -- the wire ---------------------------------------------------------------------

    def send(self, env: Envelope) -> bool:
        """Put an envelope on the wire.

        Returns whether the message was accepted for delivery; a ``False``
        is invisible to the sending *protocol* (the message just vanishes,
        as on a real management network) but visible in the stats.
        """
        src_stats = self._stats_of(env.src)
        if src_stats is not None:
            src_stats.sent += 1
        self.messages_sent += 1

        if env.src in self._partitioned or env.dst in self._partitioned:
            return self._drop(src_stats, "dropped_partition")
        attachment = self._attached.get(env.dst)
        if attachment is None:
            return self._drop(src_stats, "dropped_unroutable")
        profile = self.profile(env.src, env.dst)
        if profile.loss_prob > 0.0 and self.rng.chance(profile.loss_prob):
            return self._drop(src_stats, "dropped_loss")

        delay = profile.latency_ns
        if profile.jitter_ns > 0:
            delay += self.rng.randint(0, profile.jitter_ns)
        if delay <= 0:
            self._deliver(env, 0)
        else:
            self.sim.call_later(delay, partial(self._deliver, env, delay))
        return True

    def _deliver(self, env: Envelope, delay: int) -> None:
        # A partition (or detach) may have formed while the message was in
        # flight; late delivery through a cut link would be a time paradox.
        if env.src in self._partitioned or env.dst in self._partitioned:
            self._drop(self._stats_of(env.src), "dropped_partition")
            return
        attachment = self._attached.get(env.dst)
        if attachment is None:
            self._drop(self._stats_of(env.src), "dropped_unroutable")
            return
        src_stats = self._stats_of(env.src)
        if src_stats is not None:
            src_stats.delivered += 1
        attachment.stats.received += 1
        attachment.stats.latency_total_ns += delay
        self.messages_delivered += 1
        attachment.deliver(env)

    def _stats_of(self, name: str) -> Optional[EndpointStats]:
        attachment = self._attached.get(name)
        return attachment.stats if attachment is not None else None

    def _drop(self, stats: Optional[EndpointStats], counter: str) -> bool:
        if stats is not None:
            setattr(stats, counter, getattr(stats, counter) + 1)
        self.messages_dropped += 1
        return False
