"""Simulated control-plane (management network) layer.

The paper's Agents reach the Controller and the Analyzer over the TCP
management network (§4.2.3): registration, pinglist distribution, comm-info
lookups, and the 5-second result uploads are real RPCs that can be slow,
lost, or cut off.  This package makes that path first-class:

* :mod:`repro.controlplane.messages` — serializable request/reply/one-way
  envelopes carrying the record dataclasses of :mod:`repro.core.records`;
* :mod:`repro.controlplane.transport` — the :class:`ManagementNetwork`
  simulated transport with per-link latency/jitter/loss profiles and
  partition fault injection, plus per-endpoint delivery metrics;
* :mod:`repro.controlplane.endpoint` — request/reply endpoints with
  handler dispatch and request timeouts;
* :mod:`repro.controlplane.clients` — the Agent-side shims: Controller
  RPCs and the retrying, bounded-buffer Analyzer upload channel.

The default profile is zero-latency / zero-loss and delivers messages
*inline* (no extra simulator events, no RNG draws), so a deployment with
default config behaves bit-for-bit like direct in-process calls.
"""

from repro.controlplane.clients import (ANALYZER_ENDPOINT,
                                        CONTROLLER_ENDPOINT,
                                        ControllerClient, UploadChannel)
from repro.controlplane.endpoint import Endpoint
from repro.controlplane.messages import Envelope, MessageKind
from repro.controlplane.transport import (EndpointStats, LinkProfile,
                                          ManagementNetwork)

__all__ = [
    "ANALYZER_ENDPOINT",
    "CONTROLLER_ENDPOINT",
    "ControllerClient",
    "Endpoint",
    "EndpointStats",
    "Envelope",
    "LinkProfile",
    "ManagementNetwork",
    "MessageKind",
    "UploadChannel",
]
