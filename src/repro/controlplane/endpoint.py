"""Request/reply endpoints over the management network.

An :class:`Endpoint` is one addressable party on the control plane (the
Controller, the Analyzer, or one Agent).  Server-side it dispatches
incoming envelopes to registered handlers; client-side it issues one-way
sends and requests with optional expiry.

Timeout discipline: a request's timeout event is only scheduled if the
reply has not already arrived by the time :meth:`request` returns — with
the ideal (inline) transport the reply comes back *during* the send, so
no simulator event is ever created and default-config runs stay
bit-for-bit identical to direct calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Optional

from repro.controlplane.messages import Envelope, MessageKind
from repro.controlplane.transport import ManagementNetwork
from repro.sim.engine import EventHandle

Handler = Callable[[Any], Any]
ReplyCallback = Callable[[Any], None]


@dataclass
class _PendingRequest:
    on_reply: Optional[ReplyCallback] = None
    timeout_handle: Optional[EventHandle] = None
    replied: bool = field(default=False)


class Endpoint:
    """One named party on the management network."""

    def __init__(self, name: str, network: ManagementNetwork):
        self.name = name
        self.network = network
        self.sim = network.sim
        self._handlers: dict[str, Handler] = {}
        self._pending: dict[int, _PendingRequest] = {}
        self.stats = network.attach(name, self._deliver)

    def on(self, method: str, handler: Handler) -> "Endpoint":
        """Register the handler for one method (chainable)."""
        self._handlers[method] = handler
        return self

    # -- client side ------------------------------------------------------------

    def send(self, dst: str, method: str, payload: Any = None) -> None:
        """Fire-and-forget one-way message."""
        self.network.send(Envelope(
            kind=MessageKind.ONEWAY, src=self.name, dst=dst, method=method,
            payload=payload, msg_id=self.network.next_msg_id(),
            sent_at_ns=self.sim.now))

    def request(self, dst: str, method: str, payload: Any = None, *,
                on_reply: Optional[ReplyCallback] = None,
                timeout_ns: Optional[int] = None,
                on_timeout: Optional[Callable[[], None]] = None) -> int:
        """Send a request; ``on_reply`` fires with the reply payload.

        With an inline transport the reply may arrive before this method
        returns.  If ``timeout_ns`` is given and no reply has arrived, the
        request expires: it is forgotten (a late reply is dropped) and
        ``on_timeout`` fires.
        """
        msg_id = self.network.next_msg_id()
        pending = _PendingRequest(on_reply=on_reply)
        self._pending[msg_id] = pending
        self.network.send(Envelope(
            kind=MessageKind.REQUEST, src=self.name, dst=dst, method=method,
            payload=payload, msg_id=msg_id, sent_at_ns=self.sim.now))
        if timeout_ns is not None and msg_id in self._pending:
            pending.timeout_handle = self.sim.call_later(
                timeout_ns, partial(self._expire, msg_id, on_timeout))
        return msg_id

    def cancel_request(self, msg_id: int) -> None:
        """Forget an outstanding request (its reply will be ignored)."""
        pending = self._pending.pop(msg_id, None)
        if pending is not None and pending.timeout_handle is not None:
            pending.timeout_handle.cancel()

    def outstanding_requests(self) -> int:
        """Number of requests still awaiting a reply."""
        return len(self._pending)

    def _expire(self, msg_id: int,
                on_timeout: Optional[Callable[[], None]]) -> None:
        if self._pending.pop(msg_id, None) is None:
            return  # answered in the meantime
        self.stats.request_timeouts += 1
        if on_timeout is not None:
            on_timeout()

    # -- server side ---------------------------------------------------------------

    def _deliver(self, env: Envelope) -> None:
        if env.kind == MessageKind.REPLY:
            assert env.reply_to is not None
            pending = self._pending.pop(env.reply_to, None)
            if pending is None:
                return  # reply outlived its request's timeout: drop
            if pending.timeout_handle is not None:
                pending.timeout_handle.cancel()
            if pending.on_reply is not None:
                pending.on_reply(env.payload)
            return
        handler = self._handlers.get(env.method)
        if handler is None:
            raise KeyError(
                f"endpoint {self.name!r} has no handler for {env.method!r}")
        result = handler(env.payload)
        if env.kind == MessageKind.REQUEST:
            self.network.send(env.reply(
                result, msg_id=self.network.next_msg_id(),
                sent_at_ns=self.sim.now))
