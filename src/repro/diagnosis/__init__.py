"""``repro.diagnosis`` — pluggable diagnosis backends (DESIGN.md §14).

One protocol, three built-in ways of deciding what is broken:

* :mod:`repro.diagnosis.probe` — the paper's own probe/RTT-vote pipeline
  (the deployed Analyzer), adapted as the reference backend;
* :mod:`repro.diagnosis.inband` — in-band network telemetry stamped onto
  packets transiting the fabric (paper §7.4, *Millions of Little
  Minions*), localizing congestion to the exact directed link;
* :mod:`repro.diagnosis.pingmesh` — the SIGCOMM'15 TCP Pingmesh
  baseline, host-granular and attribution-blind by construction.

:mod:`repro.diagnosis.fusion` combines probe votes with INT link
evidence inside the Analyzer (and across shards via the mergeable INT
summary); :mod:`repro.diagnosis.bakeoff` races the backends over the
fault registry and scores coverage, time-to-detect, and overhead.

Select backends with ``RPingmeshConfig.backends`` (default
``("probe",)``, which is pure observation — golden replay digests are
byte-identical to a build without this package).
"""

from repro.diagnosis.backend import (BackendCost, BackendVerdict,
                                     DiagnosisBackend, available_backends,
                                     create_backend, register_backend)
from repro.diagnosis.fusion import FusionReport, fuse_window
from repro.diagnosis.inband import (INT_STAMP_BYTES, IntBackend, IntCollector,
                                    IntLinkEvidence, IntWindowSummary)
from repro.diagnosis.pingmesh import PingmeshBackend
from repro.diagnosis.probe import ProbeBackend

__all__ = [
    "BackendCost", "BackendVerdict", "DiagnosisBackend",
    "available_backends", "create_backend", "register_backend",
    "FusionReport", "fuse_window",
    "INT_STAMP_BYTES", "IntBackend", "IntCollector",
    "IntLinkEvidence", "IntWindowSummary",
    "PingmeshBackend", "ProbeBackend",
]
