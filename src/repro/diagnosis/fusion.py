"""Fusing INT link evidence with the Analyzer's Algorithm-1 verdicts.

The probe pipeline and the INT collector see the same fault from
opposite ends: votes over traced probe/ACK paths name a *cable-level*
suspect set (often both directions of one link, or the switch itself),
while INT names the exact *directed* link whose queue built up — and why.
Fusion combines them per window (paper §7.4):

* **sharpen** — a vote-based locus that is the reverse direction, one
  endpoint, or the cable form of an INT-hot link is rewritten to the
  directed link INT observed;
* **tie-break** — when Algorithm 1 emits several equal-vote suspects,
  the one INT corroborates is marked, the cold ones annotated;
* **attribute** — hot-link problems gain the collector's congestion
  cause (PFC backpressure vs overload vs queue build-up);
* **add** — hot links no existing problem names become INT-origin
  ``high_rtt`` problems.

Fusion is strictly additive: it never removes or downgrades a problem,
so the fused problem set is a superset of the probe-only one — recall
and time-to-detect can only improve, never regress (the bake-off's
"fused never worse" guarantee is structural, not empirical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.records import Problem, ProblemCategory

if TYPE_CHECKING:
    from repro.core.analyzer import WindowAnalysis
    from repro.diagnosis.inband import IntLinkEvidence

# Problem categories whose locus INT evidence may sharpen or corroborate.
_FUSABLE = (ProblemCategory.SWITCH_NETWORK_PROBLEM, ProblemCategory.HIGH_RTT)


@dataclass(slots=True)
class FusionReport:
    """What one window's fusion pass did (counters surface)."""

    sharpened: int = 0      # loci rewritten to the INT directed link
    annotated: int = 0      # problems gaining INT cause/corroboration
    added: int = 0          # INT-origin problems appended
    ties_broken: int = 0    # equal-vote suspect sets disambiguated

    def merge(self, other: "FusionReport") -> None:
        self.sharpened += other.sharpened
        self.annotated += other.annotated
        self.added += other.added
        self.ties_broken += other.ties_broken


def _locus_forms(link: str) -> set[str]:
    """Every locus spelling that refers to (the cable of) a directed link."""
    src, _, dst = link.partition("->")
    return {link, f"{dst}->{src}", src, dst,
            f"{src}<->{dst}", f"{dst}<->{src}"}


def _votes_of(problem: Problem) -> int:
    """The Algorithm-1 tally a problem's detail carries, if any."""
    for token in problem.detail.split():
        if token.startswith("votes="):
            try:
                return int(token[6:])
            except ValueError:
                return -1
    return -1


def fuse_window(window: "WindowAnalysis",
                links: Mapping[str, "IntLinkEvidence"], *,
                threshold_ns: int, min_evidence: int) -> FusionReport:
    """Fuse one window's INT link evidence into its problem list.

    ``links`` is the per-link evidence map for the window that just
    closed; a link is *hot* when its max observed queue+pause delay
    crosses the RTT anomaly threshold with at least ``min_evidence``
    stamped packets behind it.  Mutates ``window.problems`` in place
    (only additively) and returns what was done.
    """
    report = FusionReport()
    hot = {name: ev for name, ev in links.items()
           if ev.max_delay_ns > threshold_ns and ev.packets >= min_evidence}
    if not hot:
        return report
    hot_order = sorted(hot, key=lambda n: (-hot[n].max_delay_ns, n))

    # Sharpen + attribute: rewrite fusable loci to the INT directed link.
    covered: set[str] = set()
    for problem in window.problems:
        if problem.category not in _FUSABLE:
            continue
        for name in hot_order:
            if problem.locus not in _locus_forms(name):
                continue
            ev = hot[name]
            if problem.locus != name:
                problem.detail = (problem.detail + " " if problem.detail
                                  else "") + f"int:sharpened<-{problem.locus}"
                problem.locus = name
                report.sharpened += 1
            problem.detail = (problem.detail + " " if problem.detail
                              else "") + f"int:{name} cause={ev.cause()}"
            report.annotated += 1
            covered.add(name)
            break

    # Tie-break: equal top votes from Algorithm 1, INT picks the real one.
    for service_side in (False, True):
        switch = [p for p in window.problems
                  if p.category == ProblemCategory.SWITCH_NETWORK_PROBLEM
                  and p.from_service_tracing == service_side
                  and _votes_of(p) >= 0]
        if len(switch) < 2:
            continue
        top = max(_votes_of(p) for p in switch)
        tied = [p for p in switch if _votes_of(p) == top]
        if len(tied) < 2:
            continue
        corroborated = [p for p in tied if any(
            p.locus in _locus_forms(name) or p.locus == name
            for name in hot_order)]
        if not corroborated or len(corroborated) == len(tied):
            continue
        report.ties_broken += 1
        for p in tied:
            tag = "int:tiebreak" if p in corroborated else "int:cold"
            p.detail = (p.detail + " " if p.detail else "") + tag

    # Add: hot links nothing names yet become INT-origin congestion
    # problems on the exact directed link.
    named = {form for p in window.problems for form in (p.locus,)}
    for name in hot_order:
        if name in covered or named & _locus_forms(name):
            continue
        ev = hot[name]
        window.problems.append(Problem(
            category=ProblemCategory.HIGH_RTT, locus=name,
            detected_at_ns=window.window_end_ns,
            window_start_ns=window.window_start_ns,
            evidence_count=ev.packets, from_service_tracing=False,
            detail=f"int:origin cause={ev.cause()} "
                   f"max_delay_ns={ev.max_delay_ns}"))
        report.added += 1
    return report
