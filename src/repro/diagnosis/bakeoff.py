"""The probe-vs-INT-vs-Pingmesh bake-off (ROADMAP item 5, paper §7.4).

Races the registered diagnosis backends over the declarative fault
registry on the TINY Clos: every case injects one fault kind (the
PFC-headroom case composes its two-event row-9 recipe) for 8 s-30 s of a
45 s run, once per *mode*:

* ``probe``  — the paper's pipeline alone (the baseline every other
  mode is judged against);
* ``fused``  — probe + the INT backend with Analyzer fusion;
* ``pingmesh`` — the TCP Pingmesh baseline riding alongside the system.

Each (case, mode) run is an ordinary fleet job
(:func:`repro.fleet.worker.run_scenario`), so recall / precision /
time-to-detect come from the same scorer the fleet uses, and per-backend
verdict scorecards plus overhead (probe bytes, telemetry bytes, events
observed) come from the run's :class:`~repro.fleet.worker.BackendReport`
entries.  ``benchmarks/test_backend_bakeoff.py`` asserts the headline
claims — INT names the exact directed link on every congestion case;
fused is never worse than probe-only — and emits one BENCH line per
record; the ``repro backends`` CLI subcommand reuses everything here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.fleet.presets import SMALL, TINY
from repro.net.clos import ClosParams
from repro.fleet.spec import FaultEvent, ScenarioSpec
from repro.fleet.worker import ScenarioResult, run_scenario
from repro.sim.units import seconds

FAULT_START_S = 8.0
FAULT_END_S = 30.0
DURATION_S = 45

# mode name -> ScenarioSpec.backends value
MODES: dict[str, tuple[str, ...]] = {
    "probe": ("probe",),
    "fused": ("probe", "int"),
    "pingmesh": ("pingmesh",),
}


@dataclass(frozen=True, slots=True)
class BakeoffCase:
    """One fault kind's scenario in the bake-off sweep.

    ``hot_link`` names the directed link whose queue/pause state the
    fault inflates — set on the congestion-family cases, where the
    benchmark asserts the INT backend's verdict locus equals it exactly.
    """

    label: str
    campaign: tuple[FaultEvent, ...]
    hot_link: Optional[str] = None
    topology: ClosParams = TINY
    # True when the fault also *drops* packets on the hot link, giving
    # the probe pipeline's timeout votes an exact locus of their own;
    # False on pure-latency congestion, where only INT can name the
    # directed link and the bake-off asserts the probe pipeline cannot.
    probe_sees_drops: bool = False


def _event(kind: str, *loci: str,
           end_s: Optional[float] = FAULT_END_S, **params) -> FaultEvent:
    return FaultEvent.make(kind, *loci, start_s=FAULT_START_S,
                           end_s=end_s, **params)


def bakeoff_cases() -> tuple[BakeoffCase, ...]:
    """The swept registry: 14 of the 16 fault kinds on the TINY Clos.

    ``rnic_acs_misconfig`` is covered through its ``pcie_downgrade``
    base (same mechanism, same phenomenology) and ``link_failure`` by
    ``switch_port_flapping`` (the flap's down phases are repeated short
    failures); every other registry kind appears directly.
    """
    return (
        BakeoffCase("switch_port_flapping",
                    (_event("switch_port_flapping",
                            "pod0-tor0", "pod0-agg0"),)),
        BakeoffCase("rnic_flapping",
                    (_event("rnic_flapping", "host0-rnic0"),)),
        BakeoffCase("link_corruption",
                    (_event("link_corruption", "pod0-tor0", "pod0-agg0",
                            drop_prob=0.5),)),
        BakeoffCase("rnic_corruption",
                    (_event("rnic_corruption", "host0-rnic0",
                            drop_prob=0.5),)),
        BakeoffCase("rnic_down", (_event("rnic_down", "host0-rnic0"),)),
        # Permanent (end_s=None): the silence detector needs the host
        # still dead at an analysis boundary >= 20 s after its last
        # upload, which a fault cleared at 30 s never reaches.
        BakeoffCase("host_down",
                    (_event("host_down", "host0", end_s=None),)),
        BakeoffCase("pfc_deadlock",
                    (_event("pfc_deadlock", "pod0-tor0", "pod0-agg0"),)),
        BakeoffCase("rnic_routing_misconfig",
                    (_event("rnic_routing_misconfig", "host0-rnic0"),)),
        BakeoffCase("rnic_gid_index_missing",
                    (_event("rnic_gid_index_missing", "host0-rnic0"),)),
        BakeoffCase("switch_acl_error",
                    (_event("switch_acl_error", "pod0-tor0"),)),
        # Table 2 row 9: overload spilling through mis-sized PFC headroom.
        BakeoffCase("pfc_headroom_misconfig",
                    (_event("pfc_headroom_misconfig",
                            "pod0-tor0", "pod0-agg0"),
                     _event("link_overload", "pod0-tor0", "pod0-agg0",
                            extra_gbps=700.0)),
                    hot_link="pod0-tor0->pod0-agg0",
                    probe_sees_drops=True),
        # Rows 10/11: pure congestion below and above the aggregation
        # tier — the cases where probing names a cable (or its far side)
        # and INT must name the exact directed link.
        BakeoffCase("link_overload_tor_agg",
                    (_event("link_overload", "pod0-tor0", "pod0-agg0",
                            extra_gbps=500.0),),
                    hot_link="pod0-tor0->pod0-agg0"),
        # Needs the two-pod Clos: on TINY's single pod no probe ever
        # transits an agg->spine uplink, so nothing would observe it.
        BakeoffCase("link_overload_agg_spine",
                    (_event("link_overload", "pod0-agg0", "spine0",
                            extra_gbps=500.0, table2_row=11),),
                    hot_link="pod0-agg0->spine0",
                    topology=SMALL),
        BakeoffCase("cpu_overload",
                    (_event("cpu_overload", "host0", load=0.96),)),
        # Row 13: PCIe downgrade backpressures the ToR's downlink queue.
        BakeoffCase("pcie_downgrade",
                    (_event("pcie_downgrade", "host0-rnic0"),),
                    hot_link="pod0-tor0->host0-rnic0"),
    )


def case_by_label(label: str) -> BakeoffCase:
    """Look one case up by its label."""
    for case in bakeoff_cases():
        if case.label == label:
            return case
    raise KeyError(f"unknown bake-off case {label!r}; choose from: "
                   f"{', '.join(c.label for c in bakeoff_cases())}")


def run_case(case: BakeoffCase, mode: str, seed: int = 0, *,
             duration_s: int = DURATION_S) -> ScenarioResult:
    """One (case, mode) bake-off job as a standard fleet scenario."""
    spec = ScenarioSpec(
        name=f"bakeoff-{case.label}-{mode}",
        topology=case.topology,
        duration_s=duration_s,
        campaign=case.campaign,
        backends=MODES[mode])
    return run_scenario(spec, seed)


def record(case: BakeoffCase, mode: str,
           result: ScenarioResult) -> dict:
    """One BENCH-able plain-data record for a (case, mode) run.

    System-level numbers (recall over the campaign's faults, located
    precision, first time-to-detect) score what the *deployment*
    concluded; the ``backends`` sub-records score each backend's own
    verdict stream and overhead.
    """
    ttds = [d.time_to_detect_ns for d in result.detections
            if d.time_to_detect_ns is not None]
    located = result.true_positives + result.false_positives
    out = {
        "bench": "backend_bakeoff",
        "case": case.label,
        "mode": mode,
        "seed": result.seed,
        "faults_total": result.faults_total,
        "faults_detected": result.faults_detected,
        "recall": (result.faults_detected / result.faults_total
                   if result.faults_total else 1.0),
        "precision": (result.true_positives / located if located else 1.0),
        "ttd_ns": min(ttds) if ttds else None,
        "sim_events": result.events_processed,
        "events_per_sim_s": round(
            result.events_processed
            / (result.sim_now_ns / seconds(1)), 2),
        "backends": {},
    }
    for report in result.backend_reports:
        ttds = [d.time_to_detect_ns for d in report.detections
                if d.time_to_detect_ns is not None]
        out["backends"][report.backend] = {
            "verdicts": report.verdicts_total,
            "true_positives": report.true_positives,
            "false_positives": report.false_positives,
            "faults_detected": report.faults_detected,
            "ttd_ns": min(ttds) if ttds else None,
            "probe_packets": report.probe_packets,
            "probe_bytes": report.probe_bytes,
            "telemetry_bytes": report.telemetry_bytes,
            "events_observed": report.events_observed,
        }
    return out


def run_bakeoff(kinds: Optional[Sequence[str]] = None,
                modes: Optional[Sequence[str]] = None, *,
                seed: int = 0,
                duration_s: int = DURATION_S) -> list[dict]:
    """Run (cases x modes) and return one record per run.

    ``kinds`` filters cases by label (default: all); ``modes`` filters
    the mode sweep (default: probe, fused, pingmesh).
    """
    cases = bakeoff_cases()
    if kinds is not None:
        cases = tuple(case_by_label(label) for label in kinds)
    mode_names = list(modes) if modes is not None else list(MODES)
    for mode in mode_names:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from: "
                             f"{', '.join(MODES)}")
    records = []
    for case in cases:
        for mode in mode_names:
            result = run_case(case, mode, seed, duration_s=duration_s)
            records.append(record(case, mode, result))
    return records


def int_verdict_loci(result: ScenarioResult) -> list[str]:
    """Every locus the INT backend named in a fused-mode run."""
    for report in result.backend_reports:
        if report.backend == "int":
            return sorted({d.verdict_locus for d in report.detections
                           if d.verdict_locus})
    return []
