"""In-band network telemetry (INT) diagnosis backend.

Per the packet-carried-telemetry model (*Millions of Little Minions*,
PAPERS.md; paper §7.4): every switch a packet transits stamps a small
metadata record — ingress link, queue depth, pause state, hop timestamp —
into the packet, and the receiving host strips the stack and hands it to
a collector.  No extra packets are injected; the cost is
``INT_STAMP_BYTES`` of metadata per hop riding traffic that crossed the
fabric anyway.

The simulation keeps the contract razor-thin so the default path is
untouched: :class:`~repro.net.fabric.Fabric` holds an ``int_collector``
attribute that is ``None`` unless an :class:`IntBackend` is deployed, and
every hook is a single ``is None`` check (the same pattern as the span
tracer).  Stamps ride in a reserved ``"_int"`` payload key that the
collector pops before the receiver callback runs, so no packet or dict
references outlive delivery (PoolSan-clean) and recycled payload dicts
never leak stamps between probes.

Crucially the *fast path* stamps too: a pure congestion fault
(`LinkOverload`) keeps the fabric's fault-free forwarding eligible, and
queue build-up is exactly what INT exists to see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from repro.diagnosis.backend import (BackendCost, BackendVerdict,
                                     register_backend)

if TYPE_CHECKING:
    from repro.cluster import Cluster
    from repro.net.packet import Packet
    from repro.net.topology import DirectedLink

# Bytes of metadata one hop stamps into a transiting packet: ingress-port
# id (4) + queue depth (3) + pause/flags (1) + hop timestamp delta (4).
# Matches the compact INT-MD format scale (§7.4 discussion).
INT_STAMP_BYTES = 12

# Payload key reserved for the in-flight stamp stack.  Popped at
# delivery; cleared with the rest of the payload on pool reuse.
INT_PAYLOAD_KEY = "_int"

# Per-link causes the collector can attribute from stamp aggregates.
CAUSE_PFC = "pfc_backpressure"
CAUSE_OVERLOAD = "overload"
CAUSE_QUEUE = "queue_buildup"

# Verdict/summary bounds: top-K hottest links per window keeps the
# sharded summary mergeable and O(K), not O(links).
TOP_LINKS_PER_WINDOW = 16
SUMMARY_RETENTION = 8


@dataclass(frozen=True, slots=True)
class IntLinkEvidence:
    """Aggregated INT evidence for one directed link over one window."""

    link: str                  # "a->b"
    packets: int               # stamped packets observed on the link
    paused_packets: int        # stamps carrying an active pause state
    max_queue_bytes: float
    max_delay_ns: int          # max queue+pause delay seen at stamp time
    max_utilization: float
    last_seen_ns: int

    @property
    def paused_fraction(self) -> float:
        """Fraction of observed packets that saw PFC pause asserted."""
        return self.paused_packets / self.packets if self.packets else 0.0

    def cause(self) -> str:
        """Attributed congestion cause for this link's hot window."""
        if self.paused_fraction > 0.5:
            return CAUSE_PFC
        if self.max_utilization >= 0.95:
            return CAUSE_OVERLOAD
        return CAUSE_QUEUE


@dataclass(frozen=True, slots=True)
class IntWindowSummary:
    """One closed window of INT evidence (bounded, mergeable)."""

    window_start_ns: int
    window_end_ns: int
    links: tuple[IntLinkEvidence, ...]   # top-K by max_delay_ns, desc
    stamps: int
    telemetry_bytes: int


class _LinkAccumulator:
    """Mutable per-link fold target for the current window."""

    __slots__ = ("packets", "paused_packets", "max_queue_bytes",
                 "max_delay_ns", "max_utilization", "last_seen_ns")

    def __init__(self):
        self.packets = 0
        self.paused_packets = 0
        self.max_queue_bytes = 0.0
        self.max_delay_ns = 0
        self.max_utilization = 0.0
        self.last_seen_ns = 0


class IntCollector:
    """Stamps per-hop telemetry onto packets and folds it per window.

    Installed as ``fabric.int_collector``.  ``stamp`` runs once per hop
    on both forwarding paths; ``collect`` runs at delivery and folds the
    stamp stack into current-window per-link aggregates.  Neither draws
    RNG, schedules events, nor mutates ``size_bytes`` — the probe/vote
    pipeline is provably unaffected, which is why golden digests hold
    even with stamping enabled.
    """

    __slots__ = ("stamps_total", "packets_collected", "telemetry_bytes",
                 "_window")

    def __init__(self):
        self.stamps_total = 0
        self.packets_collected = 0
        self.telemetry_bytes = 0
        self._window: dict[str, _LinkAccumulator] = {}

    def install(self, fabric) -> None:
        """Become the fabric's collector (idempotent for self)."""
        if fabric.int_collector is not None and fabric.int_collector is not self:
            raise RuntimeError("fabric already has an INT collector")
        fabric.int_collector = self

    # -- fabric hooks ----------------------------------------------------------

    def stamp(self, packet: "Packet", link: "DirectedLink", now: int) -> None:
        """Record one hop's state into the packet's stamp stack."""
        delay_ns = link.queue_delay_ns(now) + link.pause_delay_ns
        stack = packet.payload.get(INT_PAYLOAD_KEY)
        if stack is None:
            stack = []
            packet.payload[INT_PAYLOAD_KEY] = stack
        stack.append((link.name, link.queue_bytes, delay_ns,
                      link.pause_delay_ns > 0, link.utilization(), now))
        self.stamps_total += 1
        self.telemetry_bytes += INT_STAMP_BYTES

    def collect(self, packet: "Packet", now: int) -> None:
        """Strip and fold a delivered packet's stamp stack."""
        stack = packet.payload.pop(INT_PAYLOAD_KEY, None)
        if not stack:
            return
        self.packets_collected += 1
        window = self._window
        for name, queue_bytes, delay_ns, paused, util, seen_ns in stack:
            acc = window.get(name)
            if acc is None:
                acc = window[name] = _LinkAccumulator()
            acc.packets += 1
            if paused:
                acc.paused_packets += 1
            if queue_bytes > acc.max_queue_bytes:
                acc.max_queue_bytes = queue_bytes
            if delay_ns > acc.max_delay_ns:
                acc.max_delay_ns = delay_ns
            if util > acc.max_utilization:
                acc.max_utilization = util
            if seen_ns > acc.last_seen_ns:
                acc.last_seen_ns = seen_ns

    # -- window management -----------------------------------------------------

    def drain_window(self, window_start_ns: int,
                     window_end_ns: int) -> IntWindowSummary:
        """Close the current window: summarize, reset, return.

        Max-based fields require reset-per-window semantics (a cumulative
        max never comes back down), so draining is destructive; only the
        owning :class:`IntBackend` drains.
        """
        evidence = [
            IntLinkEvidence(
                link=name, packets=acc.packets,
                paused_packets=acc.paused_packets,
                max_queue_bytes=acc.max_queue_bytes,
                max_delay_ns=acc.max_delay_ns,
                max_utilization=acc.max_utilization,
                last_seen_ns=acc.last_seen_ns)
            for name, acc in self._window.items()
        ]
        evidence.sort(key=lambda e: (-e.max_delay_ns, e.link))
        stamps = sum(e.packets for e in evidence)
        self._window.clear()
        return IntWindowSummary(
            window_start_ns=window_start_ns, window_end_ns=window_end_ns,
            links=tuple(evidence[:TOP_LINKS_PER_WINDOW]),
            stamps=stamps, telemetry_bytes=stamps * INT_STAMP_BYTES)


def slice_links(links: Iterable[IntLinkEvidence], pods: set,
                include_unowned: bool) -> tuple[IntLinkEvidence, ...]:
    """The subset of link evidence a pod-scoped shard owns.

    A directed link belongs to the pod of its first pod-prefixed
    endpoint (``pod0-agg0->spine0`` belongs to ``pod0``); links with no
    pod-prefixed endpoint (spine-to-spine, never in a Clos, but be
    safe) go to the shard with ``include_unowned`` — by convention
    shard 0 — so no evidence is dropped or double-counted.
    """
    owned = []
    for ev in links:
        src, _, dst = ev.link.partition("->")
        owner = None
        for endpoint in (src, dst):
            pod = endpoint.split("-", 1)[0]
            if pod.startswith("pod"):
                owner = pod
                break
        if owner is None:
            if include_unowned:
                owned.append(ev)
        elif owner in pods:
            owned.append(ev)
    return tuple(owned)


def merge_link_evidence(
        parts: Iterable[Iterable[IntLinkEvidence]]
) -> dict[str, IntLinkEvidence]:
    """Merge per-shard link-evidence slices into one link map.

    Shards slice disjointly, but merging stays correct (max of maxes,
    sum of counts) even if an evidence name appears twice.
    """
    merged: dict[str, IntLinkEvidence] = {}
    for part in parts:
        for ev in part:
            prior = merged.get(ev.link)
            if prior is None:
                merged[ev.link] = ev
            else:
                merged[ev.link] = IntLinkEvidence(
                    link=ev.link,
                    packets=prior.packets + ev.packets,
                    paused_packets=prior.paused_packets + ev.paused_packets,
                    max_queue_bytes=max(prior.max_queue_bytes,
                                        ev.max_queue_bytes),
                    max_delay_ns=max(prior.max_delay_ns, ev.max_delay_ns),
                    max_utilization=max(prior.max_utilization,
                                        ev.max_utilization),
                    last_seen_ns=max(prior.last_seen_ns, ev.last_seen_ns))
    return merged


@register_backend("int")
class IntBackend:
    """The INT diagnosis backend: collector + per-window verdicts.

    Attaching installs the collector on the fabric and registers this
    backend as the Analyzer's INT evidence provider (enabling fusion).
    Each analysis window it drains the collector and names every *hot*
    link — max observed queue+pause delay over the RTT threshold with
    enough packets to trust — as a ``high_rtt`` verdict on the exact
    directed link, with an attributed cause.
    """

    name = "int"

    def __init__(self):
        self.collector = IntCollector()
        self._cluster: Optional["Cluster"] = None
        self._system = None
        self._started = False
        self._verdicts: list[BackendVerdict] = []
        self._summaries: dict[int, IntWindowSummary] = {}
        self._last_close_ns = 0

    # -- DiagnosisBackend ------------------------------------------------------

    def attach(self, cluster: "Cluster", system) -> None:
        self._cluster = cluster
        self._system = system
        self.collector.install(cluster.fabric)
        system.analyzer.attach_int_evidence(self)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        period = self._system.config.analysis_period_ns
        self._cluster.sim.every(period, self._close_window)

    def verdicts(self) -> list[BackendVerdict]:
        return list(self._verdicts)

    def cost(self) -> BackendCost:
        c = self.collector
        return BackendCost(telemetry_bytes=c.telemetry_bytes,
                           events_observed=c.stamps_total)

    # -- window close ----------------------------------------------------------

    def _close_window(self) -> None:
        now = self._cluster.sim.now
        summary = self.collector.drain_window(self._last_close_ns, now)
        self._last_close_ns = now
        self._summaries[now] = summary
        if len(self._summaries) > SUMMARY_RETENTION:
            del self._summaries[min(self._summaries)]
        config = self._system.config
        threshold = config.high_rtt_threshold_ns
        min_packets = config.min_anomalies_for_localization
        for ev in summary.links:
            if ev.max_delay_ns <= threshold or ev.packets < min_packets:
                continue
            self._verdicts.append(BackendVerdict(
                backend=self.name, category="high_rtt", locus=ev.link,
                detected_at_ns=now, window_start_ns=summary.window_start_ns,
                evidence=ev.packets,
                confidence=min(1.0, ev.packets / (min_packets * 4)),
                detail=f"cause={ev.cause()} "
                       f"max_delay_ns={ev.max_delay_ns} "
                       f"max_queue_bytes={int(ev.max_queue_bytes)}"))

    # -- Analyzer fusion surface ----------------------------------------------

    def window_summary(self, window_end_ns: int) -> Optional[IntWindowSummary]:
        """Non-consuming accessor for the summary closed at this tick."""
        return self._summaries.get(window_end_ns)

    def link_evidence(self, window_end_ns: int) -> Mapping[str, IntLinkEvidence]:
        """Per-link evidence map for the window closed at this tick."""
        summary = self._summaries.get(window_end_ns)
        if summary is None:
            return {}
        return {ev.link: ev for ev in summary.links}
