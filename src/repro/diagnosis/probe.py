"""The paper's probe/RTT-vote pipeline, viewed as a diagnosis backend.

R-Pingmesh's own Agent → Controller → Analyzer pipeline (Algorithm 1,
end-to-end probing with ACK-based RTT splitting and vote-based
localization) is the *reference* backend.  This adapter does not re-run
anything — the pipeline is already deployed by
:class:`~repro.core.system.RPingmesh` — it re-expresses the Analyzer's
problem records as :class:`~repro.diagnosis.backend.BackendVerdict`\\ s
and tallies the probing cost, so the probe pipeline is scored on the
same axes as its alternatives.

It is deliberately inert: no events, no RNG, no state beyond references
— deploying it (the default) leaves golden replay digests byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.diagnosis.backend import (BackendCost, BackendVerdict,
                                     register_backend)
from repro.net.packet import probe_packet_size

if TYPE_CHECKING:
    from repro.cluster import Cluster

# One probe exchange is three packets on the wire: probe, first ACK,
# second ACK (paper §3.1), each a header + 50-byte payload.
PACKETS_PER_PROBE = 3


@register_backend("probe")
class ProbeBackend:
    """Adapter exposing the deployed Analyzer's verdicts and probe cost."""

    name = "probe"

    def __init__(self):
        self._cluster: Optional["Cluster"] = None
        self._system = None

    def attach(self, cluster: "Cluster", system) -> None:
        self._cluster = cluster
        self._system = system

    def start(self) -> None:
        """Nothing to start — the probe pipeline is the system itself."""

    def verdicts(self) -> list[BackendVerdict]:
        """The Analyzer's problems, one verdict each.

        Problems *added* by INT fusion (tagged ``int:origin``) are the
        INT backend's contribution, not the probe pipeline's — they are
        excluded so a fused deployment still scores each backend on its
        own signal.  Sharpened/annotated problems stay: the underlying
        anomaly votes are the probe pipeline's.
        """
        out = []
        for p in self._system.analyzer.problems:
            if "int:origin" in p.detail:
                continue
            out.append(BackendVerdict(
                backend=self.name, category=p.category.value, locus=p.locus,
                detected_at_ns=p.detected_at_ns,
                window_start_ns=p.window_start_ns,
                evidence=p.evidence_count, detail=p.detail))
        return out

    def cost(self) -> BackendCost:
        """Active probing cost, from the SLA aggregator's probe tallies."""
        probes = 0
        for report in self._system.analyzer.sla.reports:
            probes += report.cluster.probes_total
        packets = probes * PACKETS_PER_PROBE
        return BackendCost(
            probe_packets=packets,
            probe_bytes=packets * probe_packet_size(),
            events_observed=probes)
