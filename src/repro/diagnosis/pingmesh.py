"""The TCP Pingmesh baseline as a diagnosis backend.

Wraps :class:`~repro.baselines.pingmesh.TcpPingmesh` behind the
:class:`~repro.diagnosis.backend.DiagnosisBackend` protocol so the
SIGCOMM'15 baseline competes in the same bake-off as R-Pingmesh's probe
pipeline and the INT collector.  Its verdicts reproduce what Pingmesh
can actually conclude (§2.4): a target whose TCP probes time out is
*down or unreachable* — no NIC-vs-switch attribution, no link locus —
and software-timestamped RTT inflation flags *somewhere slow* at host
granularity only.

Unlike the other built-ins this backend injects real TCP probe traffic
and draws host-CPU RNG, so it perturbs replay digests by design; the
fleet only enables it in dedicated scenarios, never alongside the
digest-locked defaults.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Optional

from repro.baselines.pingmesh import PROBE_BYTES, TcpPingmesh
from repro.diagnosis.backend import (BackendCost, BackendVerdict,
                                     register_backend)

if TYPE_CHECKING:
    from repro.cluster import Cluster

# Probe + echo, both PROBE_BYTES on the wire.
PACKETS_PER_PROBE = 2

# A target is called down on >= this many timeouts forming >= half its
# window's probes — one lost probe is noise, a silent half-window is not.
MIN_TIMEOUTS = 3
TIMEOUT_FRACTION = 0.5
MIN_RTT_SAMPLES = 5


@register_backend("pingmesh")
class PingmeshBackend:
    """TCP Pingmesh deployment emitting per-window verdicts."""

    name = "pingmesh"

    def __init__(self):
        self.pingmesh: Optional[TcpPingmesh] = None
        self._cluster: Optional["Cluster"] = None
        self._system = None
        self._started = False
        self._verdicts: list[BackendVerdict] = []
        self._cursor = 0          # results already folded into windows
        self._last_close_ns = 0

    def attach(self, cluster: "Cluster", system) -> None:
        self._cluster = cluster
        self._system = system
        self.pingmesh = TcpPingmesh(cluster)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.pingmesh.start()
        self._cluster.sim.every(self._system.config.analysis_period_ns,
                                self._close_window)

    def verdicts(self) -> list[BackendVerdict]:
        return list(self._verdicts)

    def cost(self) -> BackendCost:
        results = self.pingmesh.all_results() if self.pingmesh else []
        packets = len(results) * PACKETS_PER_PROBE
        return BackendCost(probe_packets=packets,
                           probe_bytes=packets * PROBE_BYTES,
                           events_observed=len(results))

    # -- window close ----------------------------------------------------------

    def _close_window(self) -> None:
        now = self._cluster.sim.now
        window_start = self._last_close_ns
        self._last_close_ns = now
        results = self.pingmesh.all_results()
        fresh = results[self._cursor:]
        self._cursor = len(results)

        per_target: dict[str, list] = defaultdict(list)
        for r in fresh:
            per_target[r.target_host].append(r)
        config = self._system.config
        # Software RTT = network RTT + both stacks' processing, so the
        # anomaly cut allows for one round trip of normal host processing.
        rtt_cut = (config.high_rtt_threshold_ns
                   + 2 * config.high_processing_delay_ns)
        for target in sorted(per_target):
            probes = per_target[target]
            timeouts = sum(1 for r in probes if r.timeout)
            if (timeouts >= MIN_TIMEOUTS
                    and timeouts >= TIMEOUT_FRACTION * len(probes)):
                self._verdicts.append(BackendVerdict(
                    backend=self.name, category="host_down", locus=target,
                    detected_at_ns=now, window_start_ns=window_start,
                    evidence=timeouts,
                    detail=f"timeouts={timeouts}/{len(probes)}"))
                continue
            rtts = sorted(r.software_rtt_ns for r in probes
                          if not r.timeout and r.software_rtt_ns is not None)
            if len(rtts) < MIN_RTT_SAMPLES:
                continue
            p90 = rtts[max(0, int(len(rtts) * 0.9) - 1)]
            if p90 > rtt_cut:
                self._verdicts.append(BackendVerdict(
                    backend=self.name, category="high_rtt", locus=target,
                    detected_at_ns=now, window_start_ns=window_start,
                    evidence=len(rtts),
                    detail=f"software_p90={p90}ns"))
