"""The pluggable diagnosis-backend contract (DESIGN.md §14).

A *diagnosis backend* is one way of watching a cluster and concluding
"something is wrong *here*": the paper's probe/RTT-vote pipeline, an
in-band-telemetry collector reading per-hop queue state off transiting
packets, the TCP Pingmesh baseline, or anything else that can observe the
fabric per tick and emit per-window verdicts.  Backends share one
protocol so the fleet can run several side by side against the same
ground-truth fault campaign and score them on equal terms — the ROADMAP
item-5 "in-band telemetry vs. probing" bake-off.

The registry maps short names (``"probe"``, ``"int"``, ``"pingmesh"``)
to factories; :class:`~repro.core.system.RPingmesh` instantiates and
attaches the configured set at deployment time.  The default set is
``("probe",)`` whose backend is pure observation — a deployment with the
defaults is bit-for-bit identical to one built before this module
existed (the golden replay digests prove it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.cluster import Cluster


@dataclass(frozen=True, slots=True)
class BackendVerdict:
    """One backend's per-window conclusion, comparable to a
    :class:`~repro.core.records.Problem`.

    ``category`` is a :class:`~repro.core.records.ProblemCategory`
    *value* string so verdicts stay plain data (picklable, digestable)
    while still converting losslessly for Analyzer-style scoring.
    """

    backend: str                # registry name of the emitting backend
    category: str               # ProblemCategory value
    locus: str                  # device / directed-link / host name
    detected_at_ns: int
    window_start_ns: int
    evidence: int               # observations backing the verdict
    confidence: float = 1.0
    detail: str = ""

    def key(self) -> tuple[str, str]:
        """Dedup key matching :meth:`Problem.key`."""
        return (self.category, self.locus)

    def as_problem(self):
        """This verdict as a Problem record (the scoring adapter)."""
        from repro.core.records import Problem, ProblemCategory
        return Problem(
            category=ProblemCategory(self.category), locus=self.locus,
            detected_at_ns=self.detected_at_ns,
            window_start_ns=self.window_start_ns,
            evidence_count=self.evidence,
            from_service_tracing=False, detail=self.detail)


@dataclass(frozen=True, slots=True)
class BackendCost:
    """What running a backend cost, in fabric-visible units.

    ``probe_packets``/``probe_bytes`` count active packets the backend
    itself injected; ``telemetry_bytes`` counts metadata piggybacked on
    packets that were crossing the fabric anyway (the INT model);
    ``events_observed`` counts the raw observations the backend folded
    into verdicts.
    """

    probe_packets: int = 0
    probe_bytes: int = 0
    telemetry_bytes: int = 0
    events_observed: int = 0


@runtime_checkable
class DiagnosisBackend(Protocol):
    """What every diagnosis backend implements.

    Lifecycle: ``attach`` binds the backend to a built (not yet started)
    cluster + system pair; ``start`` begins any periodic work once the
    simulation is live.  ``verdicts``/``cost`` may be called at any time
    and must be pure reads — a backend never mutates the simulation when
    asked what it concluded.
    """

    name: str

    def attach(self, cluster: "Cluster", system) -> None:
        """Bind to the deployment (wire collectors, find the analyzer)."""
        ...

    def start(self) -> None:
        """Begin periodic observation (idempotent)."""
        ...

    def verdicts(self) -> list[BackendVerdict]:
        """Every per-window verdict emitted so far."""
        ...

    def cost(self) -> BackendCost:
        """Cumulative overhead of running this backend."""
        ...


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], DiagnosisBackend]] = {}
_BUILTINS_LOADED = False


def register_backend(name: str):
    """Class/factory decorator adding a backend to the registry."""
    def decorate(factory):
        if name in _REGISTRY:
            raise ValueError(f"diagnosis backend {name!r} already registered")
        _REGISTRY[name] = factory
        return factory
    return decorate


def _ensure_builtins() -> None:
    """Import the built-in backend modules so their decorators run."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.diagnosis import inband, pingmesh, probe  # noqa: F401


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def create_backend(name: str, **kwargs) -> DiagnosisBackend:
    """Instantiate a registered backend by name."""
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown diagnosis backend {name!r}; choose from: "
            f"{', '.join(sorted(_REGISTRY))}") from None
    return factory(**kwargs)
