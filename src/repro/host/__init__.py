"""Host substrate: servers, CPUs, clocks, RNICs, verbs, eBPF tracing."""

from repro.host.clockmodel import Clock, random_clock
from repro.host.cpu import CpuModel
from repro.host.ebpf import QpEvent, QpEventKind, QpTracer
from repro.host.host import Host, build_host_with_rnics
from repro.host.rnic import (CommInfo, Cqe, CqeKind, LocalSendError, QPState,
                             QPType, QueuePair, Rnic)
from repro.host.verbs import VerbsContext, VerbsError

__all__ = [
    "Clock",
    "random_clock",
    "CpuModel",
    "QpTracer",
    "QpEvent",
    "QpEventKind",
    "Host",
    "build_host_with_rnics",
    "Rnic",
    "QueuePair",
    "QPType",
    "QPState",
    "CommInfo",
    "Cqe",
    "CqeKind",
    "LocalSendError",
    "VerbsContext",
    "VerbsError",
]
