"""The verbs API surface, as seen by services and by the Agent.

This is the simulated analogue of libibverbs + the kernel RDMA stack: QPs
are created, transitioned to RTS via ``modify_qp`` (which, for RC/UC, binds
the remote peer and the outer 5-tuple source port / flow label), and torn
down via ``destroy_qp``.  ``modify_qp`` and ``destroy_qp`` pass through the
host's :class:`~repro.host.ebpf.QpTracer`, which is where R-Pingmesh's
service tracing taps in.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import FiveTuple, roce_five_tuple
from repro.host.ebpf import QpEvent, QpEventKind, QpTracer
from repro.host.rnic import CommInfo, Cqe, QPState, QPType, QueuePair, Rnic
from repro.sim.engine import Simulator


class VerbsError(Exception):
    """Invalid verbs usage (wrong state transitions, unknown QPs)."""


class VerbsContext:
    """Verbs entry points for one host; wraps that host's RNICs."""

    def __init__(self, sim: Simulator, tracer: QpTracer):
        self.sim = sim
        self.tracer = tracer

    # -- QP lifecycle --------------------------------------------------------

    def create_qp(self, rnic: Rnic, qp_type: QPType,
                  on_cqe: Optional[Callable[[Cqe], None]] = None
                  ) -> QueuePair:
        """Create a QP.

        UD QPs are connectionless and go straight to RTS (after the usual
        INIT/RTR dance which we collapse); RC/UC QPs stay in RESET until
        ``connect_qp``.
        """
        qp = rnic.allocate_qp(qp_type, on_cqe)
        if qp_type == QPType.UD:
            qp.state = QPState.RTS
        return qp

    def connect_qp(self, rnic: Rnic, qp: QueuePair, remote: CommInfo,
                   src_port: int) -> FiveTuple:
        """``modify_qp`` to RTS for RC/UC: bind peer and flow label.

        The chosen UDP source port steers the connection's ECMP path, and
        the call is visible to the eBPF tracer — this is the moment service
        tracing learns a new service flow (§4.2.2).
        """
        if qp.qp_type == QPType.UD:
            raise VerbsError("UD QPs are connectionless; nothing to connect")
        if qp.state == QPState.DESTROYED:
            raise VerbsError(f"QP {qp.qpn} is destroyed")
        qp.remote = remote
        qp.five_tuple = roce_five_tuple(rnic.ip, remote.ip, src_port)
        qp.state = QPState.RTS
        self.tracer.emit(QpEvent(
            kind=QpEventKind.MODIFY_TO_RTS, time_ns=self.sim.now,
            rnic_name=rnic.name, qp_type=qp.qp_type, local_qpn=qp.qpn,
            five_tuple=qp.five_tuple, remote_ip=remote.ip,
            remote_qpn=remote.qpn))
        return qp.five_tuple

    def reroute_qp(self, rnic: Rnic, qp: QueuePair,
                   new_src_port: int) -> FiveTuple:
        """``modify_qp`` changing only the source port (§7.3 load balancing).

        Rerouting a congested flow to a parallel path is just another
        modify_qp, so service tracing picks up the new 5-tuple too.
        """
        if qp.remote is None:
            raise VerbsError(f"QP {qp.qpn} is not connected")
        return self.connect_qp(rnic, qp, qp.remote, new_src_port)

    def destroy_qp(self, rnic: Rnic, qp: QueuePair) -> None:
        """``destroy_qp``: close the connection; visible to the tracer."""
        five_tuple = qp.five_tuple
        remote = qp.remote
        rnic.destroy_qp(qp.qpn)
        self.tracer.emit(QpEvent(
            kind=QpEventKind.DESTROY, time_ns=self.sim.now,
            rnic_name=rnic.name, qp_type=qp.qp_type, local_qpn=qp.qpn,
            five_tuple=five_tuple,
            remote_ip=remote.ip if remote else None,
            remote_qpn=remote.qpn if remote else None))

    # -- data path -------------------------------------------------------------

    def post_send(self, rnic: Rnic, qp: QueuePair, dst: CommInfo, *,
                  src_port: int, payload: dict, payload_bytes: int,
                  wr_id: Optional[int] = None) -> int:
        """Post a message send; see :meth:`Rnic.post_send`."""
        return rnic.post_send(qp, dst, src_port=src_port, payload=payload,
                              payload_bytes=payload_bytes, wr_id=wr_id)
