"""Host model: CPU, clock, RNICs, verbs context, eBPF tracer.

A host owns one or more RNICs (each attached to its own topology host
port), a CPU whose load couples into userspace processing delays, a host
clock that is *not* synchronised with any RNIC clock, and the verbs/eBPF
plumbing through which both services and the Agent operate.
"""

from __future__ import annotations

from typing import Optional

from repro.host.clockmodel import random_clock
from repro.host.cpu import CpuModel
from repro.host.ebpf import QpTracer
from repro.host.rnic import Rnic
from repro.host.verbs import VerbsContext
from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


class Host:
    """One RoCE server."""

    def __init__(self, name: str, sim: Simulator, rngs: RngRegistry, *,
                 mgmt_ip: str):
        self.name = name
        self.sim = sim
        self.mgmt_ip = mgmt_ip            # TCP NIC for control traffic
        self.up = True                    # fault #4 clears this
        self.clock = random_clock(rngs.stream(f"{name}.hostclock"))
        self.cpu = CpuModel(rngs.stream(f"{name}.cpu"))
        self.tracer = QpTracer()
        self.verbs = VerbsContext(sim, self.tracer)
        self.rnics: list[Rnic] = []

    def add_rnic(self, rnic: Rnic) -> None:
        """Attach an RNIC to this host (sets the back reference)."""
        rnic.host = self
        self.rnics.append(rnic)

    def rnic_by_name(self, name: str) -> Rnic:
        """Look up one of this host's RNICs."""
        for rnic in self.rnics:
            if rnic.name == name:
                return rnic
        raise KeyError(f"host {self.name} has no RNIC {name}")

    def set_down(self) -> None:
        """Accidental host down (fault #4): everything on it goes dark."""
        self.up = False

    def set_up(self) -> None:
        """Host recovers."""
        self.up = True

    def is_up(self) -> bool:
        """Liveness probe; a picklable stand-in for ``lambda: host.up``."""
        return self.up

    def read_clock(self) -> int:
        """The host CPU clock's current reading (used for ① and ⑥)."""
        return self.clock.read(self.sim.now)


def build_host_with_rnics(name: str, sim: Simulator, rngs: RngRegistry,
                          fabric: Fabric, rnic_names: list[str],
                          ip_of: dict[str, str], *,
                          mgmt_ip: Optional[str] = None,
                          link_gbps: float = 400.0) -> Host:
    """Convenience constructor wiring a host and its RNICs to the fabric.

    ``rnic_names`` are the topology host-port names; ``ip_of`` maps each to
    its RoCE IP.
    """
    host = Host(name, sim, rngs, mgmt_ip=mgmt_ip or f"mgmt-{name}")
    for rnic_name in rnic_names:
        rnic = Rnic(
            rnic_name, ip_of[rnic_name], sim, fabric,
            clock=random_clock(rngs.stream(f"{rnic_name}.rnicclock")),
            rng=rngs.stream(f"{rnic_name}.rnic"),
            link_gbps=link_gbps)
        host.add_rnic(rnic)
    return host
