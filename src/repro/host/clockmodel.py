"""Free-running clocks with offset and drift.

The paper's central measurement trick (§4.2.1) is that network RTT
``(⑤-②)-(④-③)`` and prober processing delay ``(⑥-①)-(⑤-②)`` need **no
clock synchronisation**: ②⑤⑥... wait — ②⑤ are on the prober RNIC clock,
③④ on the responder RNIC clock, ①⑥ on the prober host (CPU) clock, and
every subtraction pairs timestamps from the *same* clock.

To prove that property rather than assume it, every host and every RNIC in
the simulation owns an independent clock with a random offset (up to
seconds) and drift (tens of ppm).  If any formula accidentally mixed clocks,
measured RTTs would be off by the offsets and the unit tests would fail.
"""

from __future__ import annotations


class Clock:
    """A free-running clock: ``reading = offset + elapsed * (1 + drift)``."""

    def __init__(self, offset_ns: int = 0, drift_ppm: float = 0.0):
        self.offset_ns = offset_ns
        self.drift_ppm = drift_ppm

    def read(self, sim_now_ns: int) -> int:
        """This clock's reading at true (simulation) time ``sim_now_ns``."""
        drifted = sim_now_ns * (1.0 + self.drift_ppm * 1e-6)
        return self.offset_ns + round(drifted)

    def __repr__(self) -> str:
        return f"Clock(offset={self.offset_ns}ns, drift={self.drift_ppm}ppm)"


def random_clock(rng, *, max_offset_s: float = 100.0,
                 max_drift_ppm: float = 50.0) -> Clock:
    """A clock with random offset/drift, as each device would really have."""
    offset = rng.randint(-int(max_offset_s * 1e9), int(max_offset_s * 1e9))
    drift = rng.uniform(-max_drift_ppm, max_drift_ppm)
    return Clock(offset_ns=offset, drift_ppm=drift)
