"""Host CPU model: load-dependent processing delay and agent starvation.

Two behaviours of the paper hinge on the CPU model:

* **Figure 2 / Figure 8 (left)** — software-timestamped latency (the TCP
  Pingmesh baseline) and the responder's end-host processing delay both grow
  with host load.  We use an M/M/1-style inflation ``base / (1 - load)``
  plus log-normal noise, which produces the long right tail real schedulers
  show.
* **Figure 6 (right)** — when the service occupies the Agent's CPU, the
  Agent's responder thread stalls for milliseconds at a time, so probes to
  *every* RNIC of the host time out simultaneously and look like drops.
  The ``stall`` interface models those scheduling gaps.
"""

from __future__ import annotations

from repro.sim.rng import RngStream
from repro.sim.units import MILLISECOND, MICROSECOND

# Load above which the host starts starving background daemons like Agent.
STARVATION_LOAD = 0.90
# Load above which run-queue contention produces latency spikes.
SPIKE_LOAD = 0.75


class CpuModel:
    """Load-dependent processing-delay generator for one host."""

    def __init__(self, rng: RngStream, *, base_delay_ns: int = 5 * MICROSECOND,
                 noise_sigma: float = 0.30):
        if base_delay_ns <= 0:
            raise ValueError("base delay must be positive")
        self.rng = rng
        self.base_delay_ns = base_delay_ns
        self.noise_sigma = noise_sigma
        self._load = 0.10
        self._stall_until_ns = 0
        self._next_stall_check_ns = 0

    @property
    def load(self) -> float:
        """Current average CPU load in [0, 1)."""
        return self._load

    def set_load(self, load: float) -> None:
        """Set the average CPU load (clamped to [0, 0.99])."""
        self._load = min(max(load, 0.0), 0.99)

    def processing_delay_ns(self) -> int:
        """Delay the CPU adds to one userspace handling step.

        Two regimes, matching how real schedulers behave:

        * M/M/1 inflation with multiplicative log-normal noise — a few
          microseconds at 10% load, tens at high load;
        * above ``SPIKE_LOAD``, run-queue contention adds occasional
          hundreds-of-microseconds spikes, which is what Figure 8 (left)
          shows as "high processing delay" on overloaded hosts.
        """
        inflation = 1.0 / (1.0 - self._load)
        noise = self.rng.lognormal(0.0, self.noise_sigma)
        delay = self.base_delay_ns * inflation * noise
        if self._load >= SPIKE_LOAD:
            spike_prob = 0.4 * (self._load - SPIKE_LOAD) / (1.0 - SPIKE_LOAD)
            if self.rng.chance(spike_prob):
                delay += self.rng.uniform(200.0, 1200.0) * MICROSECOND
        return max(1, round(delay))

    @property
    def overloaded(self) -> bool:
        """Whether the host is loaded enough to starve the Agent."""
        return self._load >= STARVATION_LOAD

    def starvation_stall_ns(self, now_ns: int) -> int:
        """Remaining Agent scheduling stall at ``now_ns`` (0 if running).

        When the service occupies the Agent CPU, the whole Agent process
        occasionally does not get scheduled for longer than the probe
        timeout.  Stalls are *windows in time*, so during one stall the
        responder threads of every RNIC on the host are frozen together —
        probes to all of the host's RNICs appear dropped at once, the
        Figure 6 (right) false-positive signature.
        """
        if now_ns < self._stall_until_ns:
            return self._stall_until_ns - now_ns
        if not self.overloaded:
            return 0
        if now_ns < self._next_stall_check_ns:
            return 0
        # The further past the starvation threshold, the likelier a stall.
        over = (self._load - STARVATION_LOAD) / (1.0 - STARVATION_LOAD)
        self._next_stall_check_ns = now_ns + 100 * MILLISECOND
        if not self.rng.chance(0.10 + 0.5 * over):
            return 0
        stall = round(self.rng.uniform(600.0, 2000.0) * MILLISECOND)
        self._stall_until_ns = now_ns + stall
        return stall
