"""eBPF-style tracing of QP verbs (paper §4.2.2).

R-Pingmesh learns the 5-tuples of service flows by attaching eBPF programs
to the kernel verbs ``modify_qp`` and ``destroy_qp``: connections are
established/closed rarely, so hooking those two calls is essentially free,
and no special firmware is needed.

Our simulated kernel is the :mod:`repro.host.verbs` layer; it calls into a
per-host :class:`QpTracer`, and the Agent subscribes exactly the way the
real Agent subscribes to its eBPF ring buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.net.addresses import FiveTuple
from repro.host.rnic import QPType


class QpEventKind(Enum):
    """Which verbs call fired."""

    MODIFY_TO_RTS = "modify_qp"   # connection established (or re-routed)
    DESTROY = "destroy_qp"        # connection closed


@dataclass(frozen=True, slots=True)
class QpEvent:
    """One traced verbs call."""

    kind: QpEventKind
    time_ns: int
    rnic_name: str
    qp_type: QPType
    local_qpn: int
    five_tuple: Optional[FiveTuple]   # None for destroy of a never-connected QP
    remote_ip: Optional[str]
    remote_qpn: Optional[int]


class QpTracer:
    """Per-host event bus standing in for the eBPF ring buffer."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[QpEvent], None]] = []
        self.events_emitted = 0

    def attach(self, callback: Callable[[QpEvent], None]) -> None:
        """Subscribe to QP events (the Agent's service-tracing input)."""
        self._subscribers.append(callback)

    def detach(self, callback: Callable[[QpEvent], None]) -> None:
        """Unsubscribe (no-op when absent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def emit(self, event: QpEvent) -> None:
        """Publish an event to all subscribers."""
        self.events_emitted += 1
        for callback in list(self._subscribers):
            callback(event)
