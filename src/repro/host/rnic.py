"""Commodity RNIC model.

This is the hardware the paper's measurement method is built around, so the
model is deliberately faithful on the points the design exploits:

* **CQE timestamps only.**  The RNIC never exposes "time sent" or "time
  received" directly; it stamps Completion Queue Events with its own
  free-running clock.  The crucial asymmetry (Table 1): for **UD/UC** the
  send CQE is generated *when the message hits the wire*; for **RC** the
  send CQE is generated only *after the remote ACK arrives*, so timestamps
  ② and ④ of Figure 4 are unobtainable on RC — which is why the Agent
  probes with UD.
* **QPC cache.**  Connected QPs (RC/UC) occupy on-NIC connection-context
  cache slots; UD needs a single QP regardless of peer count.  The slot
  counter feeds the Table 1 "connection overhead" comparison.
* **Failure modes.**  Admin/flap down, missing routing configuration
  (fault #6), missing GID index (fault #7), TX/RX packet corruption
  (fault #2), and QPN mismatch drops (the "QPN reset" probe noise §4.3.1)
  are all modelled where the real device exhibits them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.addresses import GID, FiveTuple, roce_five_tuple
from repro.net.fabric import DeliveryRecord, Fabric
from repro.net.packet import (ROCE_HEADER_BYTES, Packet, RoCEOpcode,
                              RoCEPacket)
from repro.host.clockmodel import Clock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStream
from repro.sim.units import MICROSECOND, serialization_delay_ns

if TYPE_CHECKING:
    from repro.host.host import Host

# Fixed TX pipeline latency (DMA fetch + pipeline), order of a microsecond.
TX_PIPELINE_NS = 1 * MICROSECOND
# Latency of the hardware auto-ACK turnaround for RC.
RC_HW_ACK_NS = 1 * MICROSECOND


class QPType(Enum):
    """Queue pair transport types (paper Table 1)."""

    RC = "rc"   # Reliable Connection
    UC = "uc"   # Unreliable Connection
    UD = "ud"   # Unreliable Datagram


# Wire opcode used when post_send is not given one explicitly.
_DEFAULT_OPCODE = {QPType.UD: RoCEOpcode.UD_SEND,
                   QPType.UC: RoCEOpcode.UC_SEND,
                   QPType.RC: RoCEOpcode.RC_SEND}


class QPState(Enum):
    """Simplified QP state machine."""

    RESET = "reset"
    RTS = "rts"          # ready to send/receive
    ERROR = "error"
    DESTROYED = "destroyed"


class CqeKind(Enum):
    """Completion type."""

    SEND = "send"
    RECV = "recv"


@dataclass(frozen=True, slots=True)
class CommInfo:
    """What a peer must know to address a QP (paper §4.1): IP, GID, QPN."""

    ip: str
    gid: str
    qpn: int


@dataclass(slots=True)
class Cqe:
    """A completion queue event.

    ``rnic_timestamp_ns`` is taken on this RNIC's own clock — the only
    timestamps commodity RNICs provide (§3.1).
    """

    kind: CqeKind
    qpn: int
    wr_id: int
    rnic_timestamp_ns: int
    payload: dict[str, Any] = field(default_factory=dict)
    # RECV-side metadata needed to reply:
    src_ip: str = ""
    src_gid: str = ""
    src_qpn: int = 0
    src_port: int = 0
    opcode: Optional[RoCEOpcode] = None


@dataclass
class QueuePair:
    """A queue pair living on one RNIC."""

    qpn: int
    qp_type: QPType
    state: QPState = QPState.RESET
    on_cqe: Optional[Callable[[Cqe], None]] = None
    # RC/UC connection attributes (set by modify_qp):
    remote: Optional[CommInfo] = None
    five_tuple: Optional[FiveTuple] = None

    @property
    def connected(self) -> bool:
        """Whether this QP holds a connection context (RC/UC in RTS)."""
        return (self.qp_type in (QPType.RC, QPType.UC)
                and self.state == QPState.RTS and self.remote is not None)


class LocalSendError(Exception):
    """Raised when a post_send cannot even reach the wire.

    Carries a reason string; the Agent treats these identically to probe
    timeouts (no CQE ever arrives for lost probes on a real NIC — we raise
    so *tests* can distinguish local failure modes, while the Agent catches
    and converts to timeout accounting).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class Rnic:
    """One RDMA NIC attached to a topology host port of the same name."""

    def __init__(self, name: str, ip: str, sim: Simulator, fabric: Fabric,
                 clock: Clock, rng: RngStream, *,
                 link_gbps: float = 400.0, pcie_gbps: float = 512.0,
                 qpc_cache_slots: int = 256, sanitizer=None):
        self.name = name
        self.ip = ip
        self.sim = sim
        self.fabric = fabric
        self.clock = clock
        self.rng = rng
        self.link_gbps = link_gbps
        self.pcie_gbps = pcie_gbps
        self.qpc_cache_slots = qpc_cache_slots
        self.host: Optional["Host"] = None

        self.gid = GID.from_ip(ip)
        self.gid_index_present = True     # fault #7 clears this
        self.routing_configured = True    # fault #6 clears this
        self.admin_up = True              # fault #3 clears this
        self.flap_down = False            # fault #1 toggles this
        self.last_flap_ns = -(1 << 62)    # last flap transition
        self.tx_corruption_prob = 0.0     # fault #2 (RNIC-side)
        self.rx_corruption_prob = 0.0

        self._qps: dict[int, QueuePair] = {}
        # Per-instance: wr_ids are only ever matched within one RNIC's
        # completion context, and a class-level counter would leak draw
        # history across scenarios run in the same process.
        self._wr_ids = itertools.count(1)
        self._next_qpn = rng.randint(0x100, 0xFFF)
        self._pending_rc_sends: dict[int, list[int]] = {}
        # Hot-path memos: probe 5-tuples repeat per (peer, src_port) and
        # PCIe serialization depends only on (size, pcie_gbps); both are
        # pure.  The PCIe memo is keyed by the rate so PcieDowngrade
        # (which writes pcie_gbps directly) invalidates it naturally.
        self._five_tuple_memo: dict[tuple[str, int], FiveTuple] = {}
        self._pcie_memo: tuple[float, dict[int, int]] = (pcie_gbps, {})
        # CQE free list (bounded; active only when the fabric pools).
        self._cqe_free: list[Cqe] = []
        self._cqe_pool_limit = 64 if fabric.pooling else 0
        # Pool sanitizer: explicit kwarg wins, else inherited from the
        # fabric (the same way the pooling knob is).
        self._san = sanitizer if sanitizer is not None else fabric.sanitizer
        # Host TCP stack hook (Pingmesh baseline, checkpoint traffic).
        self.tcp_handler: Optional[
            Callable[[Packet, DeliveryRecord], None]] = None

        # Counters
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.local_drops: dict[str, int] = {}
        # Probe-lifecycle tracer (repro.obs), installed when tracing is on.
        # CQE-timestamp events for marks ②-⑤ of Figure 4 are emitted here
        # because only the RNIC knows its own clock's reading.
        self.tracer = None

        fabric.attach_receiver(name, self._on_fabric_packet)
        fabric.register_ip(ip, name)

    # -- state -------------------------------------------------------------

    @property
    def operational(self) -> bool:
        """Whether the NIC can currently move packets."""
        host_up = self.host.up if self.host is not None else True
        return self.admin_up and not self.flap_down and host_up

    def flapped_recently(self, now_ns: int,
                         window_ns: int = 2_000_000_000) -> bool:
        """Whether the port flapped within the last ``window_ns``."""
        return now_ns - self.last_flap_ns <= window_ns

    @property
    def qpc_in_use(self) -> int:
        """Connected-QP context slots in use (Table 1 overhead metric)."""
        return sum(1 for qp in self._qps.values() if qp.connected)

    @property
    def qp_count(self) -> int:
        """Live QPs of any type."""
        return sum(1 for qp in self._qps.values()
                   if qp.state != QPState.DESTROYED)

    def qpc_cache_pressure(self) -> float:
        """Fraction of the connection cache consumed."""
        return self.qpc_in_use / self.qpc_cache_slots

    def _count_drop(self, reason: str) -> None:
        self.local_drops[reason] = self.local_drops.get(reason, 0) + 1

    # -- QP lifecycle (driven through the verbs layer) -----------------------

    def allocate_qp(self, qp_type: QPType,
                    on_cqe: Optional[Callable[[Cqe], None]] = None
                    ) -> QueuePair:
        """Create a QP in RESET state and assign it a fresh QPN.

        QPNs are never reused within an RNIC lifetime, so a restarted Agent
        gets different QPNs — the origin of "QPN reset" probe noise.
        """
        qpn = self._next_qpn
        self._next_qpn += self.rng.randint(1, 7)
        qp = QueuePair(qpn=qpn, qp_type=qp_type, on_cqe=on_cqe)
        self._qps[qpn] = qp
        return qp

    def qp(self, qpn: int) -> Optional[QueuePair]:
        """Look up a QP by number (None when unknown/destroyed)."""
        qp = self._qps.get(qpn)
        if qp is None or qp.state == QPState.DESTROYED:
            return None
        return qp

    def destroy_qp(self, qpn: int) -> None:
        """Tear a QP down; its QPN becomes invalid for inbound packets."""
        qp = self._qps.get(qpn)
        if qp is None:
            raise KeyError(f"unknown QPN {qpn} on {self.name}")
        qp.state = QPState.DESTROYED
        qp.remote = None

    def comm_info(self, qpn: int) -> CommInfo:
        """The addressing triple a peer needs to hit QP ``qpn``."""
        if self.qp(qpn) is None:
            raise KeyError(f"unknown QPN {qpn} on {self.name}")
        return CommInfo(ip=self.ip, gid=self.gid.value, qpn=qpn)

    # -- send path -----------------------------------------------------------

    def post_send(self, qp: QueuePair, dst: CommInfo, *, src_port: int,
                  payload: dict[str, Any], payload_bytes: int,
                  opcode: Optional[RoCEOpcode] = None,
                  wr_id: Optional[int] = None) -> int:
        """Post one message send on ``qp``; returns the work-request id.

        The send CQE (with the RNIC wire-departure timestamp) is delivered
        to ``qp.on_cqe`` for UD/UC at departure, for RC only when the remote
        hardware ACK returns.  Local conditions that keep the message off
        the wire raise :class:`LocalSendError`.
        """
        if qp.state != QPState.RTS:
            raise LocalSendError("qp_not_rts")
        if not self.operational:
            raise LocalSendError("rnic_down")
        if not self.routing_configured:
            # Fault #6: the RoCE routing table entries are missing, the
            # kernel cannot resolve the egress — nothing reaches the wire.
            self._count_drop("routing_unconfigured")
            raise LocalSendError("routing_unconfigured")
        if not self.gid_index_present:
            # Fault #7: the RoCEv2 GID index is gone; address handles cannot
            # be created for this source GID.
            self._count_drop("gid_index_missing")
            raise LocalSendError("gid_index_missing")

        if opcode is None:
            opcode = _DEFAULT_OPCODE[qp.qp_type]
        if wr_id is None:
            wr_id = next(self._wr_ids)

        tuple_key = (dst.ip, src_port)
        five_tuple = self._five_tuple_memo.get(tuple_key)
        if five_tuple is None:
            if len(self._five_tuple_memo) >= 8192:
                self._five_tuple_memo.clear()
            five_tuple = roce_five_tuple(self.ip, dst.ip, src_port)
            self._five_tuple_memo[tuple_key] = five_tuple
        size = ROCE_HEADER_BYTES + payload_bytes
        packet = self.fabric.packet_pool.acquire_roce(
            five_tuple, size, opcode, qp.qpn, dst.qpn,
            self.gid.value, dst.gid, payload)

        rate, pcie_sizes = self._pcie_memo
        if rate != self.pcie_gbps:
            rate, pcie_sizes = self._pcie_memo = (self.pcie_gbps, {})
        pcie_ns = pcie_sizes.get(size)
        if pcie_ns is None:
            pcie_ns = pcie_sizes[size] = serialization_delay_ns(size, rate)
        departure_delay = TX_PIPELINE_NS + pcie_ns
        self.sim.schedule(
            departure_delay,
            partial(self._wire_departure, qp, packet, wr_id))
        return wr_id

    def _trace_rnic_drop(self, payload: dict[str, Any], reason: str) -> None:
        leg = payload.get("t")
        if leg in ("probe", "ack1", "ack2") and "seq" in payload:
            self.tracer.event(payload["seq"], self.sim.now, "rnic.drop",
                              leg=leg, rnic=self.name, reason=reason)

    def _wire_departure(self, qp: QueuePair, packet: RoCEPacket,
                        wr_id: int) -> None:
        """The moment the message leaves the NIC: timestamp ② (or ④)."""
        if not self.operational:
            # NIC died between post and departure; message is lost and no
            # completion is ever generated (matches flush-on-down behaviour
            # closely enough for probing: the prober simply times out).
            self._count_drop("rnic_down")
            if self.tracer is not None:
                self._trace_rnic_drop(packet.payload, "rnic_down")
            return
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes

        if self.tx_corruption_prob > 0 and self.rng.chance(
                self.tx_corruption_prob):
            self._count_drop("tx_corruption")
            if self.tracer is not None:
                self._trace_rnic_drop(packet.payload, "tx_corruption")
            # CQE still fires: the NIC believes it sent the packet.
            self._complete_send_if_unreliable(qp, wr_id, packet.payload)
            return

        self.fabric.inject(packet, self.name)
        self._complete_send_if_unreliable(qp, wr_id, packet.payload)
        if qp.qp_type == QPType.RC:
            # RC send CQE deferred until the hardware ACK (Table 1: no ②/④).
            self._pending_rc_sends.setdefault(qp.qpn, []).append(wr_id)

    # Figure-4 marks carried by send/recv CQEs of the probe exchange: the
    # probe's send CQE is ② and its recv CQE ③; the first ACK's are ④/⑤.
    _SEND_MARKS = {"probe": "t2", "ack1": "t4"}
    _RECV_MARKS = {"probe": "t3", "ack1": "t5"}

    def _trace_cqe(self, payload: dict[str, Any], kind: CqeKind,
                   timestamp_ns: int) -> None:
        leg = payload.get("t")
        if leg not in ("probe", "ack1", "ack2") or "seq" not in payload:
            return
        marks = self._SEND_MARKS if kind == CqeKind.SEND else self._RECV_MARKS
        name = "cqe.send" if kind == CqeKind.SEND else "cqe.recv"
        fields = {"leg": leg, "rnic": self.name,
                  "rnic_timestamp_ns": timestamp_ns}
        mark = marks.get(leg)
        if mark is not None:
            fields["mark"] = mark
        self.tracer.event(payload["seq"], self.sim.now, name, **fields)

    def _complete_send_if_unreliable(self, qp: QueuePair, wr_id: int,
                                     payload: Optional[dict[str, Any]] = None
                                     ) -> None:
        if qp.qp_type == QPType.RC:
            return
        timestamp = self.clock.read(self.sim.now)
        if self.tracer is not None and payload is not None:
            self._trace_cqe(payload, CqeKind.SEND, timestamp)
        self._emit_cqe(qp, self._acquire_cqe(
            CqeKind.SEND, qp.qpn, wr_id, timestamp))

    def _emit_cqe(self, qp: QueuePair, cqe: Cqe) -> None:
        if qp.on_cqe is not None:
            qp.on_cqe(cqe)

    def _acquire_cqe(self, kind: CqeKind, qpn: int, wr_id: int,
                     rnic_timestamp_ns: int) -> Cqe:
        """A CQE with these fields set and every RECV field reset.

        Recycling is consumer-driven: a CQE is reused only after its
        ``on_cqe`` handler hands it back via :meth:`release_cqe`.  Handlers
        that never release (tests, experiments) keep plain allocation and
        may retain the CQE forever.
        """
        if self._cqe_free:
            cqe = self._cqe_free.pop()
            if self._san is not None:
                self._san.reacquire_cqe(cqe)
            cqe.kind = kind
            cqe.qpn = qpn
            cqe.wr_id = wr_id
            cqe.rnic_timestamp_ns = rnic_timestamp_ns
            cqe.payload.clear()
            cqe.src_ip = ""
            cqe.src_gid = ""
            cqe.src_qpn = 0
            cqe.src_port = 0
            cqe.opcode = None
            return cqe
        cqe = Cqe(kind=kind, qpn=qpn, wr_id=wr_id,
                  rnic_timestamp_ns=rnic_timestamp_ns)
        if self._san is not None:
            self._san.acquire_cqe(cqe)
        return cqe

    def release_cqe(self, cqe: Cqe) -> None:
        """Hand a fully-consumed CQE back for reuse (copy fields first)."""
        recycled = len(self._cqe_free) < self._cqe_pool_limit
        if self._san is not None:
            self._san.release_cqe(cqe, recycled=recycled)
        if recycled:
            self._cqe_free.append(cqe)

    # -- receive path ---------------------------------------------------------

    def _on_fabric_packet(self, packet: Packet, record: DeliveryRecord) -> None:
        if not isinstance(packet, RoCEPacket):
            # TCP rides the same physical port but a different traffic
            # class; hand it to the host TCP stack if one listens.
            if self.tcp_handler is not None and self.operational:
                self.tcp_handler(packet, record)
            return
        if not self.operational:
            self._count_drop("rnic_down")
            if self.tracer is not None:
                self._trace_rnic_drop(packet.payload, "rnic_down")
            return
        if self.rx_corruption_prob > 0 and self.rng.chance(
                self.rx_corruption_prob):
            self._count_drop("rx_corruption")
            if self.tracer is not None:
                self._trace_rnic_drop(packet.payload, "rx_corruption")
            return
        if not self.gid_index_present or packet.dst_gid != self.gid.value:
            # Fault #7 as seen from the wire: the GID no longer matches any
            # table entry, the packet is silently discarded by hardware.
            self._count_drop("gid_mismatch")
            if self.tracer is not None:
                self._trace_rnic_drop(packet.payload, "gid_mismatch")
            return

        if packet.opcode == RoCEOpcode.RC_ACK:
            self._on_rc_ack(packet)
            return

        qp = self.qp(packet.dst_qpn)
        if qp is None or qp.state != QPState.RTS:
            # QPN reset noise (§4.3.1): the prober used an outdated QPN.
            self._count_drop("qpn_mismatch")
            if self.tracer is not None:
                self._trace_rnic_drop(packet.payload, "qpn_mismatch")
            return
        if qp.qp_type in (QPType.RC, QPType.UC):
            expected = qp.remote
            if expected is None or packet.src_qpn != expected.qpn:
                self._count_drop("qpn_mismatch")
                if self.tracer is not None:
                    self._trace_rnic_drop(packet.payload, "qpn_mismatch")
                return

        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        if qp.qp_type == QPType.RC:
            self._send_rc_hw_ack(packet)

        timestamp = self.clock.read(self.sim.now)
        if self.tracer is not None:
            self._trace_cqe(packet.payload, CqeKind.RECV, timestamp)
        cqe = self._acquire_cqe(
            CqeKind.RECV, qp.qpn, next(self._wr_ids), timestamp)
        cqe.payload.update(packet.payload)
        cqe.src_ip = packet.five_tuple.src_ip
        cqe.src_gid = packet.src_gid
        cqe.src_qpn = packet.src_qpn
        cqe.src_port = packet.five_tuple.src_port
        cqe.opcode = packet.opcode
        self._emit_cqe(qp, cqe)

    _EMPTY_PAYLOAD: dict[str, Any] = {}

    def _send_rc_hw_ack(self, packet: RoCEPacket) -> None:
        """Hardware-generated RC ACK, echoing the probe's source port (§5)."""
        ack = self.fabric.packet_pool.acquire_roce(
            packet.five_tuple.reversed(), ROCE_HEADER_BYTES + 4,
            RoCEOpcode.RC_ACK, packet.dst_qpn, packet.src_qpn,
            self.gid.value, packet.src_gid, self._EMPTY_PAYLOAD)
        self.sim.schedule(RC_HW_ACK_NS, partial(self._inject_hw_ack, ack))

    def _inject_hw_ack(self, ack: RoCEPacket) -> None:
        if self.operational:
            self.fabric.inject(ack, self.name)

    def _on_rc_ack(self, packet: RoCEPacket) -> None:
        qp = self.qp(packet.dst_qpn)
        if qp is None or qp.qp_type != QPType.RC:
            self._count_drop("stray_rc_ack")
            return
        pending = self._pending_rc_sends.get(qp.qpn)
        if not pending:
            return
        wr_id = pending.pop(0)
        # RC send CQE timestamp is ACK-arrival time, NOT wire departure —
        # this is exactly why RC cannot provide timestamps ②/④ (Table 1).
        self._emit_cqe(qp, self._acquire_cqe(
            CqeKind.SEND, qp.qpn, wr_id, self.clock.read(self.sim.now)))
