"""The detlint AST rules (DET001-DET009).

One :class:`FileChecker` pass per file.  The checker is deliberately
heuristic — it resolves imports and simple local/attribute bindings, not
full types — but every heuristic is tuned so that a hit is worth a human
look, and the inline ``# detlint: disable=DETxxx <reason>`` escape hatch
(see :mod:`repro.analysis.linter`) covers intentional exceptions.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding

# -- DET001: wall clocks -------------------------------------------------------

WALL_CLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime",
    "clock_gettime_ns",
})
DATETIME_CLASS_FNS = frozenset({"now", "utcnow", "today"})

# -- DET003: order-sensitive loop bodies --------------------------------------

SCHEDULING_METHODS = frozenset({
    "call_at", "call_later", "every", "schedule", "send", "request",
    "submit", "post_send", "inject", "publish",
})
ACCUMULATOR_METHODS = frozenset({
    "append", "extend", "add", "appendleft", "insert",
})
RNG_METHODS = frozenset({
    "uniform", "randint", "random", "chance", "choice", "sample",
    "shuffle", "shuffled", "expovariate", "gauss", "lognormal",
    "normalvariate", "betavariate", "randrange",
})
SET_RETURNING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

# -- DET005: shared mutable state ---------------------------------------------

MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter",
    "deque", "bytearray",
})

# -- DET007: pooled-object escapes --------------------------------------------

# Parameter annotations that mean "this object belongs to a pool and is
# recycled once the handler returns".
POOLED_PARAM_TYPES = frozenset({"Packet", "RoCEPacket", "TCPPacket", "Cqe"})
# Calls whose result is a pool loan rather than an owned object.
POOLED_ACQUIRE_METHODS = frozenset({"acquire_roce", "_acquire_cqe"})

# -- DET008: wire-form mutation -----------------------------------------------

# Constructors whose instances are wire-form payloads shared across the
# control plane (mutating one mutates every reader's copy).
WIREFORM_FACTORIES = frozenset({"ShardWindowSummary"})
# Method calls that mutate a dict/list/set in place.
WIREFORM_MUTATORS = frozenset({
    "update", "clear", "pop", "popitem", "setdefault", "append",
    "extend", "add", "insert", "remove", "discard", "sort", "reverse",
    "appendleft",
})
# Scopes where object.__setattr__ on a frozen dataclass is construction,
# not mutation.
CONSTRUCTION_SCOPES = frozenset({
    "__init__", "__post_init__", "__new__", "__setstate__",
    "__setattr__", "__delattr__", "__copy__", "__deepcopy__",
})

# -- DET009: pool/engine internals --------------------------------------------

# attribute name -> path suffix of the one module allowed to touch it.
POOL_INTERNAL_ATTRS = {
    "_free": "repro/net/packet.py",
    "_event_free": "repro/sim/engine.py",
    "_event_pool_size": "repro/sim/engine.py",
    "_cur_heap": "repro/sim/engine.py",
    "_bucket_heap": "repro/sim/engine.py",
    "_cur_index": "repro/sim/engine.py",
    "_cqe_free": "repro/host/rnic.py",
    "_cqe_pool_limit": "repro/host/rnic.py",
    "_transit_free": "repro/net/fabric.py",
    "_transit_pool_limit": "repro/net/fabric.py",
}


def _dotted(node: ast.AST) -> Optional[str]:
    """'a.b.c' for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    head = text.split("[", 1)[0].strip().strip("\"'")
    return head.split(".")[-1] in ("set", "Set", "frozenset", "FrozenSet",
                                   "MutableSet", "AbstractSet")


def _is_mutable_literal(node: ast.AST) -> bool:
    """A value that is a fresh mutable container literal/constructor."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name is not None and name.split(".")[-1] in MUTABLE_FACTORIES
    return False


def _is_counter_call(node: ast.AST) -> bool:
    """itertools.count(...) (or bare count(...)) — a shared iterator."""
    if not isinstance(node, ast.Call):
        return False
    name = _dotted(node.func)
    return name in ("itertools.count", "count")


def _scope_nodes(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Pre-order walk of a body, skipping nested function/class scopes.

    DET007/DET008 track per-handler taint; a nested ``def`` or ``lambda``
    is its own scope (and closures are intentionally out of DET007's
    reach — the runtime sanitizer covers actual escapes through them).
    """
    stack: list[ast.AST] = list(reversed(body))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _pooled_annotation(annotation: ast.AST) -> bool:
    """The annotation's top-level type is a pooled class.

    ``Packet``, ``"RoCEPacket"``, and ``Optional[Cqe]`` all qualify; a
    ``Callable[[Cqe], None]`` callback or ``list[Packet]`` batch does
    not — only a parameter that *is* the loan carries taint.
    """
    text = ast.unparse(annotation).strip().strip("\"'").strip()
    head, bracket, rest = text.partition("[")
    if head.strip() == "Optional" and bracket:
        text = rest.rsplit("]", 1)[0].strip().strip("\"'")
        head = text.partition("[")[0]
    return head.strip().split(".")[-1] in POOLED_PARAM_TYPES


def _subscript_base(node: ast.AST) -> ast.AST:
    """Unwrap x[i][j].attr chains down to the root expression."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node


def _is_state_call(node: ast.AST) -> bool:
    """``something.state()`` — a wire-form sketch/window payload."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "state" and not node.args)


def _span(node: ast.AST) -> tuple[int, int]:
    return (node.lineno, getattr(node, "end_lineno", node.lineno)
            or node.lineno)


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = _dotted(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return dec
    return None


class FileChecker:
    """Run every rule over one parsed module."""

    def __init__(self, path: str, tree: ast.Module, *,
                 messages_module: bool = False):
        self.path = path
        self.tree = tree
        self.messages_module = messages_module
        self.findings: list[Finding] = []
        # Import bindings.
        self._time_aliases: set[str] = set()
        self._datetime_mod_aliases: set[str] = set()
        self._datetime_cls_aliases: set[str] = set()
        self._wall_fn_aliases: set[str] = set()
        self._numpy_aliases: set[str] = set()
        # Attribute names (on self) known to hold sets, per class scan.
        self._set_attrs: set[str] = set()

    # -- driver ---------------------------------------------------------------

    def run(self) -> list[Finding]:
        """Collect findings for the whole module."""
        self._collect_set_attrs()
        self._check_scope(self.tree.body, kind="module")
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                self._check_import(node)
            elif isinstance(node, ast.ImportFrom):
                self._check_import_from(node)
            elif isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, ast.Attribute):
                self._check_numpy_random(node)
                self._check_pool_internals(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
            elif isinstance(node, ast.ClassDef):
                self._check_class(node)
        return self.findings

    def _emit(self, code: str, node: ast.AST, message: str, *,
              span: Optional[tuple[int, int]] = None) -> None:
        self.findings.append(Finding(
            code=code, path=self.path, line=node.lineno,
            col=node.col_offset + 1, message=message,
            suppress_span=span or (node.lineno, node.lineno)))

    # -- imports (DET001 bindings + DET002) -----------------------------------

    def _check_import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "datetime":
                self._datetime_mod_aliases.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                self._numpy_aliases.add(bound)
                if alias.name == "numpy.random":
                    self._emit("DET002", node,
                               "import of numpy.random (global RNG)")
            elif alias.name == "random":
                self._emit("DET002", node,
                           "import of the global random module")

    def _check_import_from(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "random":
            self._emit("DET002", node,
                       "import from the global random module")
        elif module.startswith("numpy.random") or (
                module == "numpy"
                and any(a.name == "random" for a in node.names)):
            self._emit("DET002", node,
                       "import of numpy.random (global RNG)")
        elif module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_TIME_FNS:
                    self._wall_fn_aliases.add(alias.asname or alias.name)
        elif module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._datetime_cls_aliases.add(alias.asname or alias.name)

    # -- calls (DET001 + DET004) ----------------------------------------------

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._wall_fn_aliases:
                self._emit("DET001", node,
                           f"wall-clock call {func.id}() from the time "
                           "module")
            elif func.id == "id" and node.args:
                self._emit("DET004", node,
                           "id() yields a per-run memory address")
            elif func.id in ("sorted",):
                self._check_sort_key(node)
        elif isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base in self._time_aliases \
                    and func.attr in WALL_CLOCK_TIME_FNS:
                self._emit("DET001", node,
                           f"wall-clock call {base}.{func.attr}()")
            elif func.attr in DATETIME_CLASS_FNS and base is not None:
                root = base.split(".")[0]
                if (base in self._datetime_cls_aliases
                        or root in self._datetime_mod_aliases):
                    self._emit("DET001", node,
                               f"wall-clock call {base}.{func.attr}()")
            elif func.attr == "sort":
                self._check_sort_key(node)

    def _check_sort_key(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            for sub in ast.walk(kw.value):
                if isinstance(sub, ast.Name) and sub.id in ("id", "hash"):
                    self._emit("DET004", node,
                               f"sort key uses {sub.id}() — identity "
                               "order changes every run")
                    return

    def _check_numpy_random(self, node: ast.Attribute) -> None:
        base = _dotted(node.value)
        if base in self._numpy_aliases and node.attr == "random":
            self._emit("DET002", node,
                       f"use of {base}.random (global numpy RNG)")

    # -- functions: DET005 defaults + DET003 loops ----------------------------

    def _check_function(self,
                        node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for default in [*args.defaults,
                        *[d for d in args.kw_defaults if d is not None]]:
            if _is_mutable_literal(default):
                self._emit("DET005", default,
                           "mutable default argument is shared across "
                           f"calls of {node.name}()")
        self._check_loops(node)
        self._check_pooled_escape(node)
        self._check_wireform(node)

    # -- classes: DET005 class state + DET006 frozen --------------------------

    def _check_scope(self, body: list[ast.stmt], *, kind: str) -> None:
        """Module/class-level statements: flag shared counters (DET005)."""
        for stmt in body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is not None and _is_counter_call(value):
                    self._emit("DET005", stmt,
                               f"{kind}-level itertools.count() is shared "
                               "state across instances and runs")

    def _check_class(self, node: ast.ClassDef) -> None:
        self._check_scope(node.body, kind="class")
        decorator = _dataclass_decorator(node)
        if decorator is None:
            return
        for stmt in node.body:
            value = stmt.value if isinstance(stmt,
                                             (ast.Assign, ast.AnnAssign)) \
                else None
            if value is not None and _is_mutable_literal(value):
                self._emit("DET005", stmt,
                           "mutable class-level container in dataclass "
                           f"{node.name}; use field(default_factory=...)")
        if self.messages_module and not self._is_frozen(decorator):
            self._emit("DET006", node,
                       f"message dataclass {node.name} must be "
                       "frozen=True",
                       span=(decorator.lineno, node.lineno))

    @staticmethod
    def _is_frozen(decorator: ast.expr) -> bool:
        if not isinstance(decorator, ast.Call):
            return False  # bare @dataclass
        for kw in decorator.keywords:
            if kw.arg == "frozen":
                return (isinstance(kw.value, ast.Constant)
                        and kw.value.value is True)
        return False

    # -- DET003 ---------------------------------------------------------------

    def _collect_set_attrs(self) -> None:
        """Attribute names annotated/assigned as sets anywhere in the file.

        Collected file-wide (not per-class): a false merge across classes
        only matters if the same attribute name is a set in one class and
        an ordered type in another, which the fix (sorted) tolerates.
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.AnnAssign) \
                    and _annotation_is_set(node.annotation):
                name = _dotted(node.target)
                if name is not None:
                    self._set_attrs.add(name.split(".")[-1])

    def _known_set_names(self,
                         func: ast.FunctionDef | ast.AsyncFunctionDef
                         ) -> set[str]:
        known: set[str] = set()
        all_args = [*func.args.posonlyargs, *func.args.args,
                    *func.args.kwonlyargs]
        for arg in all_args:
            if _annotation_is_set(arg.annotation):
                known.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign):
                if _annotation_is_set(node.annotation):
                    name = _dotted(node.target)
                    if name is not None:
                        known.add(name)
            elif isinstance(node, ast.Assign):
                if self._is_set_expr(node.value, known):
                    for target in node.targets:
                        name = _dotted(target)
                        if name is not None:
                            known.add(name)
        return known

    def _is_set_expr(self, node: ast.AST, known: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is not None:
                tail = name.split(".")[-1]
                if tail in ("set", "frozenset"):
                    return True
                if tail in ("sorted",):
                    return False
                if tail in ("list", "tuple") and node.args:
                    return self._is_set_expr(node.args[0], known)
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in SET_RETURNING_METHODS:
                return self._is_set_expr(node.func.value, known)
            return False
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = _dotted(node)
            if name is None:
                return False
            if name in known:
                return True
            parts = name.split(".")
            return len(parts) > 1 and parts[-1] in self._set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left, known)
                    or self._is_set_expr(node.right, known))
        return False

    def _check_loops(self,
                     func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        known = self._known_set_names(func)
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if not self._is_set_expr(node.iter, known):
                    continue
                effect = self._order_sensitive_effect(node.body)
                if effect is None:
                    continue
                self._emit(
                    "DET003", node,
                    f"iteration over a set {effect}; order varies "
                    "run-to-run",
                    span=(node.lineno, node.iter.end_lineno or node.lineno))
            elif isinstance(node, ast.ListComp):
                if any(self._is_set_expr(gen.iter, known)
                       for gen in node.generators):
                    self._emit(
                        "DET003", node,
                        "list comprehension materializes ordered results "
                        "from unordered set iteration",
                        span=_span(node))

    # -- DET007 ---------------------------------------------------------------

    def _pooled_names(self,
                      func: ast.FunctionDef | ast.AsyncFunctionDef
                      ) -> set[str]:
        """Local names bound to pool loans (params, acquires, wrappers)."""
        tainted: set[str] = set()
        all_args = [*func.args.posonlyargs, *func.args.args,
                    *func.args.kwonlyargs]
        for arg in all_args:
            if arg.annotation is not None \
                    and _pooled_annotation(arg.annotation):
                tainted.add(arg.arg)
        # Fixpoint over assignments: aliases, fresh acquires, and records
        # wrapping a loan (``DropRecord(..., packet)``) all carry taint.
        for _ in range(3):
            changed = False
            for node in _scope_nodes(func.body):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    continue
                name = node.targets[0].id
                if name in tainted:
                    continue
                if self._carries_pool_taint(node.value, tainted):
                    tainted.add(name)
                    changed = True
            if not changed:
                break
        return tainted

    @staticmethod
    def _carries_pool_taint(value: ast.AST, tainted: set[str]) -> bool:
        if isinstance(value, ast.Name):
            return value.id in tainted
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Attribute) \
                and func.attr in POOLED_ACQUIRE_METHODS:
            return True
        # Constructor-looking calls (CapWord) propagate taint from their
        # arguments; plain function calls (len, copy helpers) do not.
        ctor = (isinstance(func, ast.Name) and func.id[:1].isupper()) or \
            (isinstance(func, ast.Attribute) and func.attr[:1].isupper())
        if not ctor:
            return False
        operands = [*value.args,
                    *[kw.value for kw in value.keywords]]
        return any(isinstance(a, ast.Name) and a.id in tainted
                   for a in operands)

    def _check_pooled_escape(
            self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        tainted = self._pooled_names(func)
        if not tainted:
            return
        for node in _scope_nodes(func.body):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if not (isinstance(value, ast.Name)
                        and value.id in tainted):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) or (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value,
                                           (ast.Attribute, ast.Subscript))):
                        self._emit(
                            "DET007", node,
                            f"pooled object {value.id!r} stored beyond "
                            "the handler scope; it is recycled after "
                            "release")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ACCUMULATOR_METHODS \
                    and isinstance(node.func.value,
                                   (ast.Attribute, ast.Subscript)):
                container = node.func.value
                if isinstance(container, ast.Attribute):
                    owner = POOL_INTERNAL_ATTRS.get(container.attr)
                    if owner is not None and self.path.replace(
                            "\\", "/").endswith(owner):
                        # The pool pushing onto its own free list IS the
                        # release mechanism, not an escape.
                        continue
                escaping = [a.id for a in node.args
                            if isinstance(a, ast.Name) and a.id in tainted]
                if escaping:
                    self._emit(
                        "DET007", node,
                        f"pooled object {escaping[0]!r} accumulated into "
                        f"{_dotted(node.func.value) or 'a container'} "
                        "that outlives the handler")

    # -- DET008 ---------------------------------------------------------------

    def _check_wireform(
            self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        state_names: set[str] = set()
        for node in _scope_nodes(func.body):
            # Track (and untrack on reassignment) wire-form bindings in
            # document order, so the documented fix — ``state =
            # dict(state)`` before mutating — clears the taint.
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if self._is_wireform_value(node.value):
                    state_names.add(name)
                else:
                    state_names.discard(name)
                continue
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in ("__setattr__", "__delattr__") \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id == "object" \
                        and func.name not in CONSTRUCTION_SCOPES:
                    self._emit(
                        "DET008", node,
                        f"object.{attr}() bypasses frozen=True outside "
                        "construction — build a new instance instead")
                elif attr in WIREFORM_MUTATORS \
                        and self._is_wireform_expr(node.func.value,
                                                   state_names):
                    self._emit(
                        "DET008", node,
                        f"in-place {attr}() on wire-form state; copy "
                        "before mutating (dict(state))")
            elif isinstance(node, (ast.AugAssign,)) \
                    and isinstance(node.target, ast.Subscript) \
                    and self._is_wireform_expr(
                        _subscript_base(node.target), state_names):
                self._emit("DET008", node,
                           "in-place update of wire-form state; copy "
                           "before mutating (dict(state))")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and self._is_wireform_expr(
                                _subscript_base(target), state_names):
                        self._emit(
                            "DET008", node,
                            "item assignment into wire-form state; copy "
                            "before mutating (dict(state))")

    @staticmethod
    def _is_wireform_value(value: ast.AST) -> bool:
        if _is_state_call(value):
            return True
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            return (name is not None
                    and name.split(".")[-1] in WIREFORM_FACTORIES)
        return False

    @staticmethod
    def _is_wireform_expr(node: ast.AST, state_names: set[str]) -> bool:
        """The expression being mutated is (part of) wire-form state."""
        if _is_state_call(node):
            return True
        root = _subscript_base(node)
        if _is_state_call(root):
            return True
        return isinstance(root, ast.Name) and root.id in state_names

    # -- DET009 ---------------------------------------------------------------

    def _check_pool_internals(self, node: ast.Attribute) -> None:
        owner = POOL_INTERNAL_ATTRS.get(node.attr)
        if owner is None:
            return
        if self.path.replace("\\", "/").endswith(owner):
            return
        base = _dotted(node.value)
        if base in ("self", "cls"):
            return
        self._emit(
            "DET009", node,
            f"direct access to pool internal {node.attr!r} from outside "
            f"its owning module ({owner})")

    @staticmethod
    def _order_sensitive_effect(body: list[ast.stmt]) -> Optional[str]:
        """Why the loop body is order-sensitive, or None if it isn't."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    attr = node.func.attr
                    chain = _dotted(node.func.value) or ""
                    if attr in SCHEDULING_METHODS:
                        return f"whose body schedules/sends ({attr})"
                    if attr in ACCUMULATOR_METHODS:
                        return f"whose body accumulates results ({attr})"
                    if attr in RNG_METHODS or "rng" in chain.split("."):
                        return f"whose body draws randomness ({attr})"
                elif isinstance(node, ast.AugAssign) \
                        and isinstance(node.target, ast.Subscript):
                    return "whose body accumulates into a container"
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return "whose body yields ordered results"
        return None


def check_module(path: str, source: str) -> list[Finding]:
    """Parse one file and run every rule; syntax errors become findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(code="DET000", path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"could not parse file: {exc.msg}")]
    messages_module = "messages" in path.replace("\\", "/").rsplit(
        "/", 1)[-1]
    return FileChecker(path, tree,
                       messages_module=messages_module).run()


def iter_codes() -> Iterator[str]:
    """All rule codes, in order."""
    yield from ("DET000", "DET001", "DET002", "DET003", "DET004",
                "DET005", "DET006", "DET007", "DET008", "DET009")
