"""Finding records and the rule catalogue for detlint."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Rule:
    """One determinism rule: a code, what it forbids, how to fix it."""

    code: str
    title: str
    hint: str


# The catalogue.  DET000 is the meta-rule guarding the escape hatch
# itself: a suppression without a reason, absent from the checked-in
# allowlist, or matching no finding is a finding — and cannot itself be
# suppressed.
RULES: dict[str, Rule] = {r.code: r for r in (
    Rule("DET000",
         "invalid detlint suppression",
         "give the suppression a reason and add '<path>:<code>' to the "
         "allowlist file; delete suppressions that no longer fire"),
    Rule("DET001",
         "wall-clock read inside simulation code",
         "derive every timestamp from Simulator.now (or a simulated "
         "device Clock); wall clocks differ across runs"),
    Rule("DET002",
         "global random module instead of a named RngStream",
         "draw from cluster.rngs.stream('<component>') so adding a "
         "component never perturbs another's randomness"),
    Rule("DET003",
         "unordered iteration with order-sensitive effects",
         "wrap the iterable in sorted(...): set/frozenset order varies "
         "with PYTHONHASHSEED and insertion history"),
    Rule("DET004",
         "ordering or keying by object identity",
         "order by a stable domain key (name, seq, tuple of fields); "
         "id() and identity hashes change every run"),
    Rule("DET005",
         "shared mutable state: mutable default or class-level counter",
         "use dataclasses.field(default_factory=...) for containers and "
         "per-instance (or per-Cluster) counters created in __init__"),
    Rule("DET006",
         "message dataclass is not frozen",
         "declare @dataclass(frozen=True): envelopes cross the simulated "
         "network and must not be mutated after send"),
    Rule("DET007",
         "pooled object escapes its handler scope",
         "pooled packets/CQEs are poisoned and recycled after release — "
         "copy the fields you keep, or retain deliberately and document "
         "it with a disable comment"),
    Rule("DET008",
         "in-place mutation of wire-form state",
         "frozen messages and sketch .state() payloads are shared with "
         "every reader; copy first (dict(state)) or build a new "
         "instance instead of mutating"),
    Rule("DET009",
         "pool/engine internals accessed from outside the owner",
         "free lists and heap fields belong to their module; go through "
         "the public API (acquire/release, queue_depth) so pooling "
         "stays swappable"),
    # SANxxx codes are emitted by the runtime PoolSan sanitizer
    # (repro.analysis.sanitize), not by the static pass — they share the
    # Finding shape and this catalogue so reports render uniformly.
    Rule("SAN001",
         "use-after-release write to a pooled object",
         "a poisoned field changed while the object sat on the free "
         "list; the anchor is the release site — find who kept a "
         "reference past it"),
    Rule("SAN002",
         "double release of a pooled object",
         "the object was already on the free list; release exactly once "
         "(the report shows both release sites)"),
    Rule("SAN003",
         "pooled object leaked",
         "acquired but not released within the leak age; release in a "
         "finally block, or mark it retained with a reason if keeping "
         "it is intentional"),
)}


@dataclass(slots=True)
class Finding:
    """One detlint hit, anchored to a file position."""

    code: str
    path: str
    line: int
    col: int
    message: str
    # Physical lines an inline suppression may sit on (for multi-line
    # statements the comment can trail any header line).
    suppress_span: tuple[int, int] = field(default=(0, 0))
    suppressed: bool = False
    suppress_reason: str = ""

    def __post_init__(self) -> None:
        if self.suppress_span == (0, 0):
            self.suppress_span = (self.line, self.line)

    @property
    def hint(self) -> str:
        """The rule's one-line fix hint."""
        return RULES[self.code].hint

    def render(self) -> str:
        """Human-readable one-liner, ruff-style."""
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message}")
