"""Runtime half of the determinism contract: the replay-digest harness.

:func:`replay_digest` runs the same scenario twice with the same seed and
compares a *structural digest* of everything the run produced — simulated
clock, events processed, per-stream RNG draw counts, fabric counters,
analyzer conclusions.  If any hidden nondeterminism slipped past detlint
(a wall clock, unordered iteration feeding the scheduler, process-global
state), the two digests diverge and the mismatching keys name the
subsystem that drifted.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Mapping, Optional

from repro.cluster import Cluster
from repro.core.config import RPingmeshConfig
from repro.core.system import RPingmesh
from repro.net.clos import ClosParams
from repro.net.faults import (FaultManager, LinkCorruption, LinkOverload,
                              PfcHeadroomMisconfig)
from repro.sim.units import MICROSECOND, SECOND

Scenario = Callable[[int], Any]


# -- structural digests --------------------------------------------------------

def _canonical(value: Any) -> str:
    """A stable text encoding: order-free for mappings/sets, exact floats."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return format(value, ".17g")
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value))
        return f"{type(value).__name__}({fields})"
    if isinstance(value, Mapping):
        items = sorted((_canonical(k), _canonical(v))
                       for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    raise TypeError(
        f"structural_digest cannot canonicalize {type(value).__name__}; "
        "snapshot it into plain data first")


def structural_digest(value: Any) -> str:
    """Hex sha256 of the canonical encoding of ``value``."""
    return hashlib.sha256(_canonical(value).encode()).hexdigest()


# -- state snapshots -----------------------------------------------------------

def system_state(system: RPingmesh) -> dict[str, Any]:
    """A structural snapshot of one deployed run, digest-ready.

    Includes everything the acceptance criteria require byte-stable:
    ``Simulator.events_processed``, per-stream RNG draw counts (plus the
    registry state digest, which also pins generator positions), and the
    observable conclusions of the run.
    """
    cluster = system.cluster
    sim = cluster.sim
    return {
        "sim": {
            "now": sim.now,
            "events_processed": sim.events_processed,
            "pending": sim.pending(),
            "seed": sim.seed,
        },
        "rng": {
            "draw_counts": cluster.rngs.draw_counts(),
            "digest": cluster.rngs.digest(),
        },
        "fabric": {
            "injected": cluster.fabric.packets_injected,
            "delivered": cluster.fabric.packets_delivered,
            "drops": len(cluster.fabric.drops),
        },
        "analyzer": {
            "windows": [
                {
                    "start": w.window_start_ns,
                    "end": w.window_end_ns,
                    "results": w.results_processed,
                    "down_hosts": sorted(w.down_hosts),
                    "anomalous_rnics": sorted(w.anomalous_rnics),
                    "cpu_noise_hosts": sorted(w.cpu_noise_hosts),
                    "problems": [
                        (p.category.name, p.locus, p.detected_at_ns)
                        for p in w.problems
                    ],
                }
                for w in system.analyzer.windows
            ],
        },
        "control_plane": {
            name: {
                "sent": stats.sent, "delivered": stats.delivered,
                "dropped": stats.dropped, "retries": stats.retries,
            }
            for name, stats in sorted(system.control_plane_stats().items())
        },
    }


# -- the replay harness --------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ReplayReport:
    """The outcome of running one scenario twice with one seed."""

    seed: int
    digest_first: str
    digest_second: str
    mismatched_keys: tuple[str, ...]

    @property
    def identical(self) -> bool:
        """True iff both runs produced byte-identical structural state."""
        return self.digest_first == self.digest_second


def _diff_keys(first: Any, second: Any, prefix: str = "") -> list[str]:
    """Top-down named paths where two snapshots differ."""
    if isinstance(first, Mapping) and isinstance(second, Mapping):
        keys = sorted(set(first) | set(second), key=str)
        out: list[str] = []
        for key in keys:
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in first or key not in second:
                out.append(path)
            else:
                out.extend(_diff_keys(first[key], second[key], path))
        return out
    if structural_digest(first) != structural_digest(second):
        return [prefix or "<root>"]
    return []


def replay_digest(scenario: Scenario, seed: int) -> ReplayReport:
    """Run ``scenario(seed)`` twice and compare structural digests.

    The scenario must build its entire world from the seed (fresh
    Simulator, fresh RngRegistry) and return a digest-able snapshot —
    typically :func:`system_state` output, but any canonicalizable
    structure works.
    """
    first = scenario(seed)
    second = scenario(seed)
    return ReplayReport(
        seed=seed,
        digest_first=structural_digest(first),
        digest_second=structural_digest(second),
        mismatched_keys=tuple(_diff_keys(first, second)),
    )


def default_scenario(seed: int, *,
                     check_invariants: bool = True,
                     duration_ns: Optional[int] = None,
                     obs: Optional[Any] = None,
                     sanitize: bool = False,
                     poolsan_out: Optional[list] = None) -> dict[str, Any]:
    """The reference scenario for replay tests: small, noisy, eventful.

    A tiny Clos cluster with a lossy/jittery control plane and a
    corrupting fabric link, run for two analysis windows — enough to
    exercise the scheduler, every RNG stream, retries, and the analyzer's
    anomaly paths, while staying fast enough for tier-1 tests.

    ``obs`` (an :class:`~repro.obs.Observability`) opts the run into the
    observability layer; the returned snapshot is sim state only, so it
    must be identical with or without it (DESIGN.md §8).  ``sanitize``
    opts into the PoolSan lifetime sanitizer under the same contract
    (DESIGN.md §12); ``poolsan_out``, if given, receives the live
    :class:`~repro.analysis.sanitize.PoolSanitizer` so callers can pull
    its findings without the snapshot (and thus the digest) changing.
    """
    params = ClosParams(pods=1, tors_per_pod=2, aggs_per_pod=2,
                        spines=1, hosts_per_tor=2)
    cluster = Cluster.clos(params, seed=seed,
                           check_invariants=check_invariants,
                           sanitize=sanitize)
    if poolsan_out is not None:
        poolsan_out.append(cluster.sanitizer)
    config = RPingmeshConfig(
        control_latency_ns=200 * MICROSECOND,
        control_jitter_ns=50 * MICROSECOND,
        control_loss_prob=0.02,
    )
    system = RPingmesh(cluster, config, obs=obs)
    system.start()
    fault = LinkCorruption(cluster, "pod0-tor0", "pod0-agg0",
                           drop_prob=0.3)
    fault.inject()
    system.run(duration_ns if duration_ns is not None else 45 * SECOND)
    return system_state(system)


# -- golden reference scenarios ------------------------------------------------
#
# Three fixed workloads spanning the engine's behaviour space, digested by
# tests/sim/test_golden_digests.py against hashes captured before the
# sim-core fast path landed.  Any engine/fabric change that silently alters
# event ordering, RNG draw order, or drop decisions flips a hash and fails
# tier-1.  Scenario definitions are therefore FROZEN: changing topology,
# durations, fault doses, or config here invalidates the checked-in hashes.

def _golden_cluster(seed: int, *, sanitize: bool = False) -> Cluster:
    params = ClosParams(pods=1, tors_per_pod=2, aggs_per_pod=2,
                        spines=1, hosts_per_tor=2)
    return Cluster.clos(params, seed=seed, check_invariants=True,
                        sanitize=sanitize)


def quiet_scenario(seed: int, *, sanitize: bool = False,
                   poolsan_out: Optional[list] = None) -> dict[str, Any]:
    """Golden scenario: healthy fabric, clean control plane, no faults.

    Exercises the pure probe/ack/analyze machinery — the workload the
    fault-free fast path must reproduce byte-for-byte.
    """
    cluster = _golden_cluster(seed, sanitize=sanitize)
    if poolsan_out is not None:
        poolsan_out.append(cluster.sanitizer)
    config = RPingmeshConfig(
        control_latency_ns=200 * MICROSECOND,
        control_jitter_ns=50 * MICROSECOND,
        control_loss_prob=0.0,
    )
    system = RPingmesh(cluster, config)
    system.start()
    system.run(45 * SECOND)
    return system_state(system)


def faulted_scenario(seed: int, *, sanitize: bool = False,
                     poolsan_out: Optional[list] = None) -> dict[str, Any]:
    """Golden scenario: the lossy-control-plane + corrupting-link reference.

    Identical to :func:`default_scenario` at its defaults; named here so the
    golden suite reads as (quiet, faulted, congested).
    """
    return default_scenario(seed, sanitize=sanitize,
                            poolsan_out=poolsan_out)


def congested_scenario(seed: int, *, sanitize: bool = False,
                       poolsan_out: Optional[list] = None) -> dict[str, Any]:
    """Golden scenario: a lossy saturated uplink under a fault window.

    A 1.3x-overloaded tor->agg uplink with PFC headroom misconfigured on
    the cable, active from t=5s to t=35s via FaultManager windows.  Covers
    the fluid-queue integration, queue-overflow drops, RTT inflation, and
    the mid-run fast-path -> slow-path -> fast-path transitions.
    """
    cluster = _golden_cluster(seed, sanitize=sanitize)
    if poolsan_out is not None:
        poolsan_out.append(cluster.sanitizer)
    config = RPingmeshConfig(
        control_latency_ns=200 * MICROSECOND,
        control_jitter_ns=50 * MICROSECOND,
        control_loss_prob=0.0,
    )
    system = RPingmesh(cluster, config)
    system.start()
    faults = FaultManager(cluster)
    faults.schedule(
        LinkOverload(cluster, "pod0-tor0", "pod0-agg0", extra_gbps=520.0),
        start_ns=5 * SECOND, end_ns=35 * SECOND)
    faults.schedule(
        PfcHeadroomMisconfig(cluster, "pod0-tor0", "pod0-agg0"),
        start_ns=5 * SECOND, end_ns=35 * SECOND)
    system.run(45 * SECOND)
    return system_state(system)


GOLDEN_SCENARIOS: dict[str, Scenario] = {
    "quiet": quiet_scenario,
    "faulted": faulted_scenario,
    "congested": congested_scenario,
}


# -- sanitized sweeps ----------------------------------------------------------

def sharded_smoke_scenario(seed: int, *, sanitize: bool = False,
                           poolsan_out: Optional[list] = None
                           ) -> dict[str, Any]:
    """A two-pod, ``shards=2`` + sketch-SLA scenario for sanitized runs.

    Not a golden scenario (no pinned hash): its job is to drag the
    sharded control plane — summary shipping, sketch states, fused
    verdicts — across the sanitized pools, per the PoolSan acceptance
    criteria.  Sanitize-on/off digest equality is what tests pin.
    """
    params = ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2,
                        spines=1, hosts_per_tor=1)
    cluster = Cluster.clos(params, seed=seed, check_invariants=True,
                           sanitize=sanitize)
    if poolsan_out is not None:
        poolsan_out.append(cluster.sanitizer)
    config = RPingmeshConfig(
        control_latency_ns=200 * MICROSECOND,
        control_jitter_ns=50 * MICROSECOND,
        control_loss_prob=0.01,
        shards=2,
        sla_sketch=True,
    )
    system = RPingmesh(cluster, config)
    system.start()
    fault = LinkCorruption(cluster, "pod0-tor0", "pod0-agg0",
                           drop_prob=0.25)
    fault.inject()
    system.run(45 * SECOND)
    return system_state(system)


def int_smoke_scenario(seed: int, *, sanitize: bool = False,
                       poolsan_out: Optional[list] = None
                       ) -> dict[str, Any]:
    """A congested run with the INT diagnosis backend deployed.

    Not a golden scenario: INT telemetry is off by default (the golden
    digests pin the disabled path).  Its job under PoolSan is the
    telemetry stamp/collect cycle itself — per-hop stamps pushed onto
    pooled packets' payloads on the fast and slow paths, popped at
    delivery, window drains, and Analyzer fusion — proving the collector
    neither leaks stamps into reused packets nor retains pooled refs.
    """
    cluster = _golden_cluster(seed, sanitize=sanitize)
    if poolsan_out is not None:
        poolsan_out.append(cluster.sanitizer)
    config = RPingmeshConfig(backends=("probe", "int"))
    system = RPingmesh(cluster, config)
    system.start()
    faults = FaultManager(cluster)
    faults.schedule(
        LinkOverload(cluster, "pod0-tor0", "pod0-agg0", extra_gbps=520.0),
        start_ns=5 * SECOND, end_ns=35 * SECOND)
    system.run(45 * SECOND)
    return system_state(system)


#: What ``python -m repro.analysis --sanitize-check`` (and the CI
#: sanitizer-smoke job) sweeps: every golden scenario plus the sharded
#: and INT-telemetry ones.
SANITIZE_SCENARIOS: dict[str, Scenario] = {
    **GOLDEN_SCENARIOS,
    "sharded": sharded_smoke_scenario,
    "int_telemetry": int_smoke_scenario,
}


@dataclass(frozen=True, slots=True)
class SanitizeReport:
    """Outcome of one sanitized-vs-plain scenario comparison."""

    scenario: str
    seed: int
    digest_plain: str
    digest_sanitized: str
    findings: tuple = ()
    summary: Optional[dict[str, dict[str, int]]] = None

    @property
    def ok(self) -> bool:
        """Digest-neutral and violation-free."""
        return (self.digest_plain == self.digest_sanitized
                and not self.findings)


def sanitize_check(seed: int = 7, *,
                   scenarios: Optional[Mapping[str, Scenario]] = None
                   ) -> list[SanitizeReport]:
    """Run each scenario plain and sanitized; compare digests, collect
    findings.  The runtime half of the CI sanitizer-smoke gate."""
    out: list[SanitizeReport] = []
    for name, scenario in (scenarios or SANITIZE_SCENARIOS).items():
        plain = structural_digest(scenario(seed))
        sink: list = []
        sanitized = structural_digest(
            scenario(seed, sanitize=True, poolsan_out=sink))
        sanitizer = sink[0]
        out.append(SanitizeReport(
            scenario=name, seed=seed,
            digest_plain=plain, digest_sanitized=sanitized,
            findings=tuple(sanitizer.report()),
            summary=sanitizer.summary()))
    return out
