"""``python -m repro.analysis`` dispatch."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
