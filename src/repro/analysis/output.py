"""Machine-readable detlint reports: ``--format json|sarif``.

Both serializers order findings by ``(path, line, col, code)`` so output
is byte-stable across runs and platforms — diffs of CI artifacts mean
real changes, never dict-order noise.  The SARIF form targets the 2.1.0
schema consumed by code-scanning UIs; suppressed findings are emitted
with an ``inSource`` suppression record instead of being dropped, so the
full exception surface stays visible in the artifact.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding, RULES
from repro.analysis.linter import LintReport

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def _ordered(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def report_payload(report: LintReport) -> dict:
    """The JSON-format document, as plain data."""
    return {
        "tool": "detlint",
        "files_checked": report.files_checked,
        "summary": {
            "findings": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
            "by_code": report.by_code(),
        },
        "findings": [
            {
                "code": f.code,
                "path": f.path.replace("\\", "/"),
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "hint": f.hint,
                "suppressed": f.suppressed,
                "suppress_reason": f.suppress_reason,
            }
            for f in _ordered(report.findings)
        ],
    }


def to_json(report: LintReport) -> str:
    """Render the report as the detlint JSON document."""
    return json.dumps(report_payload(report), indent=2, sort_keys=False)


def sarif_payload(report: LintReport) -> dict:
    """The SARIF 2.1.0 document, as plain data."""
    rule_ids = sorted(RULES)
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    results = []
    for finding in _ordered(report.findings):
        result = {
            "ruleId": finding.code,
            "ruleIndex": rule_index[finding.code],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                },
            }],
        }
        if finding.suppressed:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": finding.suppress_reason,
            }]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "detlint",
                    "informationUri":
                        "https://example.invalid/repro/detlint",
                    "rules": [
                        {
                            "id": code,
                            "shortDescription":
                                {"text": RULES[code].title},
                            "help": {"text": RULES[code].hint},
                        }
                        for code in rule_ids
                    ],
                },
            },
            "results": results,
        }],
    }


def to_sarif(report: LintReport) -> str:
    """Render the report as SARIF 2.1.0."""
    return json.dumps(sarif_payload(report), indent=2, sort_keys=False)
