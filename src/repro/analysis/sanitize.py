"""PoolSan: an opt-in lifetime sanitizer for pooled simulation objects.

The sim-core fast path (DESIGN.md §10) recycles ``RoCEPacket``, ``Cqe``,
``_Event``, and ``_Transit`` storage through bounded free lists.  Pooling
buys speed but imports the bug class C networking stacks fight with
ASan: use-after-release, double-release, and leaks.  Today the only
thing standing between such a bug and a silently-wrong verdict is a
golden digest flipping far from the root cause.

``PoolSanitizer`` is the ASan analogue for those pools
(``Cluster.clos(..., sanitize=True)``):

* **acquire/release tracking** — every pooled object is registered with
  the source site (``file:line``) and sim time of its acquisition;
  end-of-run accounting per pool is ``acquired == released + live``.
* **poisoning on release** — every recycled object's fields are set to
  loud sentinels (``None`` five-tuples raise ``AttributeError`` on the
  next read; negative :data:`POISON_INT` timestamps wreck any RTT math
  they touch).  At the next acquire the poison is verified intact; a
  clobbered sentinel means someone *wrote* through a stale reference and
  becomes a **SAN001** finding naming the release site.
* **double-release detection** — releasing an object that is already on
  a free list raises :class:`PoolSanitizerError` at the offending call
  site and records a **SAN002** finding (first release site + acquire
  site in the message).
* **leak detection** — a live object older than ``leak_age_ns`` that
  nobody retained on purpose (see :meth:`PoolSanitizer.retain_packet`)
  becomes a **SAN003** finding carrying its acquire site; for events the
  check is exact (outstanding records must equal the queue depth).

The sanitizer only *observes*: it never draws randomness, never
schedules, and every poisoned field is fully reassigned by the pools'
reuse paths — so ``sanitize=True`` keeps replay digests byte-identical
to ``sanitize=False`` (pinned in ``tests/analysis/test_sanitize.py``
against the golden-scenario hashes).

Findings use the same :class:`~repro.analysis.findings.Finding` shape as
detlint, anchored at the runtime call sites, so one report pipeline
(text/JSON/SARIF) serves both halves of the determinism contract.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.analysis.findings import Finding
from repro.sim.units import SECOND

if TYPE_CHECKING:  # imported for annotations only; avoids import cycles
    from repro.host.rnic import Cqe
    from repro.net.packet import RoCEPacket
    from repro.sim.engine import Simulator, _Event

#: Sentinel written into every int field on release.  Negative so any
#: stale arithmetic (sizes, timestamps, QPNs) goes loudly wrong instead
#: of plausibly right.
POISON_INT = -0xDEAD
#: Sentinel written into every str field on release.
POISON_STR = "<poolsan-poisoned>"
#: Key planted in released payload dicts; its value is the record token.
POISON_KEY = "__poolsan__"

#: The tracked pools, in reporting order.
POOL_KINDS = ("packet", "cqe", "event", "transit")


class PoolSanitizerError(RuntimeError):
    """Raised at the call site of a detected pool-lifetime violation."""


def _key(obj: object) -> int:
    """Identity key for the live/freed tables.

    Pooled objects are mutable slotted dataclasses (unhashable), and the
    thing being tracked *is* their storage, so identity is the only
    correct key.  Keys are never ordered, digested, or exposed; live and
    freed entries pin their object (live table directly, freed via the
    pool's own free list), so an id is never reused while tracked.
    """
    return id(obj)  # detlint: disable=DET004 identity keys storage tracking; never ordered or digested


def _shorten(filename: str) -> str:
    """Repo-relative form of a frame filename, for stable reports."""
    norm = filename.replace("\\", "/")
    for marker in ("/src/", "/tests/", "/benchmarks/", "/examples/"):
        if marker in norm:
            return marker.lstrip("/") + norm.rsplit(marker, 1)[1]
    return norm


def _split_site(site: str) -> tuple[str, int]:
    path, _, line = site.rpartition(":")
    try:
        return path or site, int(line)
    except ValueError:
        return site, 0


@dataclass(slots=True)
class _Live:
    """One currently-acquired pooled object."""

    kind: str
    seq: int                 # global acquisition sequence (stable order)
    obj: object              # strong ref: pins id() while tracked
    site: str                # "file:line" of the acquiring caller
    acquired_at_ns: int
    retained: bool = False   # deliberately kept (e.g. drop evidence)
    retain_reason: str = ""


@dataclass(slots=True)
class _Freed:
    """One object sitting poisoned on a free list (pinned by the pool)."""

    kind: str
    acquire_site: str
    release_site: str
    token: int               # expected payload poison value


class PoolSanitizer:
    """Lifetime tracker wired into every pool by ``sanitize=True``.

    One sanitizer instance serves one :class:`~repro.cluster.Cluster`
    (all four pools share the acquisition sequence, so reports interleave
    meaningfully).  All hooks are no-ops in terms of simulation state.
    """

    def __init__(self, *, leak_age_ns: int = SECOND):
        self._sim: Optional["Simulator"] = None
        self._seq = 0
        self._live: dict[str, dict[int, _Live]] = {
            kind: {} for kind in POOL_KINDS}
        self._freed: dict[str, dict[int, _Freed]] = {
            kind: {} for kind in POOL_KINDS}
        self.acquired = {kind: 0 for kind in POOL_KINDS}
        self.released = {kind: 0 for kind in POOL_KINDS}
        self.retained = {kind: 0 for kind in POOL_KINDS}
        # Releases of objects the sanitizer never saw (pool attached
        # mid-run, or a record dropped after an un-pooled release).
        self.unknown_releases = {kind: 0 for kind in POOL_KINDS}
        self.poison_writes = 0
        self.double_releases = 0
        self.leak_age_ns = leak_age_ns
        self._findings: list[Finding] = []

    # -- wiring ------------------------------------------------------------

    def bind_sim(self, sim: "Simulator") -> None:
        """Attach the clock source (and event-queue depth) for reports."""
        self._sim = sim

    def _now(self) -> int:
        return self._sim.now if self._sim is not None else 0

    def _site(self, skip: int = 3) -> str:
        """The ``file:line`` of the pool method's caller.

        Frame layout at every public hook: 0 = ``_site``, 1 = the hook,
        2 = the pool method that called it, 3 = the interesting caller.
        """
        try:
            frame = sys._getframe(skip)
        except ValueError:
            return "<unknown>:0"
        return f"{_shorten(frame.f_code.co_filename)}:{frame.f_lineno}"

    # -- generic bookkeeping -----------------------------------------------

    def _register(self, kind: str, obj: object, site: str) -> _Live:
        self._seq += 1
        record = _Live(kind=kind, seq=self._seq, obj=obj, site=site,
                       acquired_at_ns=self._now())
        self._live[kind][_key(obj)] = record
        self.acquired[kind] += 1
        return record

    def _reacquire(self, kind: str, obj: object, site: str,
                   damaged: "list[str]", release_site: str,
                   acquire_site: str) -> None:
        """Shared tail of the per-kind reacquire hooks."""
        if damaged:
            self.poison_writes += 1
            self._emit(
                "SAN001", release_site,
                f"use-after-release write to pooled {kind}: field(s) "
                f"{', '.join(damaged)} changed after release at "
                f"{release_site} (previous acquire {acquire_site}; "
                f"reacquired at {site})")
        self._register(kind, obj, site)

    def _note_release(self, kind: str, obj: object, site: str,
                      recycled: bool) -> Optional[int]:
        """Account one release.

        Returns the poison token when the object re-enters a free list
        (the caller poisons with it), or None when the object is simply
        discarded (free list full / pooling off) — discarded objects are
        forgotten, so a later duplicate release of one cannot be told
        apart from a foreign object (documented in DESIGN.md §12).
        """
        key = _key(obj)
        live = self._live[kind].pop(key, None)
        if live is None:
            freed = self._freed[kind].get(key)
            if freed is not None:
                self.double_releases += 1
                message = (
                    f"double release of pooled {kind}: released again at "
                    f"{site}, but already released at {freed.release_site} "
                    f"(acquired at {freed.acquire_site})")
                self._emit("SAN002", site, message)
                raise PoolSanitizerError(message)
            self.unknown_releases[kind] += 1
            return None
        self.released[kind] += 1
        if live.retained:
            self.retained[kind] -= 1
        if not recycled:
            return None
        self._freed[kind][key] = _Freed(
            kind=kind, acquire_site=live.site, release_site=site,
            token=live.seq)
        return live.seq

    def _pop_freed(self, kind: str, obj: object) -> Optional[_Freed]:
        return self._freed[kind].pop(_key(obj), None)

    def _emit(self, code: str, anchor_site: str, message: str) -> None:
        path, line = _split_site(anchor_site)
        self._findings.append(Finding(
            code=code, path=path, line=line, col=1, message=message))

    # -- packets -----------------------------------------------------------

    def acquire_packet(self, packet: "RoCEPacket") -> None:
        """A freshly constructed pool-owned packet entered circulation."""
        self._register("packet", packet, self._site())

    def reacquire_packet(self, packet: "RoCEPacket") -> None:
        """A packet left the free list; verify its poison first."""
        site = self._site()
        freed = self._pop_freed("packet", packet)
        if freed is None:
            self._register("packet", packet, site)
            return
        damaged = _verify_packet(packet, freed.token)
        self._reacquire("packet", packet, site, damaged,
                        freed.release_site, freed.acquire_site)

    def release_packet(self, packet: "RoCEPacket", *,
                       recycled: bool) -> None:
        """A pool-owned packet was handed back (``recycled`` = re-listed)."""
        token = self._note_release("packet", packet, self._site(),
                                   recycled)
        if token is not None:
            _poison_packet(packet, token)

    def foreign_release(self, packet: "RoCEPacket") -> None:
        """``PacketPool.release`` saw a packet without the ``pooled`` flag.

        Legitimate for hand-constructed packets (they were never pooled),
        but a *second* release of a pool-owned packet arrives here too —
        the flag was cleared by the first release — and that is the
        silent double-free ``sanitize=True`` exists to catch.
        """
        key = _key(packet)
        freed = self._freed["packet"].get(key)
        if freed is None:
            return
        self.double_releases += 1
        site = self._site(2)   # called straight from PacketPool.release
        message = (
            f"double release of pooled packet: released again at {site}, "
            f"but already released at {freed.release_site} (acquired at "
            f"{freed.acquire_site})")
        self._emit("SAN002", site, message)
        raise PoolSanitizerError(message)

    def retain_packet(self, packet: "RoCEPacket", reason: str) -> None:
        """Mark a live packet as deliberately kept (not a leak).

        The fabric calls this for dropped packets: DropRecords retain
        them as evidence forever, by design (DESIGN.md §10).
        """
        record = self._live["packet"].get(_key(packet))
        if record is not None and not record.retained:
            record.retained = True
            record.retain_reason = reason
            self.retained["packet"] += 1

    # -- CQEs --------------------------------------------------------------

    def acquire_cqe(self, cqe: "Cqe") -> None:
        self._register("cqe", cqe, self._site())

    def reacquire_cqe(self, cqe: "Cqe") -> None:
        site = self._site()
        freed = self._pop_freed("cqe", cqe)
        if freed is None:
            self._register("cqe", cqe, site)
            return
        damaged = _verify_cqe(cqe, freed.token)
        self._reacquire("cqe", cqe, site, damaged,
                        freed.release_site, freed.acquire_site)

    def release_cqe(self, cqe: "Cqe", *, recycled: bool) -> None:
        token = self._note_release("cqe", cqe, self._site(), recycled)
        if token is not None:
            _poison_cqe(cqe, token)

    # -- engine events -----------------------------------------------------

    def acquire_event(self, event: "_Event") -> None:
        self._register("event", event, self._site())

    def reacquire_event(self, event: "_Event") -> None:
        site = self._site()
        freed = self._pop_freed("event", event)
        if freed is None:
            self._register("event", event, site)
            return
        damaged = _verify_event(event)
        self._reacquire("event", event, site, damaged,
                        freed.release_site, freed.acquire_site)

    def release_event(self, event: "_Event", *, recycled: bool) -> None:
        token = self._note_release("event", event, self._site(), recycled)
        if token is not None:
            _poison_event(event)

    # -- fabric transits ---------------------------------------------------

    def acquire_transit(self, transit: object) -> None:
        self._register("transit", transit, self._site())

    def reacquire_transit(self, transit: object) -> None:
        site = self._site()
        freed = self._pop_freed("transit", transit)
        if freed is None:
            self._register("transit", transit, site)
            return
        damaged = _verify_transit(transit)
        self._reacquire("transit", transit, site, damaged,
                        freed.release_site, freed.acquire_site)

    def release_transit(self, transit: object, *, recycled: bool) -> None:
        token = self._note_release("transit", transit, self._site(),
                                   recycled)
        if token is not None:
            _poison_transit(transit)

    # -- reporting ---------------------------------------------------------

    def live_counts(self) -> dict[str, int]:
        """Currently-outstanding objects per pool."""
        return {kind: len(self._live[kind]) for kind in POOL_KINDS}

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-pool accounting: ``acquired == released + live`` holds."""
        return {
            kind: {
                "acquired": self.acquired[kind],
                "released": self.released[kind],
                "live": len(self._live[kind]),
                "retained": self.retained[kind],
                "unknown_releases": self.unknown_releases[kind],
            }
            for kind in POOL_KINDS
        }

    def findings(self) -> list[Finding]:
        """Violations caught so far (SAN001 writes, SAN002 double frees)."""
        return list(self._findings)

    def leaks(self) -> list[Finding]:
        """Current leak findings (SAN003), in acquisition order.

        Packets/CQEs/transits: live, un-retained, and older than
        ``leak_age_ns`` of sim time (younger objects are presumed in
        flight).  Events: exact — every outstanding record must still be
        in the calendar queue, in-flight age notwithstanding.
        """
        now = self._now()
        out: list[Finding] = []
        for kind in ("packet", "cqe", "transit"):
            for record in sorted(self._live[kind].values(),
                                 key=lambda r: r.seq):
                if record.retained:
                    continue
                age = now - record.acquired_at_ns
                if age >= self.leak_age_ns:
                    out.append(_leak_finding(kind, record, age))
        if self._sim is not None:
            outstanding = len(self._live["event"])
            queued = self._sim.queue_depth
            if outstanding != queued:
                out.append(Finding(
                    code="SAN003", path="src/repro/sim/engine.py", line=0,
                    col=1,
                    message=f"event accounting mismatch: {outstanding} "
                            f"outstanding _Event record(s) vs {queued} "
                            "queued — an event escaped the recycle path"))
        return out

    def report(self) -> list[Finding]:
        """Everything wrong right now: caught violations plus leaks."""
        return self.findings() + self.leaks()

    def render(self) -> str:
        """Human-readable end-of-run report (see DESIGN.md §12)."""
        lines = ["poolsan: per-pool accounting (acquired = released + live)"]
        for kind, stats in self.summary().items():
            lines.append(
                f"  {kind:8s} acquired={stats['acquired']} "
                f"released={stats['released']} live={stats['live']} "
                f"retained={stats['retained']}")
        findings = self.report()
        for finding in findings:
            lines.append(f"  {finding.render()}")
        lines.append(f"poolsan: {len(findings)} finding(s)")
        return "\n".join(lines)


def _leak_finding(kind: str, record: _Live, age: int) -> Finding:
    path, line = _split_site(record.site)
    return Finding(
        code="SAN003", path=path, line=line, col=1,
        message=f"leaked pooled {kind}: acquired at {record.site} "
                f"(t={record.acquired_at_ns}ns), still unreleased "
                f"{age}ns later — release it or retain it explicitly")


# -- per-kind poison/verify ----------------------------------------------------
#
# Every field poisoned here is reassigned by the corresponding pool's
# reuse path (PacketPool.acquire_roce, Rnic._acquire_cqe, the engine's
# call_at/schedule, Fabric._begin_transit) — that pairing is what keeps
# sanitized digests byte-identical.  Verify functions return the names of
# fields whose sentinel was clobbered between release and reacquire.

def _poison_packet(packet: "RoCEPacket", token: int) -> None:
    packet.five_tuple = None        # stale .dst_ip -> AttributeError
    packet.size_bytes = POISON_INT
    packet.ttl = POISON_INT
    packet.payload.clear()
    packet.payload[POISON_KEY] = token
    packet.packet_id = POISON_INT
    packet.sent_at_ns = POISON_INT
    packet.opcode = None
    packet.src_qpn = POISON_INT
    packet.dst_qpn = POISON_INT
    packet.src_gid = POISON_STR
    packet.dst_gid = POISON_STR


def _verify_packet(packet: "RoCEPacket", token: int) -> list[str]:
    damaged = []
    if packet.five_tuple is not None:
        damaged.append("five_tuple")
    for name in ("size_bytes", "ttl", "packet_id", "sent_at_ns",
                 "src_qpn", "dst_qpn"):
        if getattr(packet, name) != POISON_INT:
            damaged.append(name)
    if packet.payload != {POISON_KEY: token}:
        damaged.append("payload")
    if packet.opcode is not None:
        damaged.append("opcode")
    for name in ("src_gid", "dst_gid"):
        if getattr(packet, name) != POISON_STR:
            damaged.append(name)
    return damaged


def _poison_cqe(cqe: "Cqe", token: int) -> None:
    cqe.kind = None
    cqe.qpn = POISON_INT
    cqe.wr_id = POISON_INT
    cqe.rnic_timestamp_ns = POISON_INT   # stale RTT math goes negative
    cqe.payload.clear()
    cqe.payload[POISON_KEY] = token
    cqe.src_ip = POISON_STR
    cqe.src_gid = POISON_STR
    cqe.src_qpn = POISON_INT
    cqe.src_port = POISON_INT
    cqe.opcode = None


def _verify_cqe(cqe: "Cqe", token: int) -> list[str]:
    damaged = []
    if cqe.kind is not None:
        damaged.append("kind")
    for name in ("qpn", "wr_id", "rnic_timestamp_ns", "src_qpn",
                 "src_port"):
        if getattr(cqe, name) != POISON_INT:
            damaged.append(name)
    if cqe.payload != {POISON_KEY: token}:
        damaged.append("payload")
    for name in ("src_ip", "src_gid"):
        if getattr(cqe, name) != POISON_STR:
            damaged.append(name)
    if cqe.opcode is not None:
        damaged.append("opcode")
    return damaged


def _poison_event(event: "_Event") -> None:
    # The engine already cleared callback and bumped gen; poison the
    # schedule coordinates so a stale handle's reads are obviously wrong.
    event.time = POISON_INT
    event.seq = POISON_INT
    event.cancelled = True


def _verify_event(event: "_Event") -> list[str]:
    damaged = []
    if event.time != POISON_INT:
        damaged.append("time")
    if event.seq != POISON_INT:
        damaged.append("seq")
    if event.callback is not None:
        damaged.append("callback")
    if event.cancelled is not True:
        damaged.append("cancelled")
    return damaged


def _poison_transit(transit) -> None:
    transit.packet = None
    transit.path = None
    transit.idx = POISON_INT


def _verify_transit(transit) -> list[str]:
    damaged = []
    if transit.packet is not None:
        damaged.append("packet")
    if transit.path is not None:
        damaged.append("path")
    if transit.idx != POISON_INT:
        damaged.append("idx")
    return damaged
