"""detlint driver: files in, suppressions applied, report out.

Suppression protocol (the *escape hatch*):

* An intentional exception carries an inline comment on (any header line
  of) the offending statement::

      import random  # detlint: disable=DET002 random.Random is the substrate

  The free text after the code is the mandatory *reason*.
* Every suppressed ``path:code`` pair must ALSO appear in the checked-in
  allowlist file (``detlint-allow.txt`` at the repo root), one
  ``<path-suffix>:<CODE>`` per line, ``#`` comments allowed.  The double
  bookkeeping is deliberate: the inline comment explains the exception
  where the reader is, the allowlist makes the full exception surface
  reviewable in one place.
* A suppression that is malformed, missing its reason, absent from the
  allowlist, or matches no finding is itself a finding (**DET000**) and
  cannot be suppressed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.findings import Finding, RULES
from repro.analysis.rules import check_module

DEFAULT_ALLOWLIST = "detlint-allow.txt"

_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*disable=(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?P<reason>[^#]*)")


@dataclass(slots=True)
class Suppression:
    """One inline ``# detlint: disable=...`` comment."""

    path: str
    line: int
    codes: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass(slots=True)
class LintReport:
    """Everything detlint produced for one run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.unsuppressed:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def render(self, *, show_hints: bool = True) -> str:
        lines: list[str] = []
        for finding in sorted(self.unsuppressed,
                              key=lambda f: (f.path, f.line, f.col, f.code)):
            lines.append(finding.render())
            if show_hints:
                lines.append(f"    hint: {finding.hint}")
        if self.unsuppressed:
            lines.append("")
        lines.append(
            f"detlint: {len(self.unsuppressed)} finding(s) in "
            f"{self.files_checked} file(s)"
            + (f" ({len(self.suppressed)} suppressed)"
               if self.suppressed else ""))
        return "\n".join(lines)


def load_allowlist(path: Optional[Path]) -> set[str]:
    """Read ``<path-suffix>:<CODE>`` entries; missing file -> empty set."""
    if path is None or not path.is_file():
        return set()
    entries: set[str] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            entries.add(line.replace("\\", "/"))
    return entries


def _allowlisted(allowlist: set[str], path: str, code: str) -> bool:
    norm = path.replace("\\", "/")
    for entry in allowlist:
        entry_path, _, entry_code = entry.rpartition(":")
        if entry_code != code:
            continue
        if norm == entry_path or norm.endswith("/" + entry_path):
            return True
    return False


def scan_suppressions(path: str, source: str) -> list[Suppression]:
    """Find every inline detlint comment via the tokenizer.

    Tokenizing (rather than regexing raw lines) keeps us honest about
    comments inside strings, and a file that fails to tokenize will also
    fail to parse — rules.py reports that as DET000.
    """
    suppressions: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                if re.search(r"detlint:\s*disable", tok.string):
                    # Looks like an attempt at the escape hatch; refuse
                    # to guess what it meant.  (Prose mentions of detlint
                    # in ordinary comments are fine.)
                    suppressions.append(Suppression(
                        path=path, line=tok.start[0], codes=(),
                        reason=""))
                continue
            codes = tuple(c.strip()
                          for c in match.group("codes").split(","))
            reason = match.group("reason").strip()
            suppressions.append(Suppression(
                path=path, line=tok.start[0], codes=codes, reason=reason))
    except tokenize.TokenError:
        pass
    return suppressions


def _apply_suppressions(findings: list[Finding],
                        suppressions: list[Suppression],
                        allowlist: set[str]) -> list[Finding]:
    """Mark suppressed findings; emit DET000 for invalid suppressions."""
    extra: list[Finding] = []
    for sup in suppressions:
        if not sup.codes:
            extra.append(Finding(
                code="DET000", path=sup.path, line=sup.line, col=1,
                message="malformed detlint comment; expected "
                        "'# detlint: disable=DETxxx <reason>'"))
            continue
        if not sup.reason:
            extra.append(Finding(
                code="DET000", path=sup.path, line=sup.line, col=1,
                message="suppression is missing its reason (free text "
                        "after the code)"))
            continue
        for code in sup.codes:
            if code not in RULES or code == "DET000":
                extra.append(Finding(
                    code="DET000", path=sup.path, line=sup.line, col=1,
                    message=f"unknown or unsuppressable rule {code}"))
                continue
            if not _allowlisted(allowlist, sup.path, code):
                extra.append(Finding(
                    code="DET000", path=sup.path, line=sup.line, col=1,
                    message=f"suppression of {code} not in the allowlist "
                            f"file ({DEFAULT_ALLOWLIST}); add "
                            f"'{sup.path}:{code}'"))
                continue
            matched = False
            for finding in findings:
                lo, hi = finding.suppress_span
                if (finding.code == code and finding.path == sup.path
                        and lo <= sup.line <= hi):
                    finding.suppressed = True
                    finding.suppress_reason = sup.reason
                    matched = True
            if matched:
                sup.used = True
            else:
                extra.append(Finding(
                    code="DET000", path=sup.path, line=sup.line, col=1,
                    message=f"suppression of {code} matches no finding; "
                            "delete it"))
    return extra


def lint_source(path: str, source: str, *,
                allowlist: Optional[set[str]] = None) -> list[Finding]:
    """Lint one in-memory module; returns findings with suppression state."""
    findings = check_module(path, source)
    suppressions = scan_suppressions(path, source)
    findings.extend(
        _apply_suppressions(findings, suppressions, allowlist or set()))
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(paths: Sequence[Path], *,
               allowlist_file: Optional[Path] = None) -> LintReport:
    """Lint every ``.py`` file under ``paths``."""
    if allowlist_file is None:
        default = Path(DEFAULT_ALLOWLIST)
        allowlist_file = default if default.is_file() else None
    allowlist = load_allowlist(allowlist_file)
    report = LintReport()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        report.findings.extend(
            lint_source(str(file_path), source, allowlist=allowlist))
        report.files_checked += 1
    return report


# -- allowlist audit -----------------------------------------------------------

@dataclass(slots=True)
class AllowlistAudit:
    """Stale-entry check: every allowlist line must back a live comment.

    The double bookkeeping cuts both ways — an inline suppression
    without an allowlist entry is DET000, and an allowlist entry whose
    inline comment was deleted is *stale*: it pre-authorizes a future
    suppression nobody reviewed.  ``stale`` holds ``(lineno, entry)``
    pairs pointing into the allowlist file itself.
    """

    allowlist_file: Optional[Path]
    entries: int = 0
    stale: list[tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.stale

    def render(self) -> str:
        name = self.allowlist_file or DEFAULT_ALLOWLIST
        if self.ok:
            return (f"allowlist audit: OK — {self.entries} entr"
                    f"{'y' if self.entries == 1 else 'ies'} in {name}, "
                    "all backed by inline suppressions")
        lines = [f"allowlist audit: {len(self.stale)} stale entr"
                 f"{'y' if len(self.stale) == 1 else 'ies'} in {name} "
                 "(no matching inline '# detlint: disable=' in tree):"]
        for lineno, entry in self.stale:
            lines.append(f"  delete {name}:{lineno}: {entry}")
        return "\n".join(lines)


def audit_allowlist(paths: Sequence[Path], *,
                    allowlist_file: Optional[Path] = None
                    ) -> AllowlistAudit:
    """Cross-check allowlist entries against the tree's inline comments."""
    if allowlist_file is None:
        default = Path(DEFAULT_ALLOWLIST)
        allowlist_file = default if default.is_file() else None
    audit = AllowlistAudit(allowlist_file=allowlist_file)
    if allowlist_file is None or not allowlist_file.is_file():
        return audit
    numbered: list[tuple[int, str, str, str]] = []  # lineno, entry, path, code
    for lineno, raw in enumerate(
            allowlist_file.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        entry = line.replace("\\", "/")
        entry_path, _, entry_code = entry.rpartition(":")
        numbered.append((lineno, entry, entry_path, entry_code))
    audit.entries = len(numbered)
    backed: set[int] = set()
    for file_path in iter_python_files(paths):
        norm = str(file_path).replace("\\", "/")
        suppressions = scan_suppressions(
            norm, file_path.read_text(encoding="utf-8"))
        codes_here = {c for sup in suppressions for c in sup.codes}
        if not codes_here:
            continue
        for lineno, _entry, entry_path, entry_code in numbered:
            if entry_code in codes_here and (
                    norm == entry_path
                    or norm.endswith("/" + entry_path)):
                backed.add(lineno)
    audit.stale = [(lineno, entry)
                   for lineno, entry, _p, _c in numbered
                   if lineno not in backed]
    return audit
