"""Determinism tooling for the simulation substrate.

Two halves, one contract (DESIGN.md "Determinism contract"):

* **detlint** — an AST-based static pass (:mod:`repro.analysis.rules`)
  that rejects the constructs which silently break bit-for-bit replay:
  wall clocks, the global ``random`` module, unordered iteration feeding
  the scheduler, identity-based ordering, shared mutable state, and
  mutable message envelopes.  Run it as ``python -m repro.analysis src``.
* **runtime invariants** — draw-count accounting on every
  :class:`~repro.sim.rng.RngStream`, opt-in scheduler assertions
  (``Simulator(check_invariants=True)``), and the
  :func:`~repro.analysis.runtime.replay_digest` harness that runs a
  scenario twice and compares structural state digests.
"""

from repro.analysis.findings import Finding, RULES
from repro.analysis.linter import LintReport, lint_paths, lint_source
from repro.analysis.runtime import (ReplayReport, default_scenario,
                                    replay_digest, structural_digest,
                                    system_state)

__all__ = [
    "Finding",
    "RULES",
    "LintReport",
    "lint_paths",
    "lint_source",
    "ReplayReport",
    "default_scenario",
    "replay_digest",
    "structural_digest",
    "system_state",
]
