"""Determinism tooling for the simulation substrate.

Three legs, one contract (DESIGN.md "Determinism contract"):

* **detlint** — an AST-based static pass (:mod:`repro.analysis.rules`)
  that rejects the constructs which silently break bit-for-bit replay:
  wall clocks, the global ``random`` module, unordered iteration feeding
  the scheduler, identity-based ordering, shared mutable state, mutable
  message envelopes, pooled objects escaping their handlers, in-place
  mutation of wire-form state, and out-of-module pool internals access.
  Run it as ``python -m repro.analysis src`` (``--format json|sarif``
  for CI artifacts, ``--audit-allowlist`` for stale-entry checks).
* **runtime invariants** — draw-count accounting on every
  :class:`~repro.sim.rng.RngStream`, opt-in scheduler assertions
  (``Simulator(check_invariants=True)``), and the
  :func:`~repro.analysis.runtime.replay_digest` harness that runs a
  scenario twice and compares structural state digests.
* **PoolSan** (:mod:`repro.analysis.sanitize`) — the opt-in pooled-object
  lifetime sanitizer behind the ``sanitize=True`` knob: poison-on-release,
  double-release and use-after-release detection, and end-of-run leak
  accounting, with zero digest impact
  (:func:`~repro.analysis.runtime.sanitize_check` pins that).
"""

from repro.analysis.findings import Finding, RULES
from repro.analysis.linter import (AllowlistAudit, LintReport,
                                   audit_allowlist, lint_paths, lint_source)
from repro.analysis.runtime import (ReplayReport, SanitizeReport,
                                    default_scenario, replay_digest,
                                    sanitize_check, structural_digest,
                                    system_state)
from repro.analysis.sanitize import PoolSanitizer, PoolSanitizerError

__all__ = [
    "Finding",
    "RULES",
    "AllowlistAudit",
    "LintReport",
    "audit_allowlist",
    "lint_paths",
    "lint_source",
    "ReplayReport",
    "SanitizeReport",
    "default_scenario",
    "replay_digest",
    "sanitize_check",
    "structural_digest",
    "system_state",
    "PoolSanitizer",
    "PoolSanitizerError",
]
