"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (or everything suppressed), 1 = unsuppressed
findings, 2 = usage/input errors.  ``--check-invariants`` additionally
runs the replay-digest harness under ``Simulator(check_invariants=True)``
and fails if the two runs diverge.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.findings import RULES
from repro.analysis.linter import (DEFAULT_ALLOWLIST, audit_allowlist,
                                   lint_paths)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="detlint: determinism static analysis + runtime "
                    "invariants for the simulation substrate")
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--allowlist", metavar="FILE", default=None,
        help=f"suppression allowlist (default: {DEFAULT_ALLOWLIST} "
             "if present)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--no-hints", action="store_true",
        help="omit per-finding fix hints")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); json/sarif are "
             "byte-stable for CI artifacts")
    parser.add_argument(
        "--audit-allowlist", action="store_true",
        help="also fail if any allowlist entry has no matching inline "
             "'# detlint: disable=' comment under the linted paths")
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="also run the replay-digest harness (two seeded runs of the "
             "reference scenario) with scheduler invariants enabled")
    parser.add_argument(
        "--sanitize-check", action="store_true",
        help="also run the golden + sharded scenarios under the PoolSan "
             "pool-lifetime sanitizer; fails on any finding or on a "
             "digest drift vs the plain run")
    parser.add_argument(
        "--seed", type=int, default=7,
        help="seed for --check-invariants / --sanitize-check "
             "(default: 7)")
    return parser


def _list_rules() -> None:
    for code, rule in sorted(RULES.items()):
        print(f"{code}  {rule.title}")
        print(f"        fix: {rule.hint}")


def _run_sanitize(seed: int, out) -> int:
    # Lazy import for the same reason as _run_invariants.
    from repro.analysis.runtime import sanitize_check
    failed = 0
    for rep in sanitize_check(seed):
        if rep.ok:
            print(f"poolsan: OK {rep.scenario} seed={rep.seed} "
                  f"digest={rep.digest_plain[:16]}", file=out)
            continue
        failed += 1
        print(f"poolsan: FAIL {rep.scenario} seed={rep.seed}", file=out)
        if rep.digest_plain != rep.digest_sanitized:
            print(f"  digest drift: plain={rep.digest_plain} "
                  f"sanitized={rep.digest_sanitized}", file=out)
        for finding in rep.findings:
            print(f"  {finding.render()}", file=out)
    return 1 if failed else 0


def _run_invariants(seed: int, out) -> int:
    # Imported lazily: the static pass must work even if the simulation
    # stack is mid-refactor.
    from repro.analysis.runtime import default_scenario, replay_digest
    report = replay_digest(
        lambda s: default_scenario(s, check_invariants=True), seed)
    if report.identical:
        print(f"replay: OK seed={seed} digest={report.digest_first[:16]}",
              file=out)
        return 0
    print(f"replay: MISMATCH seed={seed}", file=out)
    print(f"  first:  {report.digest_first}", file=out)
    print(f"  second: {report.digest_second}", file=out)
    for key in report.mismatched_keys:
        print(f"  diverged: {key}", file=out)
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    allowlist = Path(args.allowlist) if args.allowlist else None
    report = lint_paths(paths, allowlist_file=allowlist)
    if args.format == "json":
        from repro.analysis.output import to_json
        print(to_json(report))
    elif args.format == "sarif":
        from repro.analysis.output import to_sarif
        print(to_sarif(report))
    else:
        print(report.render(show_hints=not args.no_hints))

    # With a machine format on stdout, auxiliary check output moves to
    # stderr so the document stays parseable as a whole.
    aux = sys.stdout if args.format == "text" else sys.stderr
    exit_code = 0 if report.ok else 1
    if args.audit_allowlist:
        audit = audit_allowlist(paths, allowlist_file=allowlist)
        print(audit.render(), file=aux)
        exit_code = max(exit_code, 0 if audit.ok else 1)
    if args.check_invariants:
        exit_code = max(exit_code, _run_invariants(args.seed, aux))
    if args.sanitize_check:
        exit_code = max(exit_code, _run_sanitize(args.seed, aux))
    return exit_code
