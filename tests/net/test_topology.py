"""Unit tests for the topology graph, queue model, ACL, traceroute limiter."""

import pytest

from repro.net.addresses import roce_five_tuple
from repro.net.topology import Acl, Tier, Topology, TracerouteLimiter


def _line_topology():
    """hostA - sw1 - sw2 - hostB."""
    topo = Topology()
    topo.add_host_port("hostA")
    topo.add_switch("sw1", Tier.TOR)
    topo.add_switch("sw2", Tier.TOR)
    topo.add_host_port("hostB")
    topo.add_cable("hostA", "sw1")
    topo.add_cable("sw1", "sw2")
    topo.add_cable("sw2", "hostB")
    return topo


class TestGraphConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_switch("s", Tier.TOR)
        with pytest.raises(ValueError):
            topo.add_switch("s", Tier.TOR)

    def test_cable_to_unknown_node_rejected(self):
        topo = Topology()
        topo.add_switch("s", Tier.TOR)
        with pytest.raises(ValueError):
            topo.add_cable("s", "ghost")

    def test_duplicate_cable_rejected(self):
        topo = _line_topology()
        with pytest.raises(ValueError):
            topo.add_cable("sw1", "sw2")

    def test_cable_creates_both_directions(self):
        topo = _line_topology()
        assert topo.link("sw1", "sw2").name == "sw1->sw2"
        assert topo.link("sw2", "sw1").name == "sw2->sw1"

    def test_directions_share_pair_state(self):
        topo = _line_topology()
        pair = topo.link_pair("sw1", "sw2")
        pair.up = False
        assert not topo.link("sw1", "sw2").up
        assert not topo.link("sw2", "sw1").up

    def test_unknown_lookups_raise(self):
        topo = _line_topology()
        with pytest.raises(KeyError):
            topo.node("nope")
        with pytest.raises(KeyError):
            topo.link("hostA", "hostB")

    def test_host_ports_and_switches(self):
        topo = _line_topology()
        assert topo.host_ports() == ["hostA", "hostB"]
        assert topo.switches() == ["sw1", "sw2"]
        assert topo.switches(Tier.SPINE) == []

    def test_tor_of(self):
        topo = _line_topology()
        assert topo.tor_of("hostA") == "sw1"

    def test_switch_links(self):
        topo = _line_topology()
        names = {l.name for l in topo.switch_links()}
        assert names == {"sw1->sw2", "sw2->sw1"}


class TestRouting:
    def test_next_hops_shortest_path(self):
        topo = _line_topology()
        assert topo.next_hops("hostA", "hostB") == ["sw1"]
        assert topo.next_hops("sw1", "hostB") == ["sw2"]
        assert topo.next_hops("sw2", "hostB") == ["hostB"]

    def test_ecmp_offers_all_equal_cost_hops(self):
        topo = Topology()
        topo.add_host_port("a")
        topo.add_host_port("b")
        for s in ("tor1", "tor2", "mid1", "mid2"):
            topo.add_switch(s, Tier.TOR)
        topo.add_cable("a", "tor1")
        topo.add_cable("b", "tor2")
        topo.add_cable("tor1", "mid1")
        topo.add_cable("tor1", "mid2")
        topo.add_cable("mid1", "tor2")
        topo.add_cable("mid2", "tor2")
        assert topo.next_hops("tor1", "b") == ["mid1", "mid2"]

    def test_routed_around_link_excluded(self):
        topo = Topology()
        topo.add_host_port("a")
        topo.add_host_port("b")
        for s in ("tor1", "tor2", "mid1", "mid2"):
            topo.add_switch(s, Tier.TOR)
        topo.add_cable("a", "tor1")
        topo.add_cable("b", "tor2")
        topo.add_cable("tor1", "mid1")
        topo.add_cable("tor1", "mid2")
        topo.add_cable("mid1", "tor2")
        topo.add_cable("mid2", "tor2")
        topo.link_pair("tor1", "mid1").routed_around = True
        assert topo.next_hops("tor1", "b") == ["mid2"]

    def test_down_but_not_converged_still_offered(self):
        """Freshly-down links black-hole traffic until reconvergence."""
        topo = _line_topology()
        topo.link_pair("sw1", "sw2").up = False
        assert topo.next_hops("sw1", "hostB") == ["sw2"]

    def test_all_routed_around_falls_back_before_reconvergence(self):
        topo = _line_topology()
        # Routes computed BEFORE the withdrawal: the stale table still
        # offers the link, so packets die visibly on it (black-hole
        # window) rather than vanishing without a drop record.
        assert topo.next_hops("sw1", "hostB") == ["sw2"]
        topo.link_pair("sw1", "sw2").routed_around = True
        assert topo.next_hops("sw1", "hostB") == ["sw2"]

    def test_withdrawal_after_invalidate_removes_route(self):
        topo = _line_topology()
        topo.link_pair("sw1", "sw2").routed_around = True
        topo.invalidate_routes()
        # Reconverged: the sole path is withdrawn -> explicit no-route.
        assert topo.next_hops("sw1", "hostB") == []

    def test_unknown_destination_raises(self):
        topo = _line_topology()
        with pytest.raises(KeyError):
            topo.next_hops("sw1", "ghost")


class TestQueueModel:
    def test_no_load_no_queue(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        assert link.queue_delay_ns(1_000_000) == 0

    def test_overload_builds_queue(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")          # 400 Gbps default
        link.set_offered_load(0, 500.0)         # 100 Gbps overload
        # After 1 ms: 100 Gb/s * 1e6 ns / 8 = 12.5 MB queued (< 16 MB cap)
        delay = link.queue_delay_ns(1_000_000)
        expected_bytes = 100 * 1_000_000 / 8
        assert abs(link.queue_bytes - expected_bytes) < 1.0
        assert delay == round(expected_bytes * 8 / 400.0)

    def test_queue_caps_at_buffer(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        link.set_offered_load(0, 800.0)
        link.advance_queue(10_000_000_000)      # 10 s of overload
        assert link.queue_bytes == link.buffer_bytes

    def test_queue_drains_when_load_drops(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        link.set_offered_load(0, 500.0)
        link.advance_queue(1_000_000)
        link.set_offered_load(1_000_000, 0.0)
        link.advance_queue(2_000_000)
        assert link.queue_bytes == 0.0

    def test_utilization(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        link.set_offered_load(0, 200.0)
        assert link.utilization() == 0.5

    def test_negative_load_rejected(self):
        topo = _line_topology()
        with pytest.raises(ValueError):
            topo.link("sw1", "sw2").set_offered_load(0, -1.0)

    def test_traversal_delay_components(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        base = link.traversal_delay_ns(0, 108)
        assert base >= link.propagation_ns
        link.pause_delay_ns = 10_000
        assert link.traversal_delay_ns(0, 108) == base + 10_000

    def test_tcp_class_skips_roce_queue(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        link.set_offered_load(0, 500.0)
        link.advance_queue(1_000_000)
        link.pause_delay_ns = 50_000
        roce = link.traversal_delay_ns(1_000_000, 108, roce_queue=True)
        tcp = link.traversal_delay_ns(1_000_000, 108, roce_queue=False)
        assert tcp < roce

    def test_lossless_queue_never_drops(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        link.set_offered_load(0, 800.0)
        link.advance_queue(10_000_000_000)
        assert link.congestion_drop_prob(10_000_000_000) == 0.0

    def test_lossy_queue_drops_when_full(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        link.pfc_headroom_ok = False
        link.set_offered_load(0, 800.0)
        link.advance_queue(10_000_000_000)
        prob = link.congestion_drop_prob(10_000_000_000)
        assert prob == pytest.approx(1.0 - 400.0 / 800.0)

    def test_lossy_queue_no_drop_below_capacity(self):
        topo = _line_topology()
        link = topo.link("sw1", "sw2")
        link.pfc_headroom_ok = False
        link.set_offered_load(0, 100.0)
        assert link.congestion_drop_prob(1_000_000) == 0.0


class TestAcl:
    def test_default_permits(self):
        acl = Acl()
        assert acl.permits(roce_five_tuple("a", "b", 1))

    def test_deny_src(self):
        acl = Acl()
        acl.deny(src_ip="a")
        assert not acl.permits(roce_five_tuple("a", "b", 1))
        assert acl.permits(roce_five_tuple("c", "b", 1))

    def test_deny_pair(self):
        acl = Acl()
        acl.deny(src_ip="a", dst_ip="b")
        assert not acl.permits(roce_five_tuple("a", "b", 1))
        assert acl.permits(roce_five_tuple("a", "c", 1))

    def test_remove_rule(self):
        acl = Acl()
        rule = acl.deny(src_ip="a")
        acl.remove(rule)
        assert acl.permits(roce_five_tuple("a", "b", 1))
        acl.remove(rule)  # idempotent

    def test_clear(self):
        acl = Acl()
        acl.deny(src_ip="a")
        acl.deny(dst_ip="b")
        acl.clear()
        assert acl.rule_count == 0


class TestTracerouteLimiter:
    def test_burst_then_throttle(self):
        limiter = TracerouteLimiter(responses_per_second=10, burst=3)
        results = [limiter.allow(0) for _ in range(5)]
        assert results == [True, True, True, False, False]

    def test_refills_over_time(self):
        limiter = TracerouteLimiter(responses_per_second=10, burst=1)
        assert limiter.allow(0)
        assert not limiter.allow(0)
        # 10/s -> one token per 100 ms
        assert limiter.allow(100_000_000)

    def test_counts(self):
        limiter = TracerouteLimiter(responses_per_second=1, burst=1)
        limiter.allow(0)
        limiter.allow(0)
        assert limiter.responses_sent == 1
        assert limiter.responses_suppressed == 1

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            TracerouteLimiter(responses_per_second=0)

    def test_time_going_backwards_is_tolerated(self):
        limiter = TracerouteLimiter(responses_per_second=10, burst=1)
        assert limiter.allow(1_000_000_000)
        assert not limiter.allow(500_000_000)  # stale clock: no refill
