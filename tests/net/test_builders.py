"""Unit tests for the Clos and rail-optimized topology builders."""

import pytest

from repro.net.clos import ClosParams, build_clos
from repro.net.rail import RailParams, build_rail
from repro.net.topology import Tier


class TestClos:
    def test_counts(self):
        plan = build_clos(ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2,
                                     spines=3, hosts_per_tor=4,
                                     rnics_per_host=2))
        topo = plan.topology
        assert len(topo.switches(Tier.SPINE)) == 3
        assert len(topo.switches(Tier.AGG)) == 4
        assert len(topo.switches(Tier.TOR)) == 4
        assert len(topo.host_ports()) == 2 * 2 * 4 * 2
        assert plan.params.total_hosts == 16
        assert plan.params.total_rnics == 32

    def test_wiring_agg_to_all_spines(self):
        plan = build_clos(ClosParams(pods=2, aggs_per_pod=2, spines=3))
        topo = plan.topology
        for agg in topo.switches(Tier.AGG):
            spines = [n for n in topo.neighbors(agg)
                      if topo.node(n).tier == Tier.SPINE]
            assert sorted(spines) == ["spine0", "spine1", "spine2"]

    def test_tor_wired_to_pod_aggs_only(self):
        plan = build_clos(ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2))
        topo = plan.topology
        aggs = [n for n in topo.neighbors("pod1-tor0")
                if topo.node(n).tier == Tier.AGG]
        assert sorted(aggs) == ["pod1-agg0", "pod1-agg1"]

    def test_all_host_rnics_same_tor(self):
        plan = build_clos(ClosParams(rnics_per_host=4))
        for host, rnics in plan.host_rnics.items():
            tors = {plan.rnic_tor[r] for r in rnics}
            assert len(tors) == 1

    def test_rnics_under_tor(self):
        plan = build_clos(ClosParams(pods=1, tors_per_pod=2,
                                     hosts_per_tor=3))
        under = plan.rnics_under_tor("pod0-tor0")
        assert len(under) == 3
        assert all(plan.rnic_tor[r] == "pod0-tor0" for r in under)

    def test_host_of(self):
        plan = build_clos(ClosParams())
        assert plan.host_of("host3-rnic0") == "host3"

    def test_parallel_paths(self):
        plan = build_clos(ClosParams(aggs_per_pod=2, spines=4))
        assert plan.parallel_paths_between_tors() == 8

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ClosParams(pods=0)
        with pytest.raises(ValueError):
            ClosParams(spines=0)

    def test_cross_pod_path_length(self):
        """host -> tor -> agg -> spine -> agg -> tor -> host = 7 nodes."""
        plan = build_clos(ClosParams(pods=2, tors_per_pod=1, hosts_per_tor=1))
        topo = plan.topology
        # BFS distance via next_hops chain
        node, hops = "host0-rnic0", 0
        dst = "host1-rnic0"
        while node != dst:
            node = topo.next_hops(node, dst)[0]
            hops += 1
        assert hops == 6


class TestRail:
    def test_counts(self):
        plan = build_rail(RailParams(hosts=3, rails=4, spines=2))
        topo = plan.topology
        assert len(topo.switches(Tier.TOR)) == 4      # rail switches
        assert len(topo.switches(Tier.SPINE)) == 2
        assert len(topo.host_ports()) == 12

    def test_rnic_i_on_rail_i(self):
        plan = build_rail(RailParams(hosts=2, rails=3, spines=1))
        for host, rnics in plan.host_rnics.items():
            for i, rnic in enumerate(rnics):
                assert plan.rnic_rail[rnic] == f"rail{i}"

    def test_cross_rail_pairs(self):
        plan = build_rail(RailParams(hosts=2, rails=3, spines=1))
        pairs = plan.cross_rail_pairs("host0")
        assert len(pairs) == 3 * 2
        assert all(a != b for a, b in pairs)

    def test_same_host_cross_rail_traverses_spine(self):
        """Figure 12: inter-rail traffic must use the top tier."""
        plan = build_rail(RailParams(hosts=2, rails=2, spines=2))
        topo = plan.topology
        node, path = "host0-rnic0", ["host0-rnic0"]
        dst = "host0-rnic1"
        while node != dst:
            node = topo.next_hops(node, dst)[0]
            path.append(node)
        tiers = [topo.node(n).tier for n in path]
        assert Tier.SPINE in tiers

    def test_parallel_paths_is_spine_count(self):
        plan = build_rail(RailParams(spines=5))
        assert plan.parallel_paths_cross_rail() == 5

    def test_needs_two_rails(self):
        with pytest.raises(ValueError):
            RailParams(rails=1)
