"""Unit tests for packet models."""

import pytest

from repro.net.addresses import FiveTuple, PROTO_TCP, roce_five_tuple
from repro.net.packet import (PROBE_PAYLOAD_BYTES, ROCE_HEADER_BYTES,
                              RoCEOpcode, RoCEPacket, TCPPacket, TC_ROCE,
                              TC_TCP, Packet, probe_packet_size)


def _ft():
    return roce_five_tuple("10.0.0.1", "10.0.0.2", 1234)


def test_roce_packet_defaults():
    p = RoCEPacket(five_tuple=_ft(), size_bytes=108)
    assert p.traffic_class == TC_ROCE
    assert p.opcode == RoCEOpcode.UD_SEND


def test_roce_packet_requires_port_4791():
    bad = FiveTuple("a", 1234, "b", 1235)
    with pytest.raises(ValueError):
        RoCEPacket(five_tuple=bad, size_bytes=100)


def test_tcp_packet_forced_to_tcp_class():
    p = TCPPacket(five_tuple=FiveTuple("a", 1, "b", 2, PROTO_TCP),
                  size_bytes=100)
    assert p.traffic_class == TC_TCP


def test_size_must_be_positive():
    with pytest.raises(ValueError):
        Packet(five_tuple=_ft(), size_bytes=0)


def test_bad_traffic_class_rejected():
    with pytest.raises(ValueError):
        Packet(five_tuple=_ft(), size_bytes=10, traffic_class="mgmt")


def test_packet_id_unset_until_injected():
    # Ids are stamped by Fabric.inject from a per-fabric counter so that
    # same-process replays see identical ids; construction assigns none.
    a = Packet(five_tuple=_ft(), size_bytes=10)
    b = Packet(five_tuple=_ft(), size_bytes=10)
    assert a.packet_id == 0
    assert b.packet_id == 0


def test_probe_packet_size_matches_paper_payload():
    assert probe_packet_size() == ROCE_HEADER_BYTES + PROBE_PAYLOAD_BYTES
    assert PROBE_PAYLOAD_BYTES == 50  # §5


def test_payload_is_per_packet():
    a = Packet(five_tuple=_ft(), size_bytes=10)
    b = Packet(five_tuple=_ft(), size_bytes=10)
    a.payload["k"] = 1
    assert "k" not in b.payload
