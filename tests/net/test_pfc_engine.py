"""Unit + integration tests for mechanistic PFC pause propagation."""


from repro.core.records import ProblemCategory
from repro.core.system import RPingmesh
from repro.net.faults import PcieDowngrade
from repro.net.pfc import PfcPropagationEngine
from repro.services.traffic import Flow, TrafficEngine
from repro.net.addresses import roce_five_tuple
from repro.sim.units import seconds


def incast_onto(cluster, victim, demand_per_flow=80.0, senders=5):
    """Fluid incast toward one RNIC."""
    engine = TrafficEngine(cluster)
    sources = [r for r in cluster.rnic_names() if r != victim][:senders]
    flows = [Flow(
        five_tuple=roce_five_tuple(cluster.rnic(src).ip,
                                   cluster.rnic(victim).ip, 9000 + i),
        src_port_node=src, demand_gbps=demand_per_flow)
        for i, src in enumerate(sources)]
    engine.apply(flows)
    return engine


class TestVictimDetection:
    def test_healthy_rnic_no_pause(self, small_clos):
        engine = PfcPropagationEngine(small_clos)
        incast_onto(small_clos, "host0-rnic0")  # 400G demand, 400G drain
        states = engine.evaluate()
        assert states == []
        assert not engine.storming()

    def test_downgraded_rnic_becomes_victim(self, small_clos):
        engine = PfcPropagationEngine(small_clos)
        small_clos.rnic("host0-rnic0").pcie_gbps = 50.0
        incast_onto(small_clos, "host0-rnic0")
        engine.evaluate()
        assert engine.storming()
        assert engine.victims() == {"host0-rnic0"}
        tor = small_clos.tor_of("host0-rnic0")
        downlink = small_clos.topology.link(tor, "host0-rnic0")
        assert downlink.pause_delay_ns > 0

    def test_no_traffic_no_storm(self, small_clos):
        """A downgraded but idle RNIC causes no pause pressure."""
        engine = PfcPropagationEngine(small_clos)
        small_clos.rnic("host0-rnic0").pcie_gbps = 50.0
        assert engine.evaluate() == []

    def test_pressure_scales_with_deficit(self, small_clos):
        engine = PfcPropagationEngine(small_clos)
        rnic = small_clos.rnic("host0-rnic0")
        tor = small_clos.tor_of("host0-rnic0")
        downlink = small_clos.topology.link(tor, "host0-rnic0")

        rnic.pcie_gbps = 200.0
        incast_onto(small_clos, "host0-rnic0")
        engine.evaluate()
        mild = downlink.pause_delay_ns

        rnic.pcie_gbps = 20.0
        engine.evaluate()
        severe = downlink.pause_delay_ns
        assert severe > mild > 0

    def test_backpressure_reaches_upstream(self, small_clos):
        engine = PfcPropagationEngine(small_clos)
        small_clos.rnic("host0-rnic0").pcie_gbps = 20.0
        incast_onto(small_clos, "host0-rnic0")
        engine.evaluate()
        tor = small_clos.tor_of("host0-rnic0")
        upstream = [small_clos.topology.link(n, tor)
                    for n in small_clos.topology.neighbors(tor)
                    if small_clos.topology.nodes[n].is_switch]
        assert any(l.pause_delay_ns > 0 for l in upstream)

    def test_storm_subsides_with_traffic(self, small_clos):
        engine = PfcPropagationEngine(small_clos)
        small_clos.rnic("host0-rnic0").pcie_gbps = 20.0
        traffic = incast_onto(small_clos, "host0-rnic0")
        engine.evaluate()
        assert engine.storming()
        traffic.clear()
        engine.evaluate()
        assert not engine.storming()
        tor = small_clos.tor_of("host0-rnic0")
        assert small_clos.topology.link(tor,
                                        "host0-rnic0").pause_delay_ns == 0

    def test_stop_clears_owned_pressure(self, small_clos):
        engine = PfcPropagationEngine(small_clos)
        engine.start()
        small_clos.rnic("host0-rnic0").pcie_gbps = 20.0
        incast_onto(small_clos, "host0-rnic0")
        small_clos.sim.run_for(seconds(1))
        assert engine.storming()
        engine.stop()
        tor = small_clos.tor_of("host0-rnic0")
        assert small_clos.topology.link(tor,
                                        "host0-rnic0").pause_delay_ns == 0


class TestEmergentFigure8Right:
    def test_storm_emerges_from_pcie_downgrade_plus_traffic(self,
                                                            small_clos):
        """The full mechanistic chain: PCIe downgrade + incast traffic ->
        pause pressure -> high P99 RTT -> Analyzer flags the victim.

        Same outcome as Figure 8 (right), but with the storm *derived*
        rather than installed by the fault.
        """
        system = RPingmesh(small_clos)
        system.start()
        engine = PfcPropagationEngine(small_clos)
        engine.start()
        small_clos.sim.run_for(seconds(25))
        baseline = system.analyzer.sla.latest().cluster \
            .rtt_percentiles()["p99"]

        # The fault only degrades PCIe; no static pause knob.
        fault = PcieDowngrade(small_clos, "host1-rnic0",
                              degraded_pcie_gbps=20.0, pause_delay_ns=0)
        fault.inject()
        incast_onto(small_clos, "host1-rnic0")
        small_clos.sim.run_for(seconds(45))
        during = system.analyzer.sla.latest().cluster \
            .rtt_percentiles()["p99"]
        assert during > 3 * baseline
        assert engine.victims() == {"host1-rnic0"}
        detected = any(
            p.category == ProblemCategory.HIGH_RTT
            and "host1-rnic0" in p.locus
            for w in system.analyzer.windows for p in w.problems)
        assert detected
