"""Fabric edge cases: races between in-flight packets and state changes."""

from repro.net.addresses import roce_five_tuple
from repro.net.fabric import DropReason
from repro.net.packet import RoCEPacket
from repro.sim.units import MICROSECOND, seconds

from tests.net.test_fabric import build_fabric, roce_packet


class TestMidFlightStateChanges:
    def test_link_goes_down_under_inflight_packet(self):
        """A packet that crossed hop 1 before the failure dies at the
        failed hop, not retroactively."""
        sim, topo, fabric = build_fabric()
        drops = []
        fabric.add_drop_listener(drops.append)
        fabric.attach_receiver("b", lambda p, r: None)
        fabric.inject(roce_packet(), "a")
        # Let it reach tor1, then fail the next cable segment it will use.
        sim.run_for(2 * MICROSECOND)
        ft = roce_five_tuple("10.0.0.1", "10.0.0.2", 5000)
        path = fabric.path_of(ft, "a")
        mid = path[2]
        topo.link_pair(mid, "tor2").up = False
        sim.run_for(seconds(1))
        if drops:  # timing-dependent: packet may already be past the link
            assert drops[0].reason == DropReason.LINK_DOWN
            assert drops[0].link == f"{mid}->tor2"

    def test_acl_installed_mid_flight(self):
        sim, topo, fabric = build_fabric()
        drops = []
        fabric.add_drop_listener(drops.append)
        delivered = []
        fabric.attach_receiver("b", lambda p, r: delivered.append(p))
        fabric.inject(roce_packet(), "a")
        sim.run_for(1 * MICROSECOND)
        topo.node("tor2").acl.deny(src_ip="10.0.0.1")
        sim.run_for(seconds(1))
        assert len(drops) == 1
        assert drops[0].reason == DropReason.ACL_DENY
        assert delivered == []

    def test_receiver_attached_after_packets_in_flight(self):
        sim, topo, fabric = build_fabric()
        fabric.inject(roce_packet(), "a")
        got = []
        fabric.attach_receiver("b", lambda p, r: got.append(p))
        sim.run_for(seconds(1))
        assert len(got) == 1


class TestTtlAndSizeEdges:
    def test_minimum_ttl_that_reaches(self):
        """Each switch decrements and drops at zero, so the 3-switch path
        needs TTL >= 4 (the hop into the last switch must leave TTL 1)."""
        sim, topo, fabric = build_fabric()
        got = []
        drops = []
        fabric.add_drop_listener(drops.append)
        fabric.attach_receiver("b", lambda p, r: got.append(p))
        ok = roce_packet()
        ok.ttl = 4
        fabric.inject(ok, "a")
        short = roce_packet()
        short.ttl = 3
        fabric.inject(short, "a")
        sim.run_for(seconds(1))
        assert len(got) == 1
        assert drops[0].reason == DropReason.TTL_EXPIRED

    def test_jumbo_packet_delivered_slower(self):
        sim, topo, fabric = build_fabric()
        arrivals = {}

        def receiver(p, rec):
            arrivals[p.size_bytes] = rec.time_ns

        fabric.attach_receiver("b", receiver)
        small = roce_packet(src_port=5000)
        jumbo = RoCEPacket(
            five_tuple=roce_five_tuple("10.0.0.1", "10.0.0.2", 5000),
            size_bytes=9000, dst_gid="::ffff:10.0.0.2")
        fabric.inject(small, "a")
        fabric.inject(jumbo, "a")
        sim.run_for(seconds(1))
        # Same path (same 5-tuple), bigger serialization cost.
        assert arrivals[9000] > arrivals[small.size_bytes]


class TestDropListenerRobustness:
    def test_multiple_listeners_all_called(self):
        sim, topo, fabric = build_fabric()
        counts = [0, 0]
        fabric.add_drop_listener(lambda r: counts.__setitem__(
            0, counts[0] + 1))
        fabric.add_drop_listener(lambda r: counts.__setitem__(
            1, counts[1] + 1))
        topo.link_pair("a", "tor1").up = False
        fabric.inject(roce_packet(), "a")
        sim.run_for(seconds(1))
        assert counts == [1, 1]
