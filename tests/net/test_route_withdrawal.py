"""Route withdrawal: isolated links must reconverge upstream tiers too."""

from repro.net.addresses import roce_five_tuple
from repro.net.clos import ClosParams
from repro.cluster import Cluster


def _paths_for_ports(cluster, src, dst, ports):
    src_ip = cluster.rnic(src).ip
    dst_ip = cluster.rnic(dst).ip
    return [tuple(cluster.fabric.path_of(
        roce_five_tuple(src_ip, dst_ip, p), src)) for p in ports]


def test_isolation_withdraws_link_from_all_tiers():
    """After withdrawing tor0<->agg0, no path touches agg0 for tor0
    destinations — including the *downstream* direction where the spine
    must stop offering agg0 (the over-the-top reconvergence a link-local
    filter cannot provide)."""
    cluster = Cluster.clos(
        ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=2),
        seed=3)
    pair = cluster.topology.link_pair("pod0-tor0", "pod0-agg0")
    pair.routed_around = True
    cluster.topology.invalidate_routes()

    # Downstream: flows from pod1 toward a host under pod0-tor0.
    paths = _paths_for_ports(cluster, "host4-rnic0", "host0-rnic0",
                             range(20_000, 20_200))
    for path in paths:
        links = set(zip(path, path[1:]))
        assert ("pod0-agg0", "pod0-tor0") not in links
        assert ("pod0-tor0", "pod0-agg0") not in links
        assert path[-1] == "host0-rnic0"  # still reachable via agg1

    # Upstream: flows out of pod0-tor0 avoid the withdrawn uplink.
    paths = _paths_for_ports(cluster, "host0-rnic0", "host4-rnic0",
                             range(20_000, 20_200))
    for path in paths:
        assert "pod0-agg0" not in path[:3]


def test_withdrawal_is_reversible():
    cluster = Cluster.clos(
        ClosParams(pods=2, tors_per_pod=2, aggs_per_pod=2, spines=2,
                   hosts_per_tor=2),
        seed=3)
    pair = cluster.topology.link_pair("pod0-tor0", "pod0-agg0")
    pair.routed_around = True
    cluster.topology.invalidate_routes()
    pair.routed_around = False
    cluster.topology.invalidate_routes()
    paths = _paths_for_ports(cluster, "host0-rnic0", "host4-rnic0",
                             range(20_000, 20_400))
    # With the link restored, ~half of outbound flows use agg0 again.
    via_agg0 = sum(1 for p in paths if "pod0-agg0" in p)
    assert via_agg0 > len(paths) * 0.3


def test_fully_disconnected_destination_yields_no_route():
    cluster = Cluster.clos(
        ClosParams(pods=1, tors_per_pod=2, aggs_per_pod=1, spines=1,
                   hosts_per_tor=1),
        seed=3)
    # host0 hangs off pod0-tor0; withdrawing its only uplink cuts pod-wide
    # reachability toward it from the other ToR.
    pair = cluster.topology.link_pair("pod0-tor0", "pod0-agg0")
    pair.routed_around = True
    cluster.topology.invalidate_routes()
    hops = cluster.topology.next_hops("pod0-agg0", "host0-rnic0")
    # The destination is unreachable in the withdrawn routing domain:
    # packets get an explicit NO_ROUTE drop rather than a silent loop.
    assert hops == []
