"""Regression tests: FaultManager window scheduling must be idempotent.

Overlapping activation windows on the same locus, adjacent windows whose
boundary events land on the same timestamp, and a clear that races ahead
of its inject are all legal campaign shapes — the fleet's
``_schedule_campaign`` produces them routinely.  The refcounted
``Fault.acquire``/``release`` pair keeps the fault active exactly while
at least one window is open, regardless of event order.
"""

import pytest

from repro.net.faults import FaultManager, LinkCorruption, RnicDown
from repro.sim.units import seconds


def _rnic_fault(cluster):
    return RnicDown(cluster, "host0-rnic0")


class TestWindowRefcounting:
    def test_single_window(self, tiny_clos):
        c = tiny_clos
        manager = FaultManager(c)
        rnic = c.rnic("host0-rnic0")
        manager.schedule(_rnic_fault(c), start_ns=seconds(1),
                         end_ns=seconds(3))
        c.sim.run_for(seconds(2))
        assert not rnic.operational
        c.sim.run_for(seconds(2))
        assert rnic.operational

    def test_overlapping_windows_same_locus(self, tiny_clos):
        """[1s,5s) and [3s,8s): active for the union, cleared once."""
        c = tiny_clos
        manager = FaultManager(c)
        rnic = c.rnic("host0-rnic0")
        fault = _rnic_fault(c)
        manager.schedule(fault, start_ns=seconds(1), end_ns=seconds(5))
        manager.schedule(fault, start_ns=seconds(3), end_ns=seconds(8))
        c.sim.run_for(seconds(2))
        assert not rnic.operational and fault.open_windows == 1
        c.sim.run_for(seconds(2))   # t=4: both windows open
        assert not rnic.operational and fault.open_windows == 2
        c.sim.run_for(seconds(2))   # t=6: first closed, second still open
        assert not rnic.operational and fault.open_windows == 1
        c.sim.run_for(seconds(3))   # t=9: all closed
        assert rnic.operational and fault.open_windows == 0

    def test_adjacent_windows_same_timestamp(self, tiny_clos):
        """[1s,3s) then [3s,5s): release and acquire collide at t=3.

        Whatever order the engine pops the two t=3 events, the fault must
        be active throughout — a release while the second window's
        acquire is pending drops the count to zero momentarily only in
        one ordering, and refcounting makes both orderings re-inject.
        """
        c = tiny_clos
        manager = FaultManager(c)
        rnic = c.rnic("host0-rnic0")
        fault = _rnic_fault(c)
        manager.schedule(fault, start_ns=seconds(1), end_ns=seconds(3))
        manager.schedule(fault, start_ns=seconds(3), end_ns=seconds(5))
        c.sim.run_for(seconds(4))   # t=4: inside the second window
        assert not rnic.operational
        c.sim.run_for(seconds(2))   # t=6: past both
        assert rnic.operational

    def test_adjacent_windows_scheduled_in_reverse(self, tiny_clos):
        """Same shape, windows registered later-first."""
        c = tiny_clos
        manager = FaultManager(c)
        rnic = c.rnic("host0-rnic0")
        fault = _rnic_fault(c)
        manager.schedule(fault, start_ns=seconds(3), end_ns=seconds(5))
        manager.schedule(fault, start_ns=seconds(1), end_ns=seconds(3))
        c.sim.run_for(seconds(4))
        assert not rnic.operational
        c.sim.run_for(seconds(2))
        assert rnic.operational

    def test_clear_before_inject_is_noop(self, tiny_clos):
        """release() with no open window must not clear or go negative."""
        c = tiny_clos
        rnic = c.rnic("host0-rnic0")
        fault = _rnic_fault(c)
        fault.release()
        assert rnic.operational and fault.open_windows == 0
        fault.acquire()
        assert not rnic.operational and fault.open_windows == 1
        fault.release()
        assert rnic.operational and fault.open_windows == 0

    def test_double_acquire_injects_once(self, tiny_clos):
        """Nested acquires stack; inject/clear fire once per envelope."""
        c = tiny_clos
        link = c.topology.link("pod0-tor0", "pod0-agg0")
        fault = LinkCorruption(c, "pod0-tor0", "pod0-agg0", drop_prob=0.5)
        fault.acquire()
        fault.acquire()
        assert link.corruption_drop_prob == pytest.approx(0.5)
        fault.release()
        assert link.corruption_drop_prob == pytest.approx(0.5)
        fault.release()
        assert link.corruption_drop_prob == 0.0

    def test_registered_once_across_windows(self, tiny_clos):
        c = tiny_clos
        manager = FaultManager(c)
        fault = _rnic_fault(c)
        manager.schedule(fault, start_ns=seconds(1), end_ns=seconds(2))
        manager.schedule(fault, start_ns=seconds(4), end_ns=seconds(5))
        assert sum(1 for f in manager.faults if f is fault) == 1

    def test_open_ended_window(self, tiny_clos):
        c = tiny_clos
        manager = FaultManager(c)
        rnic = c.rnic("host0-rnic0")
        manager.schedule(_rnic_fault(c), start_ns=seconds(1))
        c.sim.run_for(seconds(30))
        assert not rnic.operational

    def test_empty_window_rejected(self, tiny_clos):
        c = tiny_clos
        manager = FaultManager(c)
        with pytest.raises(ValueError):
            manager.schedule(_rnic_fault(c), start_ns=seconds(2),
                             end_ns=seconds(2))

    def test_inject_now(self, tiny_clos):
        c = tiny_clos
        manager = FaultManager(c)
        rnic = c.rnic("host0-rnic0")
        fault = manager.inject_now(_rnic_fault(c))
        assert not rnic.operational
        assert any(f is fault for f in manager.faults)
        manager.clear_all()
        assert rnic.operational
